//! Bit-identity of prefix-state reuse with cold re-evolution — the correctness
//! contract of `PrefixCache` / `Simulator::evolve_cached`.
//!
//! A resumed evaluation restores a byte copy of an intermediate state and replays the
//! remaining rounds with the same kernels in the same order, so it must agree with a
//! cold `evolve_into` **exactly** (`to_bits` equality, not a tolerance), for:
//!
//! * every mixer family (Pauli-X transverse field, custom Pauli-X products, Grover,
//!   XY ring on the Dicke subspace),
//! * round counts `p ∈ 1..=4`,
//! * both the table-driven and the dense phase-separator paths,
//! * evaluation sequences with every reuse shape: exact repeats (full hits), suffix
//!   sweeps (tail hits), single-coordinate walks (partial prefixes) and unrelated
//!   jumps (complete misses),
//! * the cached adjoint gradient's forward pass.

use juliqaoa::linalg::Complex64;
use juliqaoa::prelude::*;
use juliqaoa::problems::DensestKSubgraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_states_bit_equal(a: &[Complex64], b: &[Complex64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
        prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
    Ok(())
}

/// Builds one of the four mixer/problem combinations under test.
fn build_simulator(mixer_choice: usize, seed: u64, dense: bool) -> Simulator {
    let n = 7;
    let k = 3;
    let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
    let sim = match mixer_choice {
        0 => Simulator::new(
            precompute_full(&MaxCut::new(graph)),
            Mixer::transverse_field(n),
        ),
        1 => Simulator::new(precompute_full(&MaxCut::new(graph)), Mixer::grover_full(n)),
        2 => {
            let sub = DickeSubspace::new(n, k);
            Simulator::new(
                precompute_dicke(&DensestKSubgraph::new(graph, k), &sub),
                Mixer::ring(n, k),
            )
        }
        _ => Simulator::new(
            precompute_full(&MaxCut::new(graph)),
            // A "custom" mixer: all X strings of orders 1 and 2.
            Mixer::PauliX(PauliXMixer::uniform_products(n, &[1, 2])),
        ),
    }
    .expect("consistent setup");
    if dense {
        sim.with_dense_phases()
    } else {
        sim
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn cached_evaluation_sequences_match_cold_evolution_bitwise(
        seed in 0u64..1000,
        mixer_choice in 0usize..4,
        p in 1usize..5,
        dense in 0usize..2,
        base in proptest::collection::vec(-3.2..3.2f64, 8),
        walk in proptest::collection::vec((0usize..8, -0.7..0.7f64), 10)
    ) {
        let sim = build_simulator(mixer_choice, seed, dense == 1);
        let mut cache = sim.prefix_cache();
        let mut ws_cached = sim.workspace();
        let mut ws_cold = sim.workspace();

        // A cumulative random walk over single coordinates produces every reuse
        // shape: deep-coordinate steps share long prefixes, shallow steps short
        // ones, and a zero-delta step is an exact repeat.
        let mut flat: Vec<f64> = base[..2 * p].to_vec();
        for &(coord, delta) in &walk {
            flat[coord % (2 * p)] += delta;
            let angles = Angles::from_flat(&flat);
            sim.evolve_cached(&angles, &mut ws_cached, &mut cache)
                .expect("consistent setup");
            sim.evolve_into(&angles, &mut ws_cold).expect("consistent setup");
            assert_states_bit_equal(&ws_cached.state, &ws_cold.state)?;

            // Exact repeat of the same point (the value→gradient pattern).
            sim.evolve_cached(&angles, &mut ws_cached, &mut cache)
                .expect("consistent setup");
            assert_states_bit_equal(&ws_cached.state, &ws_cold.state)?;
        }
        let stats = cache.stats();
        // The exact repeats alone guarantee reuse whenever any checkpoint exists.
        // The single structurally reuse-free case is p = 1 with a subspace mixer:
        // no interior round to checkpoint and no tail for XY mixers.
        let tail_free = mixer_choice == 2 && p == 1;
        prop_assert!(
            stats.hits > 0 || tail_free,
            "walk produced no reuse: {stats:?}"
        );
    }

    #[test]
    fn suffix_sweep_matches_cold_evolution_for_every_mixer(
        seed in 0u64..1000,
        mixer_choice in 0usize..4,
        dense in 0usize..2,
        base in proptest::collection::vec(-3.2..3.2f64, 6)
    ) {
        // The grid-search access pattern: deepest round's β fastest, then its γ.
        let p = 3;
        let sim = build_simulator(mixer_choice, seed, dense == 1);
        let mut cache = sim.prefix_cache();
        let mut ws_cached = sim.workspace();
        let mut ws_cold = sim.workspace();
        for outer in 0..3 {
            for inner in 0..4 {
                let mut flat = base.clone();
                flat[p - 1] += 0.17 * inner as f64; // β_p (fastest)
                flat[2 * p - 1] += 0.29 * outer as f64; // γ_p
                let angles = Angles::from_flat(&flat);
                sim.evolve_cached(&angles, &mut ws_cached, &mut cache)
                    .expect("consistent setup");
                sim.evolve_into(&angles, &mut ws_cold).expect("consistent setup");
                assert_states_bit_equal(&ws_cached.state, &ws_cold.state)?;
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.hits >= 10, "sweep must reuse prefixes: {stats:?}");
        // Pauli-X mixers have the eigenbasis tail, Grover the post-phase tail; only
        // the XY subspace mixer replays the final round in full.
        if mixer_choice != 2 {
            prop_assert!(stats.tail_hits > 0, "β-sweep must hit the tail: {stats:?}");
        }
    }

    #[test]
    fn cached_adjoint_gradient_matches_uncached_bitwise(
        seed in 0u64..1000,
        mixer_choice in 0usize..4,
        p in 1usize..4,
        angles in proptest::collection::vec(-3.2..3.2f64, 6)
    ) {
        let sim = build_simulator(mixer_choice, seed, false);
        let parsed = Angles::from_flat(&angles[..2 * p]);
        let mut cache = sim.prefix_cache();
        let mut ws_cached = sim.workspace();
        let mut ws_cold = sim.workspace();
        // Warm the cache with a forward evaluation at the same point, then take the
        // cached-forward gradient; it must equal the cold gradient exactly.
        sim.evolve_cached(&parsed, &mut ws_cached, &mut cache).expect("consistent setup");
        let g_cached = adjoint_gradient_cached(&sim, &parsed, &mut ws_cached, &mut cache)
            .expect("consistent setup");
        let g_cold = adjoint_gradient(&sim, &parsed, &mut ws_cold).expect("consistent setup");
        prop_assert_eq!(g_cached.expectation.to_bits(), g_cold.expectation.to_bits());
        for (a, b) in g_cached.to_flat().iter().zip(g_cold.to_flat().iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // p = 1 with a subspace mixer has no interior round and no tail to serve the
        // repeat; every other combination must reuse.
        if !(mixer_choice == 2 && p == 1) {
            prop_assert!(cache.stats().hits > 0, "repeat forward pass must hit");
        }
    }
}

#[test]
fn tiny_budget_caches_degrade_to_cold_evaluation_not_wrong_answers() {
    let sim = build_simulator(0, 11, false);
    let angles = Angles::random(3, &mut StdRng::seed_from_u64(2));
    let mut ws_cold = sim.workspace();
    sim.evolve_into(&angles, &mut ws_cold)
        .expect("consistent setup");
    for budget in [0usize, 1, 1 << 10, 1 << 14, 1 << 30] {
        let mut cache = PrefixCache::with_budget(budget);
        let mut ws = sim.workspace();
        for _ in 0..3 {
            sim.evolve_cached(&angles, &mut ws, &mut cache)
                .expect("consistent setup");
            for (a, b) in ws.state.iter().zip(ws_cold.state.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }
}
