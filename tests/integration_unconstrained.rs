//! End-to-end integration tests for unconstrained problems: the full pipeline of
//! Figure 1 (pre-computation → simulation → angle finding) plus cross-validation of the
//! purpose-built simulator against both baseline simulators and the Grover fast path.

use juliqaoa::circuit::{maxcut_qaoa_expectation_gate_sim, DenseSimulator};
use juliqaoa::prelude::*;
use juliqaoa::problems::{degeneracies_full, KSat};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn maxcut_setup(n: usize, seed: u64) -> (Graph, Vec<f64>, f64) {
    let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
    let cost = MaxCut::new(graph.clone());
    let obj = precompute_full(&cost);
    let best = obj.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (graph, obj, best)
}

#[test]
fn three_simulation_paths_agree_on_maxcut() {
    // Purpose-built simulator, gate-level baseline and dense-operator baseline must give
    // identical expectation values for the same MaxCut QAOA.
    let n = 7;
    let (graph, obj, _) = maxcut_setup(n, 42);
    let core = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
    let dense = DenseSimulator::new(n, obj.clone());
    for seed in 0..3 {
        let angles = Angles::random(2, &mut StdRng::seed_from_u64(seed));
        let e_core = core.expectation(&angles).unwrap();
        let e_gate =
            maxcut_qaoa_expectation_gate_sim(&graph, angles.betas(), angles.gammas(), &obj);
        let e_dense = dense.expectation(angles.betas(), angles.gammas());
        assert!(
            (e_core - e_gate).abs() < 1e-9,
            "core vs gate at seed {seed}"
        );
        assert!(
            (e_core - e_dense).abs() < 1e-9,
            "core vs dense at seed {seed}"
        );
    }
}

#[test]
fn angle_finding_beats_random_angles_and_approaches_optimum() {
    let n = 8;
    let (_, obj, best) = maxcut_setup(n, 7);
    let sim = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
    let mut rng = StdRng::seed_from_u64(1);

    // Baseline: mean expectation over random angles.
    let mut random_mean = 0.0;
    for _ in 0..20 {
        random_mean += sim.expectation(&Angles::random(3, &mut rng)).unwrap();
    }
    random_mean /= 20.0;

    let found = find_angles(
        &sim,
        &IterativeOptions {
            target_p: 3,
            basinhopping: BasinHoppingOptions {
                n_hops: 8,
                step_size: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
        &mut rng,
    );
    assert!(found.best_expectation() > random_mean + 0.5);
    assert!(found.best_expectation() <= best + 1e-9);
    // At p = 3 on an 8-qubit instance the approximation ratio should be substantial.
    assert!(found.best_expectation() / best > 0.8);
}

#[test]
fn grover_fast_path_agrees_with_full_simulation_on_ksat() {
    let n = 8;
    let sat = KSat::random_with_density(n, 3, 6.0, &mut StdRng::seed_from_u64(3));
    let obj = precompute_full(&sat);
    let full = Simulator::new(obj, Mixer::grover_full(n)).unwrap();
    let compressed = CompressedGroverSimulator::from_table(&degeneracies_full(&sat, 4));
    for seed in 0..3 {
        let angles = Angles::random(4, &mut StdRng::seed_from_u64(10 + seed));
        let a = full.simulate(&angles).unwrap();
        let b = compressed.simulate(&angles);
        assert!((a.expectation_value() - b.expectation_value()).abs() < 1e-9);
        assert!((a.ground_state_probability() - b.ground_state_probability()).abs() < 1e-9);
    }
}

#[test]
fn adjoint_gradient_drives_bfgs_to_the_same_answer_as_finite_differences() {
    let n = 6;
    let (_, obj, _) = maxcut_setup(n, 11);
    let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
    let start = Angles::random(3, &mut StdRng::seed_from_u64(2)).to_flat();

    let mut adjoint = QaoaObjective::with_gradient_method(&sim, GradientMethod::Adjoint);
    let res_adj = bfgs(&mut adjoint, &start, &BfgsOptions::default());

    let mut fd =
        QaoaObjective::with_gradient_method(&sim, GradientMethod::FiniteDifference { eps: 1e-6 });
    let res_fd = bfgs(&mut fd, &start, &BfgsOptions::default());

    // Both converge to (numerically) the same local optimum value...
    assert!((res_adj.value - res_fd.value).abs() < 1e-5);
    // ...but the adjoint path needs far fewer simulator calls (this is Figure 5's point).
    assert!(adjoint.simulation_count() * 3 < fd.simulation_count());
}

#[test]
fn multi_round_qaoa_concentrates_probability_on_good_cuts() {
    let n = 8;
    let (_, obj, best) = maxcut_setup(n, 19);
    let sim = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let found = find_angles(
        &sim,
        &IterativeOptions {
            target_p: 4,
            basinhopping: BasinHoppingOptions {
                n_hops: 8,
                step_size: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
        &mut rng,
    );
    let res = sim
        .simulate(&Angles::from_flat(found.best_angles()))
        .unwrap();
    // The probability of sampling an optimal cut must beat uniform sampling by a wide
    // margin.
    let optimal_count = obj.iter().filter(|&&v| v == best).count();
    let uniform_probability = optimal_count as f64 / obj.len() as f64;
    assert!(res.ground_state_probability() > 4.0 * uniform_probability);
    assert!((res.total_probability() - 1.0).abs() < 1e-9);
}

#[test]
fn paper_listing_one_pipeline_runs_end_to_end() {
    // Reproduces Listing 1 through the facade helpers.
    let mut rng = StdRng::seed_from_u64(6);
    let n = 6;
    let graph = erdos_renyi(n, 0.5, &mut rng);
    let obj_vals: Vec<f64> = states(n).iter().map(|x| maxcut(&graph, x)).collect();
    let mixer = Mixer::transverse_field(n);
    let p = 3;
    let angles: Vec<f64> = (0..2 * p)
        .map(|_| rand::Rng::gen::<f64>(&mut rng))
        .collect();
    let res = simulate(&angles, &mixer, &obj_vals).unwrap();
    let exp_value = get_exp_value(&res);
    assert!(exp_value >= 0.0);
    assert!(exp_value <= obj_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
}
