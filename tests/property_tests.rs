//! Property-based tests (proptest) over the core invariants of the simulation stack.
//!
//! These complement the example-based unit tests by sampling random problem instances,
//! random angles and random states, and checking the structural invariants that must
//! hold for *every* input: unitarity, basis-change round trips, combinatorial bijections,
//! agreement between independent simulation paths, and gradient consistency.

use juliqaoa::circuit::maxcut_qaoa_expectation_gate_sim;
use juliqaoa::combinatorics::{binomial, rank_combination, unrank_combination, GosperIter};
use juliqaoa::linalg::{vector, walsh, Complex64};
use juliqaoa::prelude::*;
use juliqaoa::problems::degeneracies_full;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small MaxCut instance (graph seed) plus angle seeds.
fn angle_vec(p: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.2..3.2f64, 2 * p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn walsh_hadamard_is_an_involution(
        values in proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 1 << 6)
    ) {
        let orig: Vec<Complex64> = values.iter().map(|&(re, im)| Complex64::new(re, im)).collect();
        let mut state = orig.clone();
        walsh::walsh_hadamard(&mut state);
        walsh::walsh_hadamard(&mut state);
        prop_assert!(vector::max_abs_diff(&state, &orig) < 1e-10);
    }

    #[test]
    fn walsh_hadamard_preserves_norm(
        values in proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 1 << 7)
    ) {
        let mut state: Vec<Complex64> = values.iter().map(|&(re, im)| Complex64::new(re, im)).collect();
        let before = vector::norm(&state);
        walsh::walsh_hadamard(&mut state);
        prop_assert!((vector::norm(&state) - before).abs() < 1e-9);
    }

    #[test]
    fn rank_and_unrank_are_inverse_bijections(n in 4usize..14, k_frac in 0.0..1.0f64) {
        let k = ((n as f64) * k_frac).round() as usize;
        let k = k.min(n);
        let total = binomial(n, k);
        // Sample a handful of ranks across the range.
        for step in 0..8u64 {
            let rank = if total <= 1 { 0 } else { step * (total - 1) / 7 };
            let word = unrank_combination(rank, k);
            prop_assert_eq!(word.count_ones() as usize, k);
            prop_assert!(word < (1u64 << n));
            prop_assert_eq!(rank_combination(word), rank);
        }
    }

    #[test]
    fn gosper_enumeration_is_sorted_unique_and_complete(n in 1usize..13, k in 0usize..13) {
        prop_assume!(k <= n);
        let words: Vec<u64> = GosperIter::new(n, k).collect();
        prop_assert_eq!(words.len() as u64, binomial(n, k));
        for w in words.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &w in &words {
            prop_assert_eq!(w.count_ones() as usize, k);
        }
    }

    #[test]
    fn qaoa_simulation_is_unitary_for_all_mixers(
        seed in 0u64..1000,
        angles in angle_vec(3),
        mixer_choice in 0usize..3
    ) {
        let n = 6;
        let k = 3;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let (obj, mixer) = match mixer_choice {
            0 => (precompute_full(&MaxCut::new(graph)), Mixer::transverse_field(n)),
            1 => (precompute_full(&MaxCut::new(graph)), Mixer::grover_full(n)),
            _ => {
                let sub = DickeSubspace::new(n, k);
                (
                    precompute_dicke(&DensestKSubgraph::new(graph, k), &sub),
                    Mixer::clique(n, k),
                )
            }
        };
        let sim = Simulator::new(obj, mixer).unwrap();
        let res = sim.simulate(&Angles::from_flat(&angles)).unwrap();
        prop_assert!((res.total_probability() - 1.0).abs() < 1e-9);
        // Expectation stays inside the objective range.
        prop_assert!(res.expectation_value() <= sim.max_objective() + 1e-9);
        prop_assert!(res.expectation_value() >= sim.min_objective() - 1e-9);
    }

    #[test]
    fn gate_level_baseline_agrees_with_core_simulator(
        seed in 0u64..500,
        angles in angle_vec(2)
    ) {
        let n = 5;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let obj = precompute_full(&MaxCut::new(graph.clone()));
        let sim = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
        let parsed = Angles::from_flat(&angles);
        let e_core = sim.expectation(&parsed).unwrap();
        let e_gate = maxcut_qaoa_expectation_gate_sim(&graph, parsed.betas(), parsed.gammas(), &obj);
        prop_assert!((e_core - e_gate).abs() < 1e-8);
    }

    #[test]
    fn grover_compressed_simulation_agrees_with_full(
        seed in 0u64..500,
        angles in angle_vec(3)
    ) {
        let n = 6;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let cost = MaxCut::new(graph);
        let obj = precompute_full(&cost);
        let full = Simulator::new(obj, Mixer::grover_full(n)).unwrap();
        let compressed = CompressedGroverSimulator::from_table(&degeneracies_full(&cost, 2));
        let parsed = Angles::from_flat(&angles);
        let a = full.simulate(&parsed).unwrap();
        let b = compressed.simulate(&parsed);
        prop_assert!((a.expectation_value() - b.expectation_value()).abs() < 1e-8);
        prop_assert!((a.ground_state_probability() - b.ground_state_probability()).abs() < 1e-8);
    }

    #[test]
    fn adjoint_gradient_matches_finite_differences_on_random_instances(
        seed in 0u64..200,
        angles in angle_vec(2)
    ) {
        let n = 5;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let obj = precompute_full(&MaxCut::new(graph));
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        let parsed = Angles::from_flat(&angles);
        let mut ws = sim.workspace();
        let grad = adjoint_gradient(&sim, &parsed, &mut ws).unwrap();
        let eps = 1e-5;
        for (i, g) in grad.to_flat().iter().enumerate() {
            let mut plus = angles.clone();
            plus[i] += eps;
            let mut minus = angles.clone();
            minus[i] -= eps;
            let fd = (sim.expectation(&Angles::from_flat(&plus)).unwrap()
                - sim.expectation(&Angles::from_flat(&minus)).unwrap())
                / (2.0 * eps);
            prop_assert!((g - fd).abs() < 2e-5, "component {} adjoint {} vs fd {}", i, g, fd);
        }
    }

    #[test]
    fn objective_precomputation_matches_pointwise_evaluation(seed in 0u64..500) {
        let n = 7;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let cost = MaxCut::new(graph);
        let obj = precompute_full(&cost);
        prop_assert_eq!(obj.len(), 1 << n);
        for x in [0u64, 1, 17, 100, (1 << n) - 1] {
            prop_assert_eq!(obj[x as usize], cost.evaluate(x));
        }
        // Degeneracy table accounts for every state exactly once.
        let table = degeneracies_full(&cost, 3);
        prop_assert_eq!(table.total_states(), 1 << n);
    }

    #[test]
    fn angle_flat_roundtrip_and_extrapolation_length(p in 1usize..12, angles in proptest::collection::vec(-5.0..5.0f64, 24)) {
        let flat = &angles[..2 * p];
        let parsed = Angles::from_flat(flat);
        prop_assert_eq!(parsed.p(), p);
        prop_assert_eq!(parsed.to_flat(), flat.to_vec());
        let extended = parsed.extrapolate();
        prop_assert_eq!(extended.p(), p + 1);
        // The first p rounds are untouched by extrapolation.
        prop_assert_eq!(&extended.betas()[..p], parsed.betas());
        prop_assert_eq!(&extended.gammas()[..p], parsed.gammas());
    }
}
