//! End-to-end integration tests for Hamming-weight-constrained problems: Densest
//! k-Subgraph with the Clique mixer and Max k-Vertex-Cover with the Ring mixer, the two
//! constrained problem/mixer pairs of Figure 2.

use juliqaoa::mixers::{cache, clique_mixer, ring_mixer, GroverMixer, Mixer};
use juliqaoa::prelude::*;
use juliqaoa::problems::degeneracies_dicke;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn densest_setup(n: usize, k: usize, seed: u64) -> (Vec<f64>, f64) {
    let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
    let cost = DensestKSubgraph::new(graph, k);
    let sub = DickeSubspace::new(n, k);
    let obj = precompute_dicke(&cost, &sub);
    let best = obj.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (obj, best)
}

#[test]
fn clique_mixer_qaoa_beats_the_dicke_state_baseline() {
    let n = 8;
    let k = 4;
    let (obj, best) = densest_setup(n, k, 3);
    let dicke_mean = obj.iter().sum::<f64>() / obj.len() as f64;
    let sim = Simulator::new(obj, Mixer::clique(n, k)).unwrap();
    let found = find_angles(
        &sim,
        &IterativeOptions {
            target_p: 3,
            basinhopping: BasinHoppingOptions {
                n_hops: 8,
                step_size: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(1),
    );
    assert!(found.best_expectation() > dicke_mean + 0.2);
    assert!(found.best_expectation() <= best + 1e-9);
    assert!(found.best_expectation() / best > 0.75);
}

#[test]
fn ring_mixer_qaoa_improves_vertex_cover() {
    let n = 8;
    let k = 4;
    let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(9));
    let cost = MaxKVertexCover::new(graph, k);
    let sub = DickeSubspace::new(n, k);
    let obj = precompute_dicke(&cost, &sub);
    let best = obj.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = obj.iter().sum::<f64>() / obj.len() as f64;

    let sim = Simulator::new(obj, Mixer::ring(n, k)).unwrap();
    let found = find_angles(
        &sim,
        &IterativeOptions {
            target_p: 3,
            basinhopping: BasinHoppingOptions {
                n_hops: 8,
                step_size: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(2),
    );
    assert!(found.best_expectation() > mean);
    assert!(found.best_expectation() <= best + 1e-9);
}

#[test]
fn constrained_simulation_never_leaves_the_feasible_subspace() {
    // The whole point of the subspace formulation: the statevector has exactly C(n,k)
    // entries, so no probability can leak into infeasible states.  Verify norm
    // conservation and dimensionality across mixers and rounds.
    let n = 7;
    let k = 3;
    let (obj, _) = densest_setup(n, k, 21);
    let dim = juliqaoa::combinatorics::binomial(n, k) as usize;
    for mixer in [
        Mixer::clique(n, k),
        Mixer::ring(n, k),
        Mixer::grover_dicke(n, k),
    ] {
        let sim = Simulator::new(obj.clone(), mixer).unwrap();
        assert_eq!(sim.dim(), dim);
        let res = sim
            .simulate(&Angles::random(5, &mut StdRng::seed_from_u64(4)))
            .unwrap();
        assert_eq!(res.statevector().len(), dim);
        assert!((res.total_probability() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn clique_and_ring_mixers_agree_at_zero_angles_and_differ_otherwise() {
    let n = 7;
    let k = 3;
    let (obj, _) = densest_setup(n, k, 33);
    let clique_sim = Simulator::new(obj.clone(), Mixer::clique(n, k)).unwrap();
    let ring_sim = Simulator::new(obj.clone(), Mixer::ring(n, k)).unwrap();
    let zero = Angles::zeros(2);
    assert!(
        (clique_sim.expectation(&zero).unwrap() - ring_sim.expectation(&zero).unwrap()).abs()
            < 1e-12
    );
    let angles = Angles::random(2, &mut StdRng::seed_from_u64(8));
    let a = clique_sim.expectation(&angles).unwrap();
    let b = ring_sim.expectation(&angles).unwrap();
    assert!(
        (a - b).abs() > 1e-6,
        "different mixers should explore differently"
    );
}

#[test]
fn cached_clique_mixer_reproduces_fresh_computation() {
    let n = 7;
    let k = 3;
    let path = std::env::temp_dir().join(format!(
        "juliqaoa_integration_clique_{}_{}.json",
        std::process::id(),
        7
    ));
    let _ = std::fs::remove_file(&path);
    let fresh = clique_mixer(n, k);
    let cached_first = cache::clique_mixer_cached(n, k, &path).unwrap();
    let cached_second = cache::clique_mixer_cached(n, k, &path).unwrap();
    assert_eq!(fresh.eigenvalues(), cached_first.eigenvalues());
    assert_eq!(cached_first.eigenvalues(), cached_second.eigenvalues());

    // The loaded mixer must behave identically inside a simulation.
    let (obj, _) = densest_setup(n, k, 44);
    let angles = Angles::random(3, &mut StdRng::seed_from_u64(5));
    let a = Simulator::new(obj.clone(), Mixer::Subspace(fresh))
        .unwrap()
        .expectation(&angles)
        .unwrap();
    let b = Simulator::new(obj, Mixer::Subspace(cached_second))
        .unwrap()
        .expectation(&angles)
        .unwrap();
    assert!((a - b).abs() < 1e-9);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn grover_dicke_fast_path_matches_subspace_simulation() {
    let n = 9;
    let k = 4;
    let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(17));
    let cost = DensestKSubgraph::new(graph, k);
    let sub = DickeSubspace::new(n, k);
    let obj = precompute_dicke(&cost, &sub);
    let full = Simulator::new(obj, Mixer::Grover(GroverMixer::dicke(n, k))).unwrap();
    let table = degeneracies_dicke(&cost, n, k, 4);
    let compressed = CompressedGroverSimulator::from_table(&table);
    for seed in 0..3 {
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(60 + seed));
        let a = full.simulate(&angles).unwrap();
        let b = compressed.simulate(&angles);
        assert!((a.expectation_value() - b.expectation_value()).abs() < 1e-9);
        assert!((a.ground_state_probability() - b.ground_state_probability()).abs() < 1e-9);
    }
}

#[test]
fn adjoint_gradient_matches_finite_differences_for_ring_mixer() {
    let n = 7;
    let k = 3;
    let (obj, _) = densest_setup(n, k, 55);
    let sim = Simulator::new(obj, Mixer::Subspace(ring_mixer(n, k))).unwrap();
    let angles = Angles::random(3, &mut StdRng::seed_from_u64(6));
    let mut ws = sim.workspace();
    let grad = adjoint_gradient(&sim, &angles, &mut ws).unwrap();

    let flat = angles.to_flat();
    let eps = 1e-5;
    for (i, g) in grad.to_flat().iter().enumerate() {
        let mut plus = flat.clone();
        plus[i] += eps;
        let mut minus = flat.clone();
        minus[i] -= eps;
        let fd = (sim.expectation(&Angles::from_flat(&plus)).unwrap()
            - sim.expectation(&Angles::from_flat(&minus)).unwrap())
            / (2.0 * eps);
        assert!((g - fd).abs() < 1e-5, "component {i}");
    }
}
