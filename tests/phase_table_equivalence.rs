//! Equivalence of the table-driven/fused phase-separator path with the naive dense
//! `cis` path, across random states, random angles and several objective families —
//! the correctness contract of the phase-class compression layer.
//!
//! Covered here:
//! * random MaxCut / k-SAT / synthetic objectives against the dense reference, for
//!   both Pauli-X and Grover (fused) mixers, at serial-kernel sizes;
//! * random warm-start initial states;
//! * the forced-parallel kernel branch (statevectors above `par_threshold()`),
//!   cross-checked against the guard-forced serial branch;
//! * the non-compressible-float fallback;
//! * same-seed determinism of `random_restart` and `grid_search` under outer-loop
//!   parallelism.

use juliqaoa::linalg::{vector, Complex64};
use juliqaoa::prelude::*;
use juliqaoa::problems::{HammingRamp, PhaseClasses};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Max |ψ_table − ψ_dense| after evolving both variants of the same simulator.
fn table_vs_dense_diff(sim: &Simulator, angles: &Angles) -> f64 {
    assert!(
        sim.phase_classes().is_some(),
        "objective unexpectedly non-compressible"
    );
    let dense = sim.clone().with_dense_phases();
    let mut ws_t = sim.workspace();
    let mut ws_d = dense.workspace();
    sim.evolve_into(angles, &mut ws_t)
        .expect("consistent setup");
    dense
        .evolve_into(angles, &mut ws_d)
        .expect("consistent setup");
    vector::max_abs_diff(&ws_t.state, &ws_d.state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn maxcut_table_path_matches_dense_for_all_mixers(
        seed in 0u64..1000,
        angles in proptest::collection::vec(-3.2..3.2f64, 6),
        mixer_choice in 0usize..2
    ) {
        let n = 7;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let obj = precompute_full(&MaxCut::new(graph));
        let mixer = if mixer_choice == 0 {
            Mixer::transverse_field(n)
        } else {
            Mixer::grover_full(n) // exercises the fused phase+overlap round
        };
        let sim = Simulator::new(obj, mixer).unwrap();
        prop_assert!(table_vs_dense_diff(&sim, &Angles::from_flat(&angles)) < 1e-12);
    }

    #[test]
    fn sat_table_path_matches_dense(
        seed in 0u64..1000,
        angles in proptest::collection::vec(-3.2..3.2f64, 4)
    ) {
        let n = 8;
        let sat = KSat::random_with_density(n, 3, 6.0, &mut StdRng::seed_from_u64(seed));
        let obj = precompute_full(&sat);
        let sim = Simulator::new(obj, Mixer::grover_full(n)).unwrap();
        prop_assert!(table_vs_dense_diff(&sim, &Angles::from_flat(&angles)) < 1e-12);
    }

    #[test]
    fn synthetic_objective_with_random_warm_start_matches_dense(
        angles in proptest::collection::vec(-3.2..3.2f64, 6),
        state in proptest::collection::vec((-1.0..1.0f64, -1.0..1.0f64), 1 << 6)
    ) {
        let n = 6;
        let obj = precompute_full(&HammingRamp::new(n));
        let init: Vec<Complex64> =
            state.iter().map(|&(re, im)| Complex64::new(re, im)).collect();
        prop_assume!(vector::norm(&init) > 1e-6);
        let sim = Simulator::new(obj, Mixer::transverse_field(n))
            .unwrap()
            .with_initial_state(InitialState::Custom(init))
            .unwrap();
        prop_assert!(table_vs_dense_diff(&sim, &Angles::from_flat(&angles)) < 1e-12);
    }

    #[test]
    fn adjoint_gradient_table_path_matches_dense(
        seed in 0u64..500,
        angles in proptest::collection::vec(-3.2..3.2f64, 4)
    ) {
        let n = 6;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let obj = precompute_full(&MaxCut::new(graph));
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        let dense = sim.clone().with_dense_phases();
        let parsed = Angles::from_flat(&angles);
        let mut ws_t = sim.workspace();
        let mut ws_d = dense.workspace();
        let g_t = adjoint_gradient(&sim, &parsed, &mut ws_t).unwrap();
        let g_d = adjoint_gradient(&dense, &parsed, &mut ws_d).unwrap();
        prop_assert!((g_t.expectation - g_d.expectation).abs() < 1e-12);
        for (a, b) in g_t.to_flat().iter().zip(g_d.to_flat().iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn forced_parallel_branch_matches_guard_forced_serial_branch() {
    // A statevector above par_threshold() drives every kernel down its rayon path;
    // re-running under the outer-parallelism guard forces the serial path on the same
    // data.  The two must agree to reduction-order accuracy, for both the table and
    // the dense variants.
    let threshold = juliqaoa::linalg::par_threshold();
    let n = (threshold.max(2).ilog2() as usize + 1).clamp(10, 21);
    let graph = erdos_renyi(n, 0.05, &mut StdRng::seed_from_u64(3));
    let obj = precompute_full(&MaxCut::new(graph));
    assert!(
        obj.len() >= threshold,
        "test must reach the parallel branch"
    );
    let angles = Angles::random(2, &mut StdRng::seed_from_u64(7));

    for table_driven in [true, false] {
        let sim = Simulator::new(obj.clone(), Mixer::grover_full(n)).unwrap();
        let sim = if table_driven {
            sim
        } else {
            sim.with_dense_phases()
        };
        let mut ws_par = sim.workspace();
        sim.evolve_into(&angles, &mut ws_par).unwrap();
        let mut ws_ser = sim.workspace();
        {
            let _guard = juliqaoa::linalg::enter_outer_parallelism();
            sim.evolve_into(&angles, &mut ws_ser).unwrap();
        }
        let diff = vector::max_abs_diff(&ws_par.state, &ws_ser.state);
        assert!(
            diff < 1e-12,
            "table_driven={table_driven}: parallel vs serial diff {diff}"
        );
    }
}

#[test]
fn non_compressible_floats_fall_back_to_dense_and_agree_with_reference() {
    // An injective objective defeats compression; the simulator must transparently
    // use the dense kernel and agree with a hand-rolled reference evolution.
    let n = 6;
    let dim = 1usize << n;
    let obj: Vec<f64> = (0..dim)
        .map(|x| (x as f64).sin() * 7.3 + x as f64)
        .collect();
    assert!(PhaseClasses::build(&obj).is_none());
    let sim = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
    assert!(sim.phase_classes().is_none());

    let angles = Angles::random(3, &mut StdRng::seed_from_u64(11));
    let mut ws = sim.workspace();
    sim.evolve_into(&angles, &mut ws).unwrap();

    // Reference: explicit dense rounds.
    let reference = {
        let mut state = vec![Complex64::ZERO; dim];
        vector::fill_uniform(&mut state);
        let mut scratch = vec![Complex64::ZERO; dim];
        let mixer = Mixer::transverse_field(n);
        for round in 0..angles.p() {
            let (gamma, beta) = angles.round(round);
            vector::apply_phases(&mut state, &obj, gamma);
            mixer.apply_evolution(beta, &mut state, &mut scratch);
        }
        state
    };
    assert!(vector::max_abs_diff(&ws.state, &reference) < 1e-12);
}

#[test]
fn almost_compressible_boundary_cases() {
    // Exactly at the classes cap the table is used; one distinct value past it the
    // dense fallback kicks in.  Both must produce the same physics.
    let dim = 64usize;
    let compressible: Vec<f64> = (0..dim).map(|x| (x % 32) as f64).collect();
    let incompressible: Vec<f64> = (0..dim)
        .map(|x| (x.min(33)) as f64 + (x % 2) as f64 * 0.25)
        .collect();
    assert!(PhaseClasses::build(&compressible).is_some());
    let sim_c = Simulator::new(compressible, Mixer::grover_full(6)).unwrap();
    assert!(sim_c.phase_classes().is_some());
    let sim_i = Simulator::new(incompressible, Mixer::grover_full(6)).unwrap();
    let angles = Angles::random(2, &mut StdRng::seed_from_u64(5));
    for sim in [&sim_c, &sim_i] {
        let res = sim.simulate(&angles).unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-10);
    }
    assert!(table_vs_dense_diff(&sim_c, &angles) < 1e-12);
}

#[test]
fn random_restart_is_seed_deterministic_under_outer_parallelism() {
    let n = 6;
    let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(42));
    let obj = precompute_full(&MaxCut::new(graph));
    let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
    let opts = RandomRestartOptions {
        restarts: 12, // above the parallel fan-out threshold
        ..Default::default()
    };
    let run = || {
        random_restart(
            || QaoaObjective::new(&sim),
            2,
            &opts,
            &mut StdRng::seed_from_u64(9),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.x, b.x, "same seed must give identical best angles");
    assert_eq!(a.value, b.value);
    assert_eq!(a.function_evals, b.function_evals);
    assert_eq!(a.gradient_evals, b.gradient_evals);
}

#[test]
fn grid_search_is_deterministic_and_matches_serial_reference() {
    use juliqaoa::optim::grid_search;
    use juliqaoa::optim::Objective;

    let n = 5;
    let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(13));
    let obj = precompute_full(&MaxCut::new(graph));
    let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();

    // 24^2 = 576 points: above the block-parallel threshold.
    let res = grid_search(
        || QaoaObjective::new(&sim),
        2,
        0.0,
        std::f64::consts::PI,
        24,
    );
    let res2 = grid_search(
        || QaoaObjective::new(&sim),
        2,
        0.0,
        std::f64::consts::PI,
        24,
    );
    assert_eq!(res.x, res2.x);
    assert_eq!(res.value, res2.value);

    // Serial reference: odometer scan with strict-< tie-breaking.
    let mut reference = QaoaObjective::new(&sim);
    let step = std::f64::consts::PI / 24.0;
    let mut best = (f64::INFINITY, vec![0.0; 2]);
    for j in 0..24 {
        for i in 0..24 {
            let point = vec![(i as f64 + 0.5) * step, (j as f64 + 0.5) * step];
            let value = reference.value(&point);
            if value < best.0 {
                best = (value, point);
            }
        }
    }
    assert_eq!(res.value, best.0);
    assert_eq!(res.x, best.1);
}
