//! A vendored, dependency-free stand-in for the subset of [rayon](https://docs.rs/rayon)
//! that `juliqaoa` uses.
//!
//! The build environment has no network access, so instead of the real crate this shim
//! provides the same API surface backed by `std::thread::scope`: every parallel iterator
//! is a *splittable* description of contiguous work; consumers split it into one
//! contiguous piece per available core, run each piece on a scoped thread, and combine
//! the results in order.  On a single-core host (or for small inputs) everything runs
//! inline with zero thread overhead.
//!
//! Differences from real rayon that matter to callers:
//!
//! * There is no global work-stealing pool — threads are spawned per call.  The
//!   crossover at which parallelism pays is therefore higher; `juliqaoa_linalg`
//!   accounts for this in its `par_threshold()` default.  The shim itself splits any
//!   workload with at least two items (small item counts with heavy per-item work —
//!   the angle-finding outer loops — are exactly what must fan out), so callers with
//!   cheap per-item work are responsible for their own size gating.
//! * Only contiguous splits are performed, so `collect()` preserves order exactly like
//!   rayon's indexed collect.
//! * `RAYON_NUM_THREADS` is honoured (read once); tests use it to force multi-way
//!   splits on single-core hosts.

use std::ops::Range;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Number of worker threads parallel consumers will use: `RAYON_NUM_THREADS` if set to
/// a valid positive integer at first use (the same override real rayon honours —
/// tests use it to force multi-way splits on single-core hosts), otherwise the
/// available hardware parallelism.
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Splits `p` into at most `current_num_threads()` contiguous pieces, runs `worker` on
/// each piece (on scoped threads when it helps), and returns the per-piece results in
/// order.
///
/// Any splittable workload (≥ 2 items, > 1 thread) fans out — matching real rayon,
/// where a 100-candidate outer loop absolutely should use every core even though 100
/// is a small item count.  Cheap *per-item* workloads are expected to stay off this
/// path via their own size gates (see `juliqaoa_linalg::parallel_kernels_enabled`);
/// the shim cannot tell item cost apart, only item count.
fn run_split<P, R, F>(p: P, worker: &F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let len = p.par_len();
    let threads = current_num_threads();
    if threads <= 1 || len < 2 {
        return vec![worker(p)];
    }
    let pieces_count = threads.min(len);
    let mut pieces = Vec::with_capacity(pieces_count);
    let mut rest = p;
    let mut remaining = len;
    for i in 0..pieces_count {
        if i + 1 == pieces_count {
            pieces.push(rest);
            break;
        }
        let take = remaining / (pieces_count - i);
        let (head, tail) = rest.split_off_front(take);
        pieces.push(head);
        rest = tail;
        remaining -= take;
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = pieces
            .into_iter()
            .map(|piece| s.spawn(move || worker(piece)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// A splittable, sendable description of a parallel computation over contiguous items.
pub trait ParallelIterator: Sized + Send {
    /// The element type produced.
    type Item: Send;
    /// The sequential iterator a single piece is driven with.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn par_len(&self) -> usize;
    /// Splits into the first `at` items and the remainder.
    fn split_off_front(self, at: usize) -> (Self, Self);
    /// Converts one piece into a sequential iterator.
    fn into_seq(self) -> Self::Seq;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    /// Maps each item through `f`, giving every worker its own state created by `init`
    /// (rayon's `map_init`): the state is created once per contiguous piece, not per
    /// item, which is what makes per-thread scratch workspaces cheap.
    fn map_init<I, T, R, F>(self, init: I, f: F) -> MapInit<Self, I, F>
    where
        I: Fn() -> T + Sync + Send + Clone,
        R: Send,
        F: Fn(&mut T, Self::Item) -> R + Sync + Send + Clone,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    /// Pairs items positionally with another parallel iterator.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Copies out of by-reference items.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_split(self, &|piece: Self| {
            for item in piece.into_seq() {
                f(item);
            }
        });
    }

    /// Sums all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        run_split(self, &|piece: Self| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Collects into a container (order-preserving).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Containers constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let mut chunks = run_split(p, &|piece: P| piece.into_seq().collect::<Vec<T>>());
        if chunks.len() == 1 {
            return chunks.pop().unwrap();
        }
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Values convertible into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

// ---------------------------------------------------------------------------
// Base producers
// ---------------------------------------------------------------------------

/// Parallel `&[T]` iterator (items are `&T`).
pub struct ParSliceIter<'a, T>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(at);
        (ParSliceIter(a), ParSliceIter(b))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter()
    }
}

/// Parallel `&mut [T]` iterator (items are `&mut T`).
pub struct ParSliceIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for ParSliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(at);
        (ParSliceIterMut(a), ParSliceIterMut(b))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter_mut()
    }
}

/// Parallel chunks of a shared slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (
            ParChunks {
                slice: a,
                size: self.size,
            },
            ParChunks {
                slice: b,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

/// Parallel chunks of a mutable slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let mid = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ParChunksMut {
                slice: a,
                size: self.size,
            },
            ParChunksMut {
                slice: b,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel integer range.
pub struct ParRange<T> {
    range: Range<T>,
}

macro_rules! par_range_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type Seq = Range<$t>;

            fn par_len(&self) -> usize {
                (self.range.end.saturating_sub(self.range.start)) as usize
            }

            fn split_off_front(self, at: usize) -> (Self, Self) {
                let mid = self.range.start + at as $t;
                (
                    ParRange { range: self.range.start..mid },
                    ParRange { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Self::Seq {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> Self::Iter {
                ParRange { range: self }
            }
        }
    )*};
}

par_range_impl!(usize, u64, u32);

/// Parallel owned-vector iterator.
pub struct ParVec<T>(Vec<T>);

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }

    fn split_off_front(mut self, at: usize) -> (Self, Self) {
        let tail = self.0.split_off(at);
        (self, ParVec(tail))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> Self::Iter {
        ParVec(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParSliceIter<'a, T>;
    fn into_par_iter(self) -> Self::Iter {
        ParSliceIter(self)
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParSliceIterMut<'a, T>;
    fn into_par_iter(self) -> Self::Iter {
        ParSliceIterMut(self)
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParSliceIter<'_, T>;
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter(self)
    }

    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T>;
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T> {
        ParSliceIterMut(self)
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut { slice: self, size }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_off_front(at);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }
}

/// See [`ParallelIterator::map_init`].
pub struct MapInit<P, I, F> {
    base: P,
    init: I,
    f: F,
}

/// Sequential driver for [`MapInit`]: the per-piece state is created lazily on the first
/// item and reused for the rest of the piece.
pub struct MapInitSeq<S, T, I, F> {
    inner: S,
    state: Option<T>,
    init: Option<I>,
    f: F,
}

impl<S, T, I, R, F> Iterator for MapInitSeq<S, T, I, F>
where
    S: Iterator,
    I: FnOnce() -> T,
    F: FnMut(&mut T, S::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        let item = self.inner.next()?;
        if self.state.is_none() {
            let init = self.init.take().expect("init closure consumed twice");
            self.state = Some(init());
        }
        Some((self.f)(
            self.state.as_mut().expect("just initialised"),
            item,
        ))
    }
}

impl<P, I, T, R, F> ParallelIterator for MapInit<P, I, F>
where
    P: ParallelIterator,
    I: Fn() -> T + Sync + Send + Clone,
    R: Send,
    F: Fn(&mut T, P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type Seq = MapInitSeq<P::Seq, T, I, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_off_front(at);
        (
            MapInit {
                base: a,
                init: self.init.clone(),
                f: self.f.clone(),
            },
            MapInit {
                base: b,
                init: self.init,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        MapInitSeq {
            inner: self.base.into_seq(),
            state: None,
            init: Some(self.init),
            f: self.f,
        }
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_off_front(at);
        let (b1, b2) = self.b.split_off_front(at);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential driver for [`Enumerate`], carrying the piece's global start index.
pub struct EnumerateSeq<S> {
    inner: S,
    index: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let index = self.index;
        self.index += 1;
        Some((index, item))
    }
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = EnumerateSeq<P::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_off_front(at);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + at,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.base.into_seq(),
            index: self.offset,
        }
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: Copy + Send + Sync + 'a,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    type Seq = std::iter::Copied<P::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_off_front(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_off_front(at);
        (Copied { base: a }, Copied { base: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn slice_sum_matches_serial() {
        let data: Vec<f64> = (0..50_000).map(|i| (i % 7) as f64).collect();
        let par: f64 = data.par_iter().map(|&x| x * 0.5).sum();
        let ser: f64 = data.iter().map(|&x| x * 0.5).sum();
        assert!((par - ser).abs() < 1e-6);
    }

    #[test]
    fn zip_for_each_mutates_in_place() {
        let mut a = vec![0.0f64; 20_000];
        let b: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x = y + 1.0);
        assert_eq!(a[19_999], 20_000.0);
        assert_eq!(a[0], 1.0);
    }

    #[test]
    fn chunks_mut_sees_every_chunk() {
        let mut data = vec![1u64; 8192];
        data.par_chunks_mut(128).for_each(|chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn map_init_runs_init_once_per_piece() {
        let out: Vec<u64> = (0..4096u64)
            .into_par_iter()
            .map_init(|| 10u64, |state, i| i + *state)
            .collect();
        assert_eq!(out[0], 10);
        assert_eq!(out[4095], 4105);
    }

    #[test]
    fn vec_into_par_iter_collect() {
        let v: Vec<String> = (0..3000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens[0], 1);
        assert_eq!(lens[2999], 4);
    }
}
