//! Forces a genuinely multi-threaded schedule — even on a single-core host — by
//! setting `RAYON_NUM_THREADS` before the shim's thread count is first read, then
//! checks that splitting actually happens and that results still match serial
//! execution in value and order.
//!
//! This is its own integration-test binary so the env var reliably wins the
//! `OnceLock` initialisation race: every test here sets the same value before any
//! parallel call.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const FORCED_THREADS: usize = 4;

fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", FORCED_THREADS.to_string());
    assert_eq!(
        rayon::current_num_threads(),
        FORCED_THREADS,
        "RAYON_NUM_THREADS must win over hardware detection"
    );
}

#[test]
fn small_item_counts_still_fan_out() {
    force_threads();
    // 100 items is the realistic outer-loop size (random_restart's candidate count);
    // count distinct worker threads to prove the schedule really split.
    let thread_ids = std::sync::Mutex::new(std::collections::HashSet::new());
    let out: Vec<usize> = (0..100usize)
        .into_par_iter()
        .map(|i| {
            thread_ids
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            i * 3
        })
        .collect();
    assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    let distinct = thread_ids.lock().unwrap().len();
    assert!(
        distinct > 1,
        "expected a multi-threaded schedule, saw {distinct} thread(s)"
    );
}

#[test]
fn map_init_builds_one_state_per_piece() {
    force_threads();
    let inits = AtomicUsize::new(0);
    let out: Vec<usize> = (0..64usize)
        .into_par_iter()
        .map_init(
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                7usize
            },
            |state, i| i + *state,
        )
        .collect();
    assert_eq!(out, (0..64).map(|i| i + 7).collect::<Vec<_>>());
    let count = inits.load(Ordering::SeqCst);
    assert!(
        (2..=FORCED_THREADS).contains(&count),
        "init should run once per piece, ran {count} times"
    );
}

#[test]
fn zip_sum_and_for_each_match_serial_under_forced_split() {
    force_threads();
    let a: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
    let b: Vec<f64> = (0..500).map(|i| 100.0 - i as f64).collect();
    let par: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
    let ser: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    assert!((par - ser).abs() < 1e-9 * ser.abs().max(1.0));

    let mut buf = vec![0usize; 300];
    buf.par_iter_mut()
        .enumerate()
        .for_each(|(i, slot)| *slot = i * i);
    for (i, v) in buf.iter().enumerate() {
        assert_eq!(*v, i * i);
    }
}
