//! A vendored, dependency-free stand-in for the subset of
//! [criterion](https://docs.rs/criterion) that `juliqaoa`'s benches use.
//!
//! The build environment has no network access, so this shim implements honest
//! wall-clock measurement with warm-up, a fixed sample count and min/mean/max
//! reporting — none of criterion's statistical machinery (outlier classification,
//! regression detection, HTML reports).  Each sample times a batch of iterations
//! sized so a sample takes roughly `measurement_time / sample_size`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub use std::hint::black_box;

/// Measurement configuration and top-level entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepts (and ignores) CLI arguments, for signature compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a closure under a bare name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(
            &name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
    }

    /// Ends the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Mean nanoseconds per iteration over all samples, filled by `iter`.
    result: Option<Stats>,
}

#[derive(Clone, Copy)]
struct Stats {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

impl Bencher {
    /// Times `f`: warm-up, then `sample_size` samples of a batch of calls each.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up, and estimate the per-call cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_calls == 0 {
            black_box(f());
            warm_calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut total_ns = 0.0f64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total_ns += ns;
        }
        self.result = Some(Stats {
            min_ns,
            mean_ns: total_ns / self.sample_size as f64,
            max_ns,
        });
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        warm_up_time,
        measurement_time,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(stats) => println!(
            "{label:<50} time: [{} {} {}]",
            format_ns(stats.min_ns),
            format_ns(stats.mean_ns),
            format_ns(stats.max_ns),
        ),
        None => println!("{label:<50} (no measurement: closure never called iter)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, optionally with a configuration expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("spin", |b| {
            b.iter(|| black_box((0..100).sum::<u64>()));
        });
        let mut group = c.benchmark_group("grouped");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("case", 7), &7usize, |b, &n| {
            b.iter(|| black_box((0..n).sum::<usize>()));
        });
        group.finish();
    }
}
