//! A vendored, dependency-free stand-in for the subset of
//! [proptest](https://docs.rs/proptest) that `juliqaoa`'s property tests use.
//!
//! The build environment has no network access, so this shim keeps the `proptest!`
//! surface — strategies over ranges/tuples/`collection::vec`, `prop_assert*`,
//! `prop_assume`, `ProptestConfig::with_cases` — while replacing the engine with a
//! deterministic seeded runner and **no shrinking**: a failing case reports the case
//! index and seed so it can be replayed by re-running the test (generation is a pure
//! function of the seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried with fresh inputs.
    Reject,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Generates values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A strategy yielding a fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for fixed-length vectors of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `vec(element_strategy, len)`: a vector of exactly `len` generated elements.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `case` until `config.cases` passes are accumulated.  Rejections
    /// (`prop_assume!`) are retried with the next seed, up to a generous cap.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let mut passed: u32 = 0;
        let mut attempt: u64 = 0;
        let max_attempts = (self.config.cases as u64).saturating_mul(20).max(64);
        while passed < self.config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest shim: too many rejected cases ({passed}/{} passed after {attempt} attempts)",
                    self.config.cases
                );
            }
            let seed = 0x9E3779B97F4A7C15u64.wrapping_mul(attempt.wrapping_add(1));
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => {
                    panic!("property failed at case {attempt} (seed {seed:#x}): {message}");
                }
            }
            attempt += 1;
        }
    }
}

pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, TestRunner,
    };
}

/// Defines property tests. Mirrors proptest's macro for the supported shapes:
/// an optional `#![proptest_config(...)]` header, then `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(config);
                runner.run(|prop_rng| {
                    $( let $arg = $crate::Strategy::generate(&($strategy), prop_rng); )+
                    let check = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    check()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else` instead of `if !cond` keeps clippy's partial-ord lints
        // quiet for float comparisons at every call site.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case's inputs; the runner retries with fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5..2.5f64, n in 3usize..9) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vectors_have_requested_length(v in collection::vec(-1.0..1.0f64, 17)) {
            prop_assert_eq!(v.len(), 17);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..100, 0u64..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_case_info() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(|rng| {
            let x: f64 = Strategy::generate(&(0.0..1.0f64), rng);
            prop_assert!(x < -1.0, "x was {x}");
            Ok(())
        });
    }
}
