//! A vendored, dependency-free stand-in for the subset of
//! [serde_json](https://docs.rs/serde_json) that `juliqaoa` uses: `to_string`,
//! `to_string_pretty` and `from_str` over the shim [`serde::Value`] data model.
//!
//! Numbers are written with Rust's shortest-round-trip float formatting, so
//! `from_str(&to_string(x))` reproduces every finite `f64` bit-exactly.  Non-finite
//! floats serialise as `null`, matching real serde_json.

use serde::{Deserialize, Serialize, Value};

/// JSON serialisation/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialises a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises a value as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::Num(x) => {
            if x.is_finite() {
                // Shortest representation that round-trips; force a `.0` so integers
                // stay recognisably floats is NOT required (readers accept both).
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::Num(-2.5)]),
            ),
            ("b".into(), Value::Str("x \"y\"\nz".into())),
            ("c".into(), Value::Bool(true)),
            ("d".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed_pretty, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[0.1, 1.0 / 3.0, -1e-15, 6.02214076e23, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json at all").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn vec_of_f64_round_trip() {
        let v = vec![0.25, 1.5, -3.75];
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
