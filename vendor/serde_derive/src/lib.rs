//! Derive macros for the vendored serde shim.
//!
//! Supports exactly the type shapes used in this workspace: structs with named fields
//! (serialised as JSON objects keyed by field name) and enums whose variants are all
//! unit variants (serialised as the variant name string).  Anything else produces a
//! compile error naming the unsupported shape, so a future refactor fails loudly
//! instead of mis-serialising.
//!
//! Implemented without `syn`/`quote` (the environment has no network access): the input
//! token stream is walked directly and the generated impl is assembled as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    Struct { name: String, fields: Vec<String> },
    UnitEnum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips a leading sequence of `#[...]` attributes starting at `i`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips an optional `pub` / `pub(...)` visibility starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "serde shim derive does not support unit/tuple struct `{name}`"
                ))
            }
            Some(_) => i += 1,
            None => return Err(format!("missing body for `{name}`")),
        }
    };

    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();

    if kind == "struct" {
        let mut fields = Vec::new();
        let mut j = 0;
        while j < body_tokens.len() {
            j = skip_attributes(&body_tokens, j);
            j = skip_visibility(&body_tokens, j);
            match body_tokens.get(j) {
                Some(TokenTree::Ident(id)) => {
                    fields.push(id.to_string());
                    j += 1;
                }
                None => break,
                other => return Err(format!("unexpected token in `{name}` fields: {other:?}")),
            }
            match body_tokens.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
                other => return Err(format!("expected `:` after field, found {other:?}")),
            }
            // Consume the type: everything until a comma at angle-bracket depth 0.
            let mut depth = 0i32;
            while let Some(tok) = body_tokens.get(j) {
                if let TokenTree::Punct(p) = tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
        }
        Ok(Shape::Struct { name, fields })
    } else if kind == "enum" {
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body_tokens.len() {
            j = skip_attributes(&body_tokens, j);
            match body_tokens.get(j) {
                Some(TokenTree::Ident(id)) => {
                    variants.push(id.to_string());
                    j += 1;
                }
                None => break,
                other => return Err(format!("unexpected token in `{name}` variants: {other:?}")),
            }
            match body_tokens.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => j += 1,
                Some(TokenTree::Group(_)) => {
                    return Err(format!(
                        "serde shim derive supports only unit variants; `{name}` has a data variant"
                    ))
                }
                None => break,
                other => return Err(format!("unexpected token after variant: {other:?}")),
            }
        }
        Ok(Shape::UnitEnum { name, variants })
    } else {
        Err(format!("expected `struct` or `enum`, found `{kind}`"))
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let out = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let tag = match self {{ {arms} }};\n\
                         ::serde::Value::Str(::std::string::String::from(tag))\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let out = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field({f:?})\
                         .ok_or_else(|| ::std::format!(\"missing field `{f}` in {name}\"))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         if v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::std::format!(\"expected object for {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         let tag = v.as_str().ok_or_else(|| ::std::format!(\"expected string tag for {name}\"))?;\n\
                         match tag {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(::std::format!(\"unknown {name} variant {{other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}
