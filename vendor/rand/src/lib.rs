//! A vendored, dependency-free stand-in for the subset of [rand](https://docs.rs/rand)
//! that `juliqaoa` uses.
//!
//! The build environment has no network access, so this shim supplies the same API
//! surface backed by xoshiro256++ (seeded through SplitMix64).  All generators are
//! explicitly seeded throughout the workspace, so the only property that matters is
//! determinism-given-seed plus reasonable equidistribution — both of which
//! xoshiro256++ provides.  Streams differ from the real `StdRng` (ChaCha12); nothing
//! in the workspace depends on cross-crate stream compatibility.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the generator's full value range (`rng.gen::<T>()`).
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sampling range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 sampling range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sampling range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer sampling range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

macro_rules! signed_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sampling range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer sampling range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

signed_int_sample_range!(i64, i32, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its standard range (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (`shuffle`, `choose_multiple`).
    pub trait SliceRandom {
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// `amount` distinct elements sampled uniformly without replacement, yielded in
        /// selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
                picked.push(&self[indices[i]]);
            }
            picked.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&x));
            let n = rng.gen_range(10usize..20);
            assert!((10..20).contains(&n));
            let m = rng.gen_range(1u64..=6);
            assert!((1..=6).contains(&m));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(13);
        let v: Vec<usize> = (0..30).collect();
        let picked: Vec<usize> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}
