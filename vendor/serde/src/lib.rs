//! A vendored, dependency-free stand-in for the subset of [serde](https://docs.rs/serde)
//! that `juliqaoa` uses.
//!
//! The build environment has no network access, so this shim replaces serde's visitor
//! architecture with a much simpler design: every serializable type converts to and from
//! an in-memory [`Value`] tree, and the companion `serde_json` crate renders/parses that
//! tree as JSON.  `#[derive(Serialize, Deserialize)]` is provided by the vendored
//! `serde_derive` proc-macro and supports named-field structs and unit-variant enums —
//! exactly the shapes used across the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the data model JSON is rendered from).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integer (kept exact; JSON renders without a decimal point).
    UInt(u64),
    /// Signed negative integer.
    Int(i64),
    /// Floating-point number.
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Numeric payload widened to `f64`, accepting any of the numeric variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(x) => Some(x),
            Value::UInt(x) => Some(x as f64),
            Value::Int(x) => Some(x as f64),
            _ => None,
        }
    }

    /// Numeric payload as `u64` if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(x) => Some(x),
            Value::Int(x) if x >= 0 => Some(x as u64),
            Value::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// Numeric payload as `i64` if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(x) => Some(x),
            Value::UInt(x) if x <= i64::MAX as u64 => Some(x as i64),
            Value::Num(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(x as i64),
            _ => None,
        }
    }
}

/// Conversion into the serialization tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the serialization tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, found {v:?}"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(f64::from_value(v)? as f32)
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let raw = v.as_u64().ok_or_else(|| format!("expected unsigned integer, found {v:?}"))?;
                <$t>::try_from(raw).map_err(|_| format!("integer {raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::UInt(x as u64) } else { Value::Int(x) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let raw = v.as_i64().ok_or_else(|| format!("expected integer, found {v:?}"))?;
                <$t>::try_from(raw).map_err(|_| format!("integer {raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("expected string, found {v:?}"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, found {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T
where
    T: ?Sized,
{
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, String> {
        let items = v
            .as_array()
            .ok_or_else(|| format!("expected 2-element array, found {v:?}"))?;
        if items.len() != 2 {
            return Err(format!(
                "expected 2-element array, found {} elements",
                items.len()
            ));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

/// Types usable as JSON object keys (rendered as strings).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, String>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, String> {
        Ok(key.to_owned())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, String> {
                key.parse().map_err(|_| format!("invalid {} map key: {key:?}", stringify!($t)))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| format!("expected object, found {v:?}"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| format!("expected object, found {v:?}"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}
