//! # juliqaoa-rs
//!
//! A Rust reproduction of **JuliQAOA: Fast, Flexible QAOA Simulation** (Golden,
//! Bärtschi, O'Malley, Pelofske, Eidenbenz — SC-W 2023).
//!
//! JuliQAOA is an exact statevector simulator purpose-built for the Quantum Alternating
//! Operator Ansatz: instead of composing gate-level circuits and handing them to a
//! general simulator, it pre-computes the cost function over the feasible states and a
//! diagonalised form of the mixer Hamiltonian, then evaluates every round of the ansatz
//! with element-wise phase kernels, Walsh–Hadamard transforms and subspace mat-vecs.
//! This crate is the facade over the workspace that implements that design:
//!
//! | crate | contents |
//! |---|---|
//! | [`linalg`] | complex arithmetic, Walsh–Hadamard transforms, symmetric eigensolver |
//! | [`combinatorics`] | Gosper's hack, combinatorial ranking, Dicke subspaces |
//! | [`graphs`] | Erdős–Rényi / regular / structured graph generators |
//! | [`problems`] | MaxCut, k-SAT, Densest-k-Subgraph, Max-k-Vertex-Cover, … + pre-computation |
//! | [`mixers`] | Pauli-X product, Grover, Clique, Ring and custom mixers |
//! | [`core`] | the QAOA simulator, adjoint gradients, the Grover fast path |
//! | [`sampling`] | shot-based measurement: alias sampling, CVaR/Gibbs estimators |
//! | [`optim`] | BFGS, basin hopping, iterative extrapolated angle finding |
//! | [`circuit`] | gate-level and dense-operator baseline simulators |
//!
//! ## Quickstart (Listing 1 of the paper)
//!
//! ```
//! use juliqaoa::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Define the problem: MaxCut on a random G(6, 0.5) graph.
//! let n = 6;
//! let graph = erdos_renyi(n, 0.5, &mut rng);
//! // Pre-compute the objective values across all basis states.
//! let obj_vals = precompute_full(&MaxCut::new(graph));
//! // Generate the transverse-field mixer Σ X_i.
//! let mixer = Mixer::transverse_field(n);
//! // Three rounds with random angles.
//! let p = 3;
//! let angles = Angles::random(p, &mut rng);
//! let sim = Simulator::new(obj_vals, mixer).unwrap();
//! let res = sim.simulate(&angles).unwrap();
//! let exp_value = res.expectation_value();
//! assert!(exp_value > 0.0);
//! ```

pub use juliqaoa_circuit as circuit;
pub use juliqaoa_combinatorics as combinatorics;
pub use juliqaoa_core as core;
pub use juliqaoa_graphs as graphs;
pub use juliqaoa_linalg as linalg;
pub use juliqaoa_mixers as mixers;
pub use juliqaoa_optim as optim;
pub use juliqaoa_problems as problems;
pub use juliqaoa_sampling as sampling;

pub mod listing;

/// The most commonly used types and functions, re-exported for `use juliqaoa::prelude::*`.
pub mod prelude {
    pub use crate::listing::{dicke_states, get_exp_value, maxcut, simulate, states};
    pub use juliqaoa_combinatorics::DickeSubspace;
    pub use juliqaoa_core::{
        adjoint_gradient, adjoint_gradient_cached, Angles, CompressedGroverSimulator, InitialState,
        PrefixCache, QaoaError, SimulationResult, Simulator, Workspace,
    };
    pub use juliqaoa_graphs::{complete_graph, cycle_graph, erdos_renyi, random_regular, Graph};
    pub use juliqaoa_linalg::Complex64;
    pub use juliqaoa_mixers::{Mixer, PauliXMixer};
    pub use juliqaoa_optim::{
        basinhopping, bfgs, find_angles, median_angles, random_restart, BasinHoppingOptions,
        BfgsOptions, GradientMethod, IterativeOptions, QaoaObjective, RandomRestartOptions,
    };
    pub use juliqaoa_problems::{
        precompute_dicke, precompute_full, CostFunction, DensestKSubgraph, KSat, MaxCut,
        MaxKVertexCover,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        // Touch one symbol from each re-exported crate so a broken re-export fails here.
        assert_eq!(crate::combinatorics::binomial(5, 2), 10);
        assert_eq!(crate::graphs::complete_graph(4).num_edges(), 6);
        assert_eq!(crate::mixers::Mixer::transverse_field(3).dim(), 8);
        assert_eq!(crate::linalg::Complex64::ONE.re, 1.0);
    }
}
