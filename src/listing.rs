//! Thin, listing-style helpers mirroring the Julia API of the paper.
//!
//! The paper's Listings 1–3 use free functions (`states(n)`, `dicke_states(n, k)`,
//! `maxcut(graph, x)`, `simulate(...)`, `get_exp_value(...)`).  The idiomatic Rust API
//! lives in the individual crates, but these wrappers make the examples read almost
//! line-for-line like the paper and give new users an obvious entry point.

use juliqaoa_combinatorics::{bits, GosperIter};
use juliqaoa_core::{Angles, QaoaError, SimulationResult, Simulator};
use juliqaoa_graphs::Graph;
use juliqaoa_mixers::Mixer;

/// All `2ⁿ` computational basis states as 0/1 arrays — the paper's `states(n)`.
///
/// For performance-critical code prefer iterating `u64` masks
/// ([`juliqaoa_combinatorics::bits::all_states`]) and
/// [`juliqaoa_problems::precompute_full`], which avoid materialising bit arrays.
pub fn states(n: usize) -> Vec<Vec<u8>> {
    bits::all_states(n)
        .map(|x| bits::to_bit_array(x, n))
        .collect()
}

/// All weight-`k` basis states as 0/1 arrays — the paper's `dicke_states(n, k)`.
pub fn dicke_states(n: usize, k: usize) -> Vec<Vec<u8>> {
    GosperIter::new(n, k)
        .map(|x| bits::to_bit_array(x, n))
        .collect()
}

/// The MaxCut objective of a 0/1 assignment — the paper's `maxcut(graph, x)`.
pub fn maxcut(graph: &Graph, x: &[u8]) -> f64 {
    assert_eq!(
        x.len(),
        graph.num_vertices(),
        "assignment length must equal vertex count"
    );
    juliqaoa_graphs::analysis::cut_weight(graph, bits::from_bit_array(x))
}

/// Simulates a QAOA from flat angles `[β…, γ…]`, a mixer and pre-computed objective
/// values — the paper's `simulate(angles, mixer, obj_vals)`.
pub fn simulate(
    angles: &[f64],
    mixer: &Mixer,
    obj_vals: &[f64],
) -> Result<SimulationResult, QaoaError> {
    let sim = Simulator::new(obj_vals.to_vec(), mixer.clone())?;
    sim.simulate(&Angles::from_flat(angles))
}

/// Extracts the expectation value from a simulation result — the paper's
/// `get_exp_value(res)`.
pub fn get_exp_value(res: &SimulationResult) -> f64 {
    res.expectation_value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::cycle_graph;

    #[test]
    fn states_enumerations() {
        assert_eq!(
            states(2),
            vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]]
        );
        assert_eq!(dicke_states(3, 2).len(), 3);
        for s in dicke_states(4, 2) {
            assert_eq!(s.iter().filter(|&&b| b == 1).count(), 2);
        }
    }

    #[test]
    fn maxcut_helper_matches_analysis() {
        let g = cycle_graph(4);
        assert_eq!(maxcut(&g, &[1, 0, 1, 0]), 4.0);
        assert_eq!(maxcut(&g, &[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn listing1_style_pipeline() {
        let n = 4;
        let graph = cycle_graph(n);
        let obj_vals: Vec<f64> = states(n).iter().map(|x| maxcut(&graph, x)).collect();
        let mixer = Mixer::transverse_field(n);
        let angles = vec![0.3, 0.2, 0.5, 0.1]; // p = 2: betas then gammas
        let res = simulate(&angles, &mixer, &obj_vals).unwrap();
        let e = get_exp_value(&res);
        assert!(e > 0.0 && e <= 4.0);
    }
}
