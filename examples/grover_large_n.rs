//! The Grover-mixer fast path at large n (§2.4).
//!
//! Three stages:
//!
//! 1. cross-check the compressed simulator against the full statevector simulator at a
//!    size where both run (n = 12);
//! 2. run an n = 24 MaxCut Grover-QAOA where the degeneracy table is counted in parallel
//!    over all 16.7M states (the per-worker counting scheme of §2.4);
//! 3. run an n = 100 synthetic problem from an analytic degeneracy table — far beyond
//!    what any explicit statevector could hold.
//!
//! Run with: `cargo run --release --example grover_large_n`

use juliqaoa::prelude::*;
use juliqaoa::problems::degeneracies_full;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    // --- Stage 1: agreement with the full simulator at n = 12 ---------------------------
    let n = 12;
    let graph = erdos_renyi(n, 0.5, &mut rng);
    let cost = MaxCut::new(graph);
    let obj_vals = precompute_full(&cost);
    let full = Simulator::new(obj_vals, Mixer::grover_full(n)).expect("consistent setup");
    let table = degeneracies_full(&cost, rayon::current_num_threads());
    let compressed = CompressedGroverSimulator::from_table(&table);
    let angles = Angles::random(5, &mut rng);
    let e_full = full.expectation(&angles).expect("consistent setup");
    let e_comp = compressed.expectation(&angles);
    println!("n = {n}: full statevector ⟨C⟩ = {e_full:.10}");
    println!("n = {n}: compressed       ⟨C⟩ = {e_comp:.10}");
    println!(
        "        distinct values: {} (vs {} states)\n",
        compressed.num_distinct(),
        1u64 << n
    );

    // --- Stage 2: n = 24 with parallel degeneracy counting ------------------------------
    let n = 24;
    let graph = erdos_renyi(n, 0.5, &mut rng);
    let cost = MaxCut::new(graph);
    let start = Instant::now();
    let table = degeneracies_full(&cost, rayon::current_num_threads());
    let count_time = start.elapsed();
    let compressed = CompressedGroverSimulator::from_table(&table);
    let start = Instant::now();
    let e = compressed.expectation(&Angles::random(20, &mut rng));
    let sim_time = start.elapsed();
    println!(
        "n = {n}: degeneracy counting over 2^{n} states took {count_time:.2?} on {} threads",
        rayon::current_num_threads()
    );
    println!(
        "n = {n}: p = 20 Grover-QAOA round in {sim_time:.2?} over {} distinct values, ⟨C⟩ = {e:.4}\n",
        compressed.num_distinct()
    );

    // --- Stage 3: n = 100 from an analytic degeneracy table -----------------------------
    // The cost is the Hamming-weight ramp C(x) = wt(x); its degeneracies are binomial
    // coefficients, which overflow u64 near w ≈ 30, so the table is built in f64.
    let n = 100;
    let entries: Vec<(f64, f64)> = (0..=n)
        .map(|w| {
            (
                w as f64,
                juliqaoa::combinatorics::binomial::log2_binomial(n, w).exp2(),
            )
        })
        .collect();
    let sim = CompressedGroverSimulator::from_entries(entries);
    let start = Instant::now();
    let p = 50;
    let e = sim.expectation(&Angles::linear_ramp(p, 0.4));
    let elapsed = start.elapsed();
    println!(
        "n = {n}: p = {p} Grover-QAOA with an analytic degeneracy table ({} distinct values, ~2^{:.1} states) in {elapsed:.2?}",
        sim.num_distinct(),
        sim.total_states().log2()
    );
    println!("n = {n}: ⟨Hamming weight⟩ = {e:.4} (uniform superposition would give 50)");
}
