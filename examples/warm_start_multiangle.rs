//! Non-traditional QAOA variations: warm starts, per-round mixers, multi-angle layers
//! and threshold phase separators.
//!
//! The paper lists these as the "flexible" side of JuliQAOA (§1, §3): a custom
//! `initial_state`, an array of mixers of length `p`, an array of arrays of mixers with
//! nested angles, and a threshold-based phase separator that turns Grover-mixer QAOA
//! into Grover's search.
//!
//! Run with: `cargo run --release --example warm_start_multiangle`

use juliqaoa::core::multiangle::{MultiAngleSimulator, MultiAngles};
use juliqaoa::prelude::*;
use juliqaoa::problems::ThresholdCost;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 8;
    let p = 3;
    let graph = erdos_renyi(n, 0.5, &mut rng);
    let cost = MaxCut::new(graph.clone());
    let obj_vals = precompute_full(&cost);
    let best = obj_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let angles = Angles::random(p, &mut rng);

    // --- 1. Warm start: bias the initial state towards a greedy cut ----------------------
    let cold = Simulator::new(obj_vals.clone(), Mixer::transverse_field(n)).expect("setup");
    let e_cold = cold.expectation(&angles).expect("setup");

    // Build a warm-start state: uniform superposition tilted towards the best greedy cut
    // (each amplitude reweighted by 1 + C(x)/C_max).
    let warm_state: Vec<Complex64> = obj_vals
        .iter()
        .map(|&c| Complex64::from_real(1.0 + c / best))
        .collect();
    let warm = Simulator::new(obj_vals.clone(), Mixer::transverse_field(n))
        .expect("setup")
        .with_initial_state(InitialState::Custom(warm_state))
        .expect("valid warm-start state");
    let e_warm = warm.expectation(&angles).expect("setup");
    println!("same random angles, n = {n}, p = {p}:");
    println!("  cold start ⟨C⟩ = {e_cold:.4}");
    println!("  warm start ⟨C⟩ = {e_warm:.4}   (optimum {best})\n");

    // --- 2. A different mixer at every round --------------------------------------------
    let per_round = Simulator::with_mixers(
        obj_vals.clone(),
        vec![
            Mixer::transverse_field(n),
            Mixer::grover_full(n),
            Mixer::transverse_field(n),
        ],
    )
    .expect("setup");
    let e_mixed = per_round.expectation(&angles).expect("setup");
    println!("per-round mixers [X, Grover, X] ⟨C⟩ = {e_mixed:.4}\n");

    // --- 3. Multi-angle QAOA: two mixers, each with its own β, in every layer ------------
    let multi = MultiAngleSimulator::new(
        obj_vals.clone(),
        vec![
            vec![Mixer::transverse_field(n), Mixer::grover_full(n)],
            vec![Mixer::transverse_field(n), Mixer::grover_full(n)],
        ],
    )
    .expect("setup");
    let e_multi = multi
        .expectation(&MultiAngles {
            gammas: vec![0.4, 0.7],
            betas: vec![vec![0.3, 0.9], vec![0.2, 0.5]],
        })
        .expect("consistent angle structure");
    println!("multi-angle (2 mixers × 2 layers) ⟨C⟩ = {e_multi:.4}\n");

    // --- 4. Threshold phase separator + Grover mixer = Grover's search -------------------
    let threshold = best; // mark only the optimal cuts
    let marked = ThresholdCost::new(MaxCut::new(graph), threshold);
    let threshold_vals = precompute_full(&marked);
    let num_marked = threshold_vals.iter().filter(|&&v| v == 1.0).count();
    let grover = Simulator::new(threshold_vals, Mixer::grover_full(n)).expect("setup");
    let pi = std::f64::consts::PI;
    // Each round with β = γ = π performs one Grover iteration.
    let mut probability = Vec::new();
    for rounds in 0..=4usize {
        let a = Angles::new(vec![pi; rounds], vec![pi; rounds]);
        let res = grover.simulate(&a).expect("setup");
        probability.push(res.ground_state_probability());
    }
    println!(
        "threshold separator + Grover mixer ({} marked states out of {}):",
        num_marked,
        1 << n
    );
    for (rounds, prob) in probability.iter().enumerate() {
        println!("  p = {rounds}: P(optimal) = {prob:.4}");
    }
    println!("(the growth with p reproduces Grover-style amplitude amplification)");
}
