//! Quickstart: the paper's Listing 1, line for line.
//!
//! Evaluates a three-round MaxCut QAOA on a random Erdős–Rényi graph with the
//! transverse-field mixer, then reports the expectation value and the probability of
//! measuring an optimal cut.
//!
//! Run with: `cargo run --release --example quickstart`

use juliqaoa::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // Define the graph: n = 6, G(n, 0.5).
    let n = 6;
    let graph = erdos_renyi(n, 0.5, &mut rng);
    println!(
        "MaxCut instance: n = {}, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Calculate objective values across basis states (Listing 1 style, using the
    // explicit 0/1-array interface).
    let obj_vals: Vec<f64> = states(n).iter().map(|x| maxcut(&graph, x)).collect();

    // Generate the mixer; `[1]` in the paper's notation means Σ_i X_i.
    let mixer = Mixer::transverse_field(n);

    // Three rounds with random angles: angles[0..p] = betas, angles[p..2p] = gammas.
    let p = 3;
    let angles: Vec<f64> = (0..2 * p)
        .map(|_| rand::Rng::gen_range(&mut rng, 0.0..2.0 * std::f64::consts::PI))
        .collect();

    let res = simulate(&angles, &mixer, &obj_vals).expect("consistent problem setup");
    let exp_value = get_exp_value(&res);

    let best_cut = obj_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("random-angle ⟨C⟩            = {exp_value:.4}");
    println!("best possible cut           = {best_cut}");
    println!("approximation ratio         = {:.4}", exp_value / best_cut);
    println!(
        "P(measure an optimal cut)   = {:.4}",
        res.ground_state_probability()
    );

    // Now let the angle-finding outer loop do its job and compare.
    let sim = Simulator::new(obj_vals, mixer).expect("consistent problem setup");
    let found = find_angles(
        &sim,
        &IterativeOptions {
            target_p: p,
            basinhopping: BasinHoppingOptions {
                n_hops: 15,
                step_size: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "optimized ⟨C⟩ at p = {p}       = {:.4} (approximation ratio {:.4})",
        found.best_expectation(),
        found.best_expectation() / best_cut
    );
}
