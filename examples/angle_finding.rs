//! Comparing angle-finding strategies (Listing 3 and Figure 3 in miniature).
//!
//! Runs three strategies on the same MaxCut instance:
//!
//! 1. the paper's iterative extrapolation + basin hopping (`find_angles`),
//! 2. random local-minima exploration (`find_angles_rand`, i.e. repeated BFGS from
//!    random starts),
//! 3. median angles taken from the random searches of several other instances.
//!
//! Run with: `cargo run --release --example angle_finding`

use juliqaoa::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 8;
    let p = 4;

    let graph = erdos_renyi(n, 0.5, &mut rng);
    let cost = MaxCut::new(graph);
    let obj_vals = precompute_full(&cost);
    let best = obj_vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let sim = Simulator::new(obj_vals, Mixer::transverse_field(n)).expect("consistent setup");

    // --- Strategy 1: iterative extrapolated basin hopping --------------------------------
    let iterative = find_angles(
        &sim,
        &IterativeOptions {
            target_p: p,
            basinhopping: BasinHoppingOptions {
                n_hops: 12,
                step_size: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
        &mut rng,
    );

    // --- Strategy 2: random local minima (100 BFGS restarts, as in Lotshaw et al.) -------
    let random = random_restart(
        || QaoaObjective::new(&sim),
        2 * p,
        &RandomRestartOptions {
            restarts: 100,
            ..Default::default()
        },
        &mut rng,
    );

    // --- Strategy 3: median angles from random searches on other instances ---------------
    let mut other_instance_angles = Vec::new();
    for seed in 0..10u64 {
        let g = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(500 + seed));
        let obj = precompute_full(&MaxCut::new(g));
        let s = Simulator::new(obj, Mixer::transverse_field(n)).expect("consistent setup");
        let r = random_restart(
            || QaoaObjective::new(&s),
            2 * p,
            &RandomRestartOptions {
                restarts: 10,
                ..Default::default()
            },
            &mut rng,
        );
        other_instance_angles.push(r.x);
    }
    let median = median_angles(&other_instance_angles);
    let median_expectation = sim
        .expectation(&Angles::from_flat(&median))
        .expect("consistent setup");

    println!("MaxCut, n = {n}, p = {p}, optimal cut = {best}\n");
    println!("strategy                         <C>        approximation ratio   simulations");
    println!(
        "iterative basin hopping        {:8.4}        {:.4}              {}",
        iterative.best_expectation(),
        iterative.best_expectation() / best,
        iterative.simulations
    );
    println!(
        "random local minima (100x)     {:8.4}        {:.4}              {}",
        random.maximized_value(),
        random.maximized_value() / best,
        random.function_evals + random.gradient_evals
    );
    println!(
        "median angles (10 instances)   {:8.4}        {:.4}              1",
        median_expectation,
        median_expectation / best
    );
}
