//! Constrained optimization: Densest k-Subgraph with the Clique mixer (Listing 2).
//!
//! The feasible states are the `C(n,k)` bitstrings with Hamming weight `k`; the cost
//! vector, mixer matrix and statevector all live in that subspace, never in the full
//! `2ⁿ` space.  The Clique-mixer eigendecomposition is cached to a file so a second run
//! (or a larger experiment re-using the same mixer) skips the expensive pre-computation,
//! exactly like `mixer_clique(n, k; file=...)`.
//!
//! Run with: `cargo run --release --example constrained_densest_subgraph`

use juliqaoa::mixers::{cache, Mixer};
use juliqaoa::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    let n = 10;
    let k = 5;
    let graph = erdos_renyi(n, 0.5, &mut rng);
    let problem = DensestKSubgraph::new(graph, k);

    // Pre-compute the cost function across the Dicke(n, k) states only.
    let subspace = DickeSubspace::new(n, k);
    let obj_vals = precompute_dicke(&problem, &subspace);
    println!(
        "Densest {k}-subgraph on n = {n}: feasible subspace has {} states (vs 2^{n} = {})",
        subspace.dim(),
        1u64 << n
    );

    // Load the Clique mixer from the cache, or compute and store it.
    let cache_path = std::env::temp_dir().join(format!("juliqaoa_clique_{n}_{k}.json"));
    let (mixer, elapsed) = {
        let start = std::time::Instant::now();
        let m = cache::clique_mixer_cached(n, k, &cache_path).expect("cache file is writable");
        (Mixer::Subspace(m), start.elapsed())
    };
    println!(
        "Clique mixer ready in {:.2?} (cached at {}; delete it to force recomputation)",
        elapsed,
        cache_path.display()
    );

    // Optimize angles for increasing p with the iterative extrapolation strategy.
    let best = juliqaoa_problems::precompute::max_objective(&obj_vals);
    let sim = Simulator::new(obj_vals, mixer).expect("consistent problem setup");
    let result = find_angles(
        &sim,
        &IterativeOptions {
            target_p: 4,
            basinhopping: BasinHoppingOptions {
                n_hops: 10,
                step_size: 1.0,
                ..Default::default()
            },
            ..Default::default()
        },
        &mut rng,
    );

    println!("\n   p    <C>        approximation ratio");
    for (p, _, expectation) in &result.per_round {
        println!("   {p}    {expectation:.4}     {:.4}", expectation / best);
    }
    println!("\noptimal k-subgraph density: {best} edges");
    println!("total simulator calls: {}", result.simulations);
}
