//! The outer-loop parallelism contract under a genuinely multi-threaded schedule.
//!
//! `RAYON_NUM_THREADS=4` is set before the shim's thread count is first read, so even
//! a single-core CI box runs `random_restart` and `grid_search` with real worker
//! threads.  Three properties are checked at that schedule:
//!
//! 1. worker threads observe the outer-parallelism guard (inner kernels serial);
//! 2. results are identical to a hand-rolled serial scan (same seed, same
//!    tie-breaking);
//! 3. repeated runs are bit-identical.

use juliqaoa_linalg::in_outer_parallelism;
use juliqaoa_optim::{
    bfgs, grid_search, random_restart, BfgsOptions, FnObjective, RandomRestartOptions,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

const FORCED_THREADS: usize = 4;

fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", FORCED_THREADS.to_string());
    assert_eq!(rayon::current_num_threads(), FORCED_THREADS);
}

/// A rugged objective whose evaluations record the guard state of their thread.
fn guarded_objective<'a>(
    saw_guard: &'a AtomicBool,
    evals: &'a AtomicUsize,
) -> FnObjective<impl FnMut(&[f64]) -> f64 + 'a> {
    FnObjective::new(1, move |x: &[f64]| {
        if in_outer_parallelism() {
            saw_guard.store(true, Ordering::SeqCst);
        }
        evals.fetch_add(1, Ordering::SeqCst);
        (3.0 * x[0]).sin() + 0.3 * (x[0] - 4.0).powi(2)
    })
}

#[test]
fn random_restart_parallel_schedule_matches_serial_reference() {
    force_threads();
    let saw_guard = AtomicBool::new(false);
    let evals = AtomicUsize::new(0);
    let opts = RandomRestartOptions {
        restarts: 24,
        ..Default::default()
    };

    let through_api = random_restart(
        || guarded_objective(&saw_guard, &evals),
        1,
        &opts,
        &mut StdRng::seed_from_u64(123),
    );
    assert!(
        saw_guard.load(Ordering::SeqCst),
        "workers must hold the outer-parallelism guard while evaluating"
    );
    assert!(evals.load(Ordering::SeqCst) > 0);

    // Hand-rolled serial reference: same draws, same BFGS, strict-< tie-breaking.
    let mut rng = StdRng::seed_from_u64(123);
    let starts: Vec<Vec<f64>> = (0..opts.restarts)
        .map(|_| vec![rng.gen_range(opts.lo..opts.hi)])
        .collect();
    let mut reference = FnObjective::new(1, |x: &[f64]| {
        (3.0 * x[0]).sin() + 0.3 * (x[0] - 4.0).powi(2)
    });
    let mut best_value = f64::INFINITY;
    let mut best_x = Vec::new();
    for x0 in &starts {
        let r = bfgs(&mut reference, x0, &BfgsOptions::default());
        if r.value < best_value {
            best_value = r.value;
            best_x = r.x;
        }
    }
    assert_eq!(through_api.x, best_x);
    assert_eq!(through_api.value, best_value);

    // Same seed again: bit-identical.
    let again = random_restart(
        || guarded_objective(&saw_guard, &evals),
        1,
        &opts,
        &mut StdRng::seed_from_u64(123),
    );
    assert_eq!(again.x, through_api.x);
    assert_eq!(again.value, through_api.value);
    assert_eq!(again.function_evals, through_api.function_evals);
}

#[test]
fn grid_search_parallel_schedule_matches_serial_reference() {
    force_threads();
    let saw_guard = AtomicBool::new(false);
    let evals = AtomicUsize::new(0);
    let f = |x: &[f64]| ((x[0] * 3.1).sin() + (x[1] * 1.7).cos()).abs();

    let resolution = 80; // 6400 points: far above the block-parallel threshold
    let parallel = grid_search(
        || {
            FnObjective::new(2, |x: &[f64]| {
                if in_outer_parallelism() {
                    saw_guard.store(true, Ordering::SeqCst);
                }
                evals.fetch_add(1, Ordering::SeqCst);
                f(x)
            })
        },
        2,
        -2.0,
        2.0,
        resolution,
    );
    assert!(
        saw_guard.load(Ordering::SeqCst),
        "grid workers must hold the outer-parallelism guard"
    );
    assert_eq!(evals.load(Ordering::SeqCst), resolution * resolution);

    // Serial reference with odometer ordering and strict-< tie-breaking.
    let step = 4.0 / resolution as f64;
    let mut best = (f64::INFINITY, vec![0.0; 2]);
    for j in 0..resolution {
        for i in 0..resolution {
            let point = vec![
                -2.0 + (i as f64 + 0.5) * step,
                -2.0 + (j as f64 + 0.5) * step,
            ];
            let value = f(&point);
            if value < best.0 {
                best = (value, point);
            }
        }
    }
    assert_eq!(parallel.value, best.0);
    assert_eq!(parallel.x, best.1);
}
