//! Saving and resuming angle-finding progress.
//!
//! `find_angles` in the paper stores the results of every round in a user-defined file;
//! "if the angle-finding is interrupted for any reason, e.g. a server crash, it will load
//! any saved results and resume from the last calculated angles."  [`AngleProgress`] is
//! that file format: a map from round number `p` to the best flat angle vector and its
//! expectation value, serialised as JSON.

use juliqaoa_core::QaoaError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Wraps any load/save failure as [`QaoaError::Persistence`], capturing the path.
fn persistence_error(path: &Path, message: impl std::fmt::Display) -> QaoaError {
    QaoaError::Persistence {
        path: path.display().to_string(),
        message: message.to_string(),
    }
}

/// The best angles found for one round count.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SavedAngles {
    /// Flat angle vector `[β_1…β_p, γ_1…γ_p]`.
    pub angles: Vec<f64>,
    /// The (maximised) expectation value those angles achieve.
    pub expectation: f64,
}

/// Accumulated progress of an iterative angle-finding run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AngleProgress {
    /// Best result per round count `p`.
    pub rounds: BTreeMap<usize, SavedAngles>,
}

impl AngleProgress {
    /// An empty progress record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or overwrites) the result for `p` rounds.
    pub fn record(&mut self, p: usize, angles: Vec<f64>, expectation: f64) {
        self.rounds.insert(
            p,
            SavedAngles {
                angles,
                expectation,
            },
        );
    }

    /// The saved result for `p` rounds, if any.
    pub fn get(&self, p: usize) -> Option<&SavedAngles> {
        self.rounds.get(&p)
    }

    /// The largest round count recorded so far.
    pub fn max_round(&self) -> Option<usize> {
        self.rounds.keys().next_back().copied()
    }

    /// Loads progress from a JSON file; a missing file yields empty progress.
    ///
    /// Unreadable or unparseable files surface as [`QaoaError::Persistence`] rather
    /// than panicking, so a service resuming hundreds of runs can report exactly which
    /// file is corrupt and carry on with the rest.
    pub fn load_or_default(path: impl AsRef<Path>) -> Result<Self, QaoaError> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Self::new());
        }
        let json = fs::read_to_string(path).map_err(|e| persistence_error(path, e))?;
        serde_json::from_str(&json).map_err(|e| persistence_error(path, e))
    }

    /// Saves progress to a JSON file, creating parent directories as needed.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), QaoaError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|e| persistence_error(path, e))?;
            }
        }
        let json = serde_json::to_string_pretty(self).map_err(|e| persistence_error(path, e))?;
        fs::write(path, json).map_err(|e| persistence_error(path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "juliqaoa_angles_{tag}_{}_{id}.json",
            std::process::id()
        ))
    }

    #[test]
    fn record_get_and_max_round() {
        let mut p = AngleProgress::new();
        assert_eq!(p.max_round(), None);
        p.record(1, vec![0.1, 0.2], 1.5);
        p.record(3, vec![0.1; 6], 2.5);
        p.record(2, vec![0.1; 4], 2.0);
        assert_eq!(p.max_round(), Some(3));
        assert_eq!(p.get(2).unwrap().expectation, 2.0);
        assert!(p.get(4).is_none());
        // Overwriting replaces.
        p.record(1, vec![0.9, 0.9], 1.9);
        assert_eq!(p.get(1).unwrap().expectation, 1.9);
    }

    #[test]
    fn save_and_load_round_trip() {
        let path = temp_path("roundtrip");
        let mut p = AngleProgress::new();
        p.record(1, vec![0.25, 1.5], 3.25);
        p.record(2, vec![0.1, 0.2, 0.3, 0.4], 4.5);
        p.save(&path).unwrap();
        let loaded = AngleProgress::load_or_default(&path).unwrap();
        assert_eq!(loaded, p);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_loads_as_empty() {
        let p = AngleProgress::load_or_default("/no/such/juliqaoa/file.json").unwrap();
        assert!(p.rounds.is_empty());
    }

    #[test]
    fn corrupt_file_is_a_persistence_error_naming_the_path() {
        let path = temp_path("corrupt");
        fs::write(&path, "not json at all").unwrap();
        let err = AngleProgress::load_or_default(&path).unwrap_err();
        match &err {
            QaoaError::Persistence { path: p, .. } => {
                assert!(p.contains("juliqaoa_angles_corrupt"))
            }
            other => panic!("expected Persistence error, got {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unwritable_path_is_a_persistence_error() {
        let mut p = AngleProgress::new();
        p.record(1, vec![0.1, 0.2], 1.0);
        // `/proc` rejects directory creation, so `save` must error, not panic.
        let err = p
            .save("/proc/nonexistent/juliqaoa/progress.json")
            .unwrap_err();
        assert!(matches!(err, QaoaError::Persistence { .. }));
    }
}
