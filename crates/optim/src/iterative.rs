//! The paper's iterative, extrapolation-seeded angle finder (`find_angles`).
//!
//! §2.3: high-quality angles for a `(p−1)`-round QAOA seed the `p`-round search; starting
//! from the extrapolated angles, basin hopping explores nearby local minima.  Progress is
//! saved per round so an interrupted run resumes where it stopped, and callers can skip
//! the iterative build-up by providing explicit starting angles.

use crate::basinhopping::{basinhopping, BasinHoppingOptions};
use crate::objective::{GradientMethod, QaoaObjective};
use crate::persistence::AngleProgress;
use juliqaoa_core::{Angles, Simulator};
use rand::Rng;
use std::path::PathBuf;

/// Options controlling [`find_angles`].
#[derive(Clone, Debug)]
pub struct IterativeOptions {
    /// The largest number of rounds to optimize up to.
    pub target_p: usize,
    /// Basin-hopping parameters used at every round.
    pub basinhopping: BasinHoppingOptions,
    /// Gradient method for the inner BFGS (adjoint by default).
    pub gradient_method: GradientMethod,
    /// Optional progress file: existing rounds are loaded, new rounds are appended
    /// (Listing 3's `file=` keyword).
    pub save_file: Option<PathBuf>,
    /// Optional explicit starting angles for `target_p` rounds; when given, the
    /// iterative build-up is skipped and basin hopping starts here directly (the
    /// `initial_angles` keyword).
    pub initial_angles: Option<Vec<f64>>,
    /// Number of random seeds tried at `p = 1` before the best is polished.
    pub p1_seeds: usize,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        IterativeOptions {
            target_p: 1,
            basinhopping: BasinHoppingOptions::default(),
            gradient_method: GradientMethod::Adjoint,
            save_file: None,
            initial_angles: None,
            p1_seeds: 5,
        }
    }
}

/// The outcome of an iterative angle-finding run.
#[derive(Clone, Debug)]
pub struct IterativeResult {
    /// For every round count `1..=target_p`: the best flat angles and the expectation
    /// value they achieve.
    pub per_round: Vec<(usize, Vec<f64>, f64)>,
    /// Total number of simulator evaluations spent.
    pub simulations: usize,
}

impl IterativeResult {
    /// The best angles found for the largest round count.
    pub fn best_angles(&self) -> &[f64] {
        &self.per_round.last().expect("at least one round").1
    }

    /// The best expectation value at the largest round count.
    pub fn best_expectation(&self) -> f64 {
        self.per_round.last().expect("at least one round").2
    }

    /// The best expectation value found for a specific round count, if computed.
    pub fn expectation_at(&self, p: usize) -> Option<f64> {
        self.per_round
            .iter()
            .find(|(q, _, _)| *q == p)
            .map(|(_, _, e)| *e)
    }
}

/// Finds high-quality angles for `1..=target_p` rounds by iterative extrapolation and
/// basin hopping, maximising the simulator's expectation value.
pub fn find_angles<R: Rng + ?Sized>(
    sim: &Simulator,
    opts: &IterativeOptions,
    rng: &mut R,
) -> IterativeResult {
    assert!(opts.target_p >= 1, "target_p must be at least 1");

    // Resume from saved progress when a file is given.
    let mut progress = match &opts.save_file {
        Some(path) => AngleProgress::load_or_default(path).unwrap_or_default(),
        None => AngleProgress::new(),
    };

    let mut objective = QaoaObjective::with_gradient_method(sim, opts.gradient_method);
    let mut per_round = Vec::new();

    // Explicit initial angles short-circuit the iterative build-up.
    if let Some(init) = &opts.initial_angles {
        assert_eq!(
            init.len(),
            2 * opts.target_p,
            "initial_angles must have length 2·target_p"
        );
        let res = basinhopping(&mut objective, init, &opts.basinhopping, rng);
        let expectation = -res.value;
        per_round.push((opts.target_p, res.x.clone(), expectation));
        if let Some(path) = &opts.save_file {
            progress.record(opts.target_p, res.x, expectation);
            let _ = progress.save(path);
        }
        return IterativeResult {
            per_round,
            simulations: objective.simulation_count(),
        };
    }

    let mut previous_best: Option<Vec<f64>> = None;
    for p in 1..=opts.target_p {
        // Re-use saved work when resuming.
        if let Some(saved) = progress.get(p) {
            per_round.push((p, saved.angles.clone(), saved.expectation));
            previous_best = Some(saved.angles.clone());
            continue;
        }

        let seed_flat = match &previous_best {
            Some(prev) => {
                // Two candidate seeds: linear extrapolation of the (p−1)-round schedule,
                // and the (p−1)-round angles with a zero round appended (which reproduces
                // the (p−1)-round circuit exactly and therefore guarantees no regression).
                let prev_angles = Angles::from_flat(prev);
                let extrapolated = prev_angles.extrapolate().to_flat();
                let padded = {
                    let mut betas = prev_angles.betas().to_vec();
                    let mut gammas = prev_angles.gammas().to_vec();
                    betas.push(0.0);
                    gammas.push(0.0);
                    Angles::new(betas, gammas).to_flat()
                };
                let (v_ext, v_pad) = {
                    use crate::objective::Objective;
                    (objective.value(&extrapolated), objective.value(&padded))
                };
                if v_ext <= v_pad {
                    extrapolated
                } else {
                    padded
                }
            }
            None => {
                // p = 1: take the best of a handful of random seeds as the start.
                let mut best: Option<(Vec<f64>, f64)> = None;
                for _ in 0..opts.p1_seeds.max(1) {
                    let candidate = Angles::random(1, rng).to_flat();
                    let value = {
                        use crate::objective::Objective;
                        objective.value(&candidate)
                    };
                    if best.as_ref().map(|(_, v)| value < *v).unwrap_or(true) {
                        best = Some((candidate, value));
                    }
                }
                best.expect("p1_seeds >= 1").0
            }
        };

        let res = basinhopping(&mut objective, &seed_flat, &opts.basinhopping, rng);
        let mut best_angles = res.x;
        let mut expectation = -res.value;

        // Monotonicity safeguard: a p-round QAOA can always reproduce the best
        // (p−1)-round result by zeroing the extra round, so never report worse.
        if let Some((_, prev_flat, prev_expectation)) = per_round.last() {
            if *prev_expectation > expectation {
                let prev_angles = Angles::from_flat(prev_flat);
                let mut betas = prev_angles.betas().to_vec();
                let mut gammas = prev_angles.gammas().to_vec();
                betas.push(0.0);
                gammas.push(0.0);
                best_angles = Angles::new(betas, gammas).to_flat();
                expectation = *prev_expectation;
            }
        }

        per_round.push((p, best_angles.clone(), expectation));
        previous_best = Some(best_angles.clone());

        if let Some(path) = &opts.save_file {
            progress.record(p, best_angles, expectation);
            let _ = progress.save(path);
        }
    }

    IterativeResult {
        per_round,
        simulations: objective.simulation_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::erdos_renyi;
    use juliqaoa_mixers::Mixer;
    use juliqaoa_problems::{precompute_full, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_sim(seed: u64) -> Simulator {
        let graph = erdos_renyi(6, 0.5, &mut StdRng::seed_from_u64(seed));
        let obj = precompute_full(&MaxCut::new(graph));
        Simulator::new(obj, Mixer::transverse_field(6)).unwrap()
    }

    fn quick_options(target_p: usize) -> IterativeOptions {
        IterativeOptions {
            target_p,
            basinhopping: BasinHoppingOptions {
                n_hops: 3,
                ..Default::default()
            },
            p1_seeds: 3,
            ..Default::default()
        }
    }

    #[test]
    fn expectation_improves_monotonically_with_rounds() {
        let sim = small_sim(17);
        let res = find_angles(&sim, &quick_options(3), &mut StdRng::seed_from_u64(1));
        assert_eq!(res.per_round.len(), 3);
        // Each added round can only help (the optimizer can always reproduce p−1 by
        // setting the extra angles to zero); allow a small numerical slack.
        for w in res.per_round.windows(2) {
            assert!(
                w[1].2 >= w[0].2 - 1e-6,
                "round {} expectation {} dropped below round {} expectation {}",
                w[1].0,
                w[1].2,
                w[0].0,
                w[0].2
            );
        }
        // And p = 3 should beat the uniform-superposition baseline comfortably.
        let mean = sim.objective_values().iter().sum::<f64>() / sim.dim() as f64;
        assert!(res.best_expectation() > mean);
        assert!(res.simulations > 0);
        assert_eq!(res.best_angles().len(), 6);
        assert_eq!(res.expectation_at(2), Some(res.per_round[1].2));
        assert_eq!(res.expectation_at(9), None);
    }

    #[test]
    fn p1_angles_get_close_to_grid_optimum() {
        let sim = small_sim(23);
        let opts = IterativeOptions {
            target_p: 1,
            basinhopping: BasinHoppingOptions {
                n_hops: 30,
                step_size: 1.5,
                ..Default::default()
            },
            p1_seeds: 5,
            ..Default::default()
        };
        let res = find_angles(&sim, &opts, &mut StdRng::seed_from_u64(3));
        // Reference: dense grid over (β, γ).
        let mut best_grid = f64::NEG_INFINITY;
        for ib in 0..40 {
            for ig in 0..40 {
                let beta = ib as f64 * std::f64::consts::PI / 40.0;
                let gamma = ig as f64 * std::f64::consts::PI / 40.0;
                let e = sim
                    .expectation(&Angles::new(vec![beta], vec![gamma]))
                    .unwrap();
                best_grid = best_grid.max(e);
            }
        }
        assert!(
            res.best_expectation() >= best_grid - 0.05,
            "iterative p=1 result {} is far below grid optimum {}",
            res.best_expectation(),
            best_grid
        );
    }

    #[test]
    fn explicit_initial_angles_skip_the_buildup() {
        let sim = small_sim(29);
        let opts = IterativeOptions {
            target_p: 2,
            initial_angles: Some(vec![0.3, 0.2, 0.5, 0.6]),
            basinhopping: BasinHoppingOptions {
                n_hops: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = find_angles(&sim, &opts, &mut StdRng::seed_from_u64(4));
        assert_eq!(res.per_round.len(), 1);
        assert_eq!(res.per_round[0].0, 2);
        assert_eq!(res.best_angles().len(), 4);
    }

    #[test]
    fn progress_file_resumes_without_recomputation() {
        let sim = small_sim(31);
        let path = std::env::temp_dir().join(format!(
            "juliqaoa_iterative_test_{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        let mut opts = quick_options(2);
        opts.save_file = Some(path.clone());
        let first = find_angles(&sim, &opts, &mut StdRng::seed_from_u64(5));
        assert!(path.exists());

        // Resume to a higher target: rounds 1 and 2 come from the file verbatim.
        let mut opts3 = quick_options(3);
        opts3.save_file = Some(path.clone());
        let second = find_angles(&sim, &opts3, &mut StdRng::seed_from_u64(999));
        assert_eq!(second.per_round[0].1, first.per_round[0].1);
        assert_eq!(second.per_round[1].1, first.per_round[1].1);
        assert_eq!(second.per_round.len(), 3);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic]
    fn zero_target_p_panics() {
        let sim = small_sim(2);
        let _ = find_angles(
            &sim,
            &IterativeOptions {
                target_p: 0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(0),
        );
    }
}
