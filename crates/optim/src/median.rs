//! The median-angles heuristic.
//!
//! The third baseline of Figure 3: run the random local-minima search over a large
//! number of problem instances, then take the coordinate-wise median of the resulting
//! angle vectors and use those fixed angles for every new instance.  The appeal is that
//! no per-instance optimization is needed at all; the cost is a lower and
//! instance-agnostic quality.

/// Coordinate-wise median of a set of equally long angle vectors.
///
/// # Panics
/// Panics if the set is empty or the vectors have inconsistent lengths.
pub fn median_angles(angle_sets: &[Vec<f64>]) -> Vec<f64> {
    assert!(
        !angle_sets.is_empty(),
        "median of an empty angle collection"
    );
    let dim = angle_sets[0].len();
    for set in angle_sets {
        assert_eq!(set.len(), dim, "angle vectors have inconsistent lengths");
    }
    (0..dim)
        .map(|i| {
            let mut column: Vec<f64> = angle_sets.iter().map(|s| s[i]).collect();
            column.sort_by(|a, b| a.total_cmp(b));
            let m = column.len();
            if m % 2 == 1 {
                column[m / 2]
            } else {
                0.5 * (column[m / 2 - 1] + column[m / 2])
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_count_takes_middle_element() {
        let sets = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![2.0, 20.0]];
        assert_eq!(median_angles(&sets), vec![2.0, 20.0]);
    }

    #[test]
    fn even_count_averages_middle_pair() {
        let sets = vec![vec![1.0], vec![2.0], vec![3.0], vec![10.0]];
        assert_eq!(median_angles(&sets), vec![2.5]);
    }

    #[test]
    fn single_set_is_its_own_median() {
        let sets = vec![vec![0.4, 0.7, -1.0]];
        assert_eq!(median_angles(&sets), vec![0.4, 0.7, -1.0]);
    }

    #[test]
    fn robust_to_outliers() {
        let sets = vec![
            vec![0.5],
            vec![0.52],
            vec![0.48],
            vec![0.51],
            vec![100.0], // outlier
        ];
        let m = median_angles(&sets);
        assert!((m[0] - 0.51).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_collection_panics() {
        let _ = median_angles(&[]);
    }

    #[test]
    #[should_panic]
    fn inconsistent_lengths_panic() {
        let _ = median_angles(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
