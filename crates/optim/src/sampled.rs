//! Shot-based (sampled) objectives for the angle-finding outer loop.
//!
//! A [`SampledObjective`] replaces the exact `⟨C⟩` of
//! [`crate::objective::QaoaObjective`] with a shot estimate: the forward pass still
//! evolves `|β,γ⟩` exactly (reusing the [`PrefixCache`] suffix replay, so sweeps pay
//! one round per point instead of `p`), but the returned value is a
//! [`ShotEstimator`] — sample mean, CVaR-α or the Gibbs soft-max — over `shots`
//! measurements of the final state.  This is what angle finding against hardware (or
//! a risk-aware objective) actually optimizes.
//!
//! # Determinism
//!
//! Shot noise is *frozen per evaluation point*: the sampler's seed for an evaluation
//! at `x` is derived from the objective's base seed and the exact bit patterns of
//! `x` (`fold_bits` + `derive_stream_seed`), so evaluating the same point twice —
//! or from different worker threads, or in a different scan order — draws the same
//! shots and returns the same value bit-for-bit.  Combined with the sampler's
//! thread-independent shard streams, every optimizer driver in this crate
//! (`grid_search`, `random_restart`, `basinhopping`) stays bit-identical across
//! `RAYON_NUM_THREADS` settings when fed sampled objectives, exactly as with exact
//! ones.
//!
//! Gradients fall back to the [`Objective`] default (central finite differences).
//! There is no adjoint path through a histogram; with frozen per-point noise the FD
//! gradient is a deterministic (if noisy) descent signal, which is all the
//! basin-hopping inner loop needs.

use crate::objective::{Objective, PrefixCacheHome};
use juliqaoa_combinatorics::{derive_stream_seed, fold_bits};
use juliqaoa_core::{Angles, PrefixCache, PrefixStats, Simulator, Workspace};
use juliqaoa_sampling::{SampleCounts, ShotEstimator, StateSampler};
use std::sync::atomic::{AtomicU64, Ordering};

/// Domain tag separating per-evaluation sampling streams from other derived streams
/// (see `juliqaoa_combinatorics::seeding`).
const EVAL_DOMAIN: u64 = 0x5A11;

/// A shot-estimated QAOA objective (negated, like every objective here: optimizers
/// minimise, QAOA maximises).
pub struct SampledObjective<'a> {
    sim: &'a Simulator,
    ws: Workspace,
    prefix: Option<PrefixCache>,
    home: Option<&'a PrefixCacheHome>,
    shots: u64,
    estimator: ShotEstimator,
    seed: u64,
    evals: usize,
    /// Optional shared tally every draw adds to — how a job engine counts shots
    /// exactly even when drivers hide evaluations inside gradient probes.
    shot_tally: Option<&'a AtomicU64>,
}

impl<'a> SampledObjective<'a> {
    /// A sampled objective drawing `shots` per evaluation, aggregated by `estimator`,
    /// with every shot stream derived from `seed`.
    ///
    /// # Panics
    /// Panics if `shots == 0` or the estimator's parameters are invalid
    /// ([`ShotEstimator::validate`]) — service-facing callers validate specs first
    /// and surface errors as 4xx instead.
    pub fn new(sim: &'a Simulator, shots: u64, estimator: ShotEstimator, seed: u64) -> Self {
        assert!(shots > 0, "sampled objective needs at least one shot");
        estimator
            .validate()
            .expect("estimator parameters are valid");
        SampledObjective {
            ws: sim.workspace(),
            sim,
            prefix: Some(PrefixCache::new()),
            home: None,
            shots,
            estimator,
            seed,
            evals: 0,
            shot_tally: None,
        }
    }

    /// Disables prefix-state reuse on the forward evolution (bit-identical either
    /// way; see [`crate::objective::QaoaObjective::without_prefix_reuse`]).
    pub fn without_prefix_reuse(mut self) -> Self {
        self.prefix = None;
        self.home = None;
        self
    }

    /// Checks this objective's prefix cache out of `home`, returning it (with its
    /// reuse counters) when the objective is dropped — the same parking protocol as
    /// [`crate::objective::QaoaObjective::with_cache_home`], so a job engine's
    /// per-instance checkpoints survive across sampled jobs too.  Sampling is
    /// unaffected: prefix reuse only changes how the forward state is reached,
    /// bit-identically.
    pub fn with_cache_home(mut self, home: &'a PrefixCacheHome) -> Self {
        self.prefix = Some(home.checkout());
        self.home = Some(home);
        self
    }

    /// Adds every draw to `tally`.  Unlike [`SampledObjective::shots_drawn`], a
    /// shared tally survives the objective (drivers build one objective per worker
    /// and drop them internally) and counts the evaluations hidden inside
    /// finite-difference gradient probes.
    pub fn with_shot_tally(mut self, tally: &'a AtomicU64) -> Self {
        self.shot_tally = Some(tally);
        self
    }

    /// The prefix cache's reuse counters so far (`None` when reuse is disabled).
    pub fn prefix_stats(&self) -> Option<PrefixStats> {
        self.prefix.as_ref().map(|c| c.stats())
    }

    /// The estimator in use.
    pub fn estimator(&self) -> ShotEstimator {
        self.estimator
    }

    /// Shots drawn per evaluation.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Total shots drawn so far across all evaluations.
    pub fn shots_drawn(&self) -> u64 {
        self.evals as u64 * self.shots
    }

    /// Total simulations (one per evaluation; FD gradients count each probe).
    pub fn simulation_count(&self) -> usize {
        self.evals
    }

    /// The sampler seed used for an evaluation at `x`: a pure function of the base
    /// seed and the point's bit patterns.
    fn eval_seed(&self, x: &[f64]) -> u64 {
        derive_stream_seed(
            self.seed,
            EVAL_DOMAIN,
            fold_bits(x.iter().map(|v| v.to_bits())),
        )
    }

    /// Evolves to `|β,γ⟩` at `x` and draws this objective's shot histogram — the
    /// readout path the job service uses to report per-sample results at the best
    /// angles found.
    pub fn counts_at(&mut self, x: &[f64]) -> SampleCounts {
        let angles = Angles::from_flat(x);
        match self.prefix.as_mut() {
            Some(cache) => self.sim.evolve_cached(&angles, &mut self.ws, cache),
            None => self.sim.evolve_into(&angles, &mut self.ws),
        }
        .expect("simulator and angles are mutually consistent");
        let sampler = StateSampler::from_probabilities(
            self.ws.state.iter().map(|z| z.norm_sqr()),
            self.eval_seed(x),
        );
        if let Some(tally) = self.shot_tally {
            // relaxed: shot-count statistic; commutative add read only for reporting.
            tally.fetch_add(self.shots, Ordering::Relaxed);
        }
        sampler.sample_counts(self.shots)
    }
}

impl Drop for SampledObjective<'_> {
    fn drop(&mut self) {
        if let (Some(home), Some(cache)) = (self.home, self.prefix.take()) {
            home.check_in(cache);
        }
    }
}

impl Objective for SampledObjective<'_> {
    fn dim(&self) -> usize {
        // As with `QaoaObjective`: the parameter dimension is a property of the
        // starting point (2p), not of the problem.
        0
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        self.evals += 1;
        let counts = self.counts_at(x);
        -self
            .estimator
            .estimate(&counts, self.sim.objective_values())
    }

    fn evaluations(&self) -> usize {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::RunControl;
    use crate::gridsearch::{grid_search_ordered, qaoa_axis_order};
    use juliqaoa_graphs::erdos_renyi;
    use juliqaoa_linalg::enter_outer_parallelism;
    use juliqaoa_mixers::Mixer;
    use juliqaoa_problems::{precompute_full, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_sim() -> Simulator {
        let graph = erdos_renyi(6, 0.5, &mut StdRng::seed_from_u64(12));
        let obj = precompute_full(&MaxCut::new(graph));
        Simulator::new(obj, Mixer::transverse_field(6)).unwrap()
    }

    #[test]
    fn sampled_mean_tracks_the_exact_expectation() {
        let sim = small_sim();
        let x = Angles::random(2, &mut StdRng::seed_from_u64(3)).to_flat();
        let exact = sim.expectation(&Angles::from_flat(&x)).unwrap();
        let mut obj = SampledObjective::new(&sim, 1 << 17, ShotEstimator::Mean, 7);
        let sampled = -obj.value(&x);
        assert!(
            (sampled - exact).abs() < 0.05,
            "sampled {sampled} vs exact {exact}"
        );
        assert_eq!(obj.simulation_count(), 1);
        assert_eq!(obj.shots_drawn(), 1 << 17);
    }

    #[test]
    fn evaluations_are_deterministic_per_point() {
        let sim = small_sim();
        let est = ShotEstimator::CVaR { alpha: 0.25 };
        let mut a = SampledObjective::new(&sim, 4096, est, 9);
        let mut b = SampledObjective::new(&sim, 4096, est, 9);
        let x = Angles::random(2, &mut StdRng::seed_from_u64(5)).to_flat();
        let y = {
            let mut y = x.clone();
            y[0] += 0.3;
            y
        };
        // Same point, same seed: bit-identical — regardless of evaluation history
        // (a evaluates y first, b does not).
        let va_y = a.value(&y);
        let va_x = a.value(&x);
        let vb_x = b.value(&x);
        assert_eq!(va_x.to_bits(), vb_x.to_bits());
        assert_eq!(va_y.to_bits(), b.value(&y).to_bits());
        // Different base seed: different noise.
        let mut c = SampledObjective::new(&sim, 4096, est, 10);
        assert_ne!(va_x.to_bits(), c.value(&x).to_bits());
    }

    #[test]
    fn prefix_reuse_never_changes_sampled_values() {
        let sim = small_sim();
        let est = ShotEstimator::Gibbs { eta: 1.0 };
        let mut cached = SampledObjective::new(&sim, 2048, est, 3);
        let mut cold = SampledObjective::new(&sim, 2048, est, 3).without_prefix_reuse();
        let base = Angles::random(3, &mut StdRng::seed_from_u64(8)).to_flat();
        for step in 0..8 {
            let mut x = base.clone();
            x[2] += 0.1 * (step % 4) as f64;
            assert_eq!(cached.value(&x).to_bits(), cold.value(&x).to_bits());
        }
        assert!(cached.prefix_stats().expect("cache enabled").hits > 0);
        assert!(cold.prefix_stats().is_none());
    }

    #[test]
    fn cvar_grid_search_is_deterministic_across_scan_schedules() {
        // End-to-end: CVaR-α through the parallel block scan and through a forced
        // serial scan must return bit-identical best points — the sampled analogue
        // of the exact grid's schedule independence.
        let sim = small_sim();
        let est = ShotEstimator::CVaR { alpha: 0.2 };
        let run = || {
            grid_search_ordered(
                || SampledObjective::new(&sim, 1024, est, 21),
                2,
                0.0,
                2.0 * std::f64::consts::PI,
                18,
                &qaoa_axis_order(1),
                &RunControl::new(),
            )
        };
        let parallel = run();
        let serial = {
            let _guard = enter_outer_parallelism();
            run()
        };
        assert_eq!(parallel.value.to_bits(), serial.value.to_bits());
        assert_eq!(parallel.x, serial.x);
        assert_eq!(parallel.function_evals, 18 * 18);
        // The CVaR optimum is a real angle-quality signal: it must beat the p=0
        // baseline (CVaR of the uniform superposition).
        let mut baseline_obj = SampledObjective::new(&sim, 1024, est, 21);
        let uniform = baseline_obj.value(&[0.0, 0.0]);
        assert!(parallel.value <= uniform);
    }

    #[test]
    #[should_panic]
    fn zero_shots_are_rejected() {
        let sim = small_sim();
        let _ = SampledObjective::new(&sim, 0, ShotEstimator::Mean, 1);
    }

    #[test]
    #[should_panic]
    fn invalid_estimators_are_rejected() {
        let sim = small_sim();
        let _ = SampledObjective::new(&sim, 10, ShotEstimator::CVaR { alpha: 0.0 }, 1);
    }
}
