//! Basin hopping (Wales & Doye 1997).
//!
//! The global strategy the paper couples with its iterative angle finder: repeatedly
//! (1) perturb the current point, (2) run a local minimizer (BFGS), and (3) accept or
//! reject the hop with a Metropolis criterion, while tracking the best minimum ever
//! seen.  The number of hops, step size and temperature are the knobs the paper exposes
//! through `find_angles` keyword arguments.

use crate::bfgs::{bfgs, BfgsOptions};
use crate::control::RunControl;
use crate::objective::{Objective, OptimizeResult};
use rand::Rng;

/// Options controlling a basin-hopping run.
#[derive(Clone, Copy, Debug)]
pub struct BasinHoppingOptions {
    /// Number of hop iterations (local minimisations beyond the initial one).
    pub n_hops: usize,
    /// Uniform perturbation half-width applied to every coordinate between hops.
    pub step_size: f64,
    /// Metropolis temperature for accepting uphill hops.
    pub temperature: f64,
    /// When true, each hop perturbs a single randomly chosen coordinate instead of
    /// all of them.  For QAOA objectives with prefix-state reuse this routes hops
    /// through the suffix-replay path: a hop that only moves a deep round's angle
    /// leaves the circuit prefix shared with the current minimum, so the trial's
    /// first evaluations resume from checkpoints instead of round 0.  Off by default
    /// (the classical all-coordinate hop of Wales & Doye).
    pub coordinate_hops: bool,
    /// Options for the inner BFGS local minimizer.
    pub bfgs: BfgsOptions,
}

impl Default for BasinHoppingOptions {
    fn default() -> Self {
        BasinHoppingOptions {
            n_hops: 20,
            step_size: 0.3,
            temperature: 1.0,
            coordinate_hops: false,
            bfgs: BfgsOptions::default(),
        }
    }
}

/// Runs basin hopping from `x0`, returning the best local minimum found.
pub fn basinhopping<O: Objective + ?Sized, R: Rng + ?Sized>(
    objective: &mut O,
    x0: &[f64],
    opts: &BasinHoppingOptions,
    rng: &mut R,
) -> OptimizeResult {
    basinhopping_with_control(objective, x0, opts, rng, &RunControl::new())
}

/// [`basinhopping`] with cooperative cancellation and progress reporting.
///
/// The cancel flag is polled between hops (a hop in flight always finishes); a
/// cancelled run returns the best minimum seen so far with `converged = false`.
/// Progress units are completed local minimisations, `n_hops + 1` in total.  An
/// uncancelled run is bit-identical to [`basinhopping`].
pub fn basinhopping_with_control<O: Objective + ?Sized, R: Rng + ?Sized>(
    objective: &mut O,
    x0: &[f64],
    opts: &BasinHoppingOptions,
    rng: &mut R,
    control: &RunControl,
) -> OptimizeResult {
    let total = opts.n_hops as u64 + 1;
    // Initial local minimisation.
    let mut current = bfgs(objective, x0, &opts.bfgs);
    control.report(1, total);
    let mut best = current.clone();
    let mut function_evals = current.function_evals;
    let mut gradient_evals = current.gradient_evals;
    let mut completed_hops = 0;

    let mut trial = vec![0.0; x0.len()];
    for hop in 0..opts.n_hops {
        // Cancelled or past the deadline: stop hopping, return the best so far.
        if control.should_stop() {
            break;
        }
        // Perturb the *current* accepted minimum.
        if opts.coordinate_hops {
            trial.copy_from_slice(&current.x);
            let coord = rng.gen_range(0..trial.len());
            trial[coord] += rng.gen_range(-opts.step_size..=opts.step_size);
        } else {
            for (t, &c) in trial.iter_mut().zip(current.x.iter()) {
                *t = c + rng.gen_range(-opts.step_size..=opts.step_size);
            }
        }
        let candidate = bfgs(objective, &trial, &opts.bfgs);
        control.report(hop as u64 + 2, total);
        completed_hops += 1;
        function_evals += candidate.function_evals;
        gradient_evals += candidate.gradient_evals;

        if candidate.value < best.value {
            best = candidate.clone();
        }
        // Metropolis acceptance of the hop.
        let delta = candidate.value - current.value;
        let accept = delta <= 0.0
            || (opts.temperature > 0.0 && rng.gen::<f64>() < (-delta / opts.temperature).exp());
        if accept {
            current = candidate;
        }
    }

    OptimizeResult {
        x: best.x,
        value: best.value,
        iterations: completed_hops + 1,
        function_evals,
        gradient_evals,
        converged: completed_hops == opts.n_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 1-D double well with a false minimum at x ≈ +1 (value 0.5) and the global
    /// minimum at x ≈ −1 (value 0).
    fn double_well(x: &[f64]) -> f64 {
        let t = x[0];
        (t * t - 1.0).powi(2) + 0.25 * (t + 1.0).powi(2)
    }

    #[test]
    fn escapes_local_minimum_of_double_well() {
        // Start in the basin of the false minimum near +0.86 (value ≈ 0.93); the global
        // minimum sits at x = −1 with value 0.
        let mut obj = FnObjective::new(1, double_well);
        let res = basinhopping(
            &mut obj,
            &[0.9],
            &BasinHoppingOptions {
                n_hops: 60,
                step_size: 1.2,
                temperature: 0.5,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(7),
        );
        assert!(
            res.x[0] < 0.0,
            "basin hopping should find the global well, got x = {}",
            res.x[0]
        );
        assert!(
            res.value < 0.5,
            "value {} should be near the global minimum",
            res.value
        );
    }

    #[test]
    fn coordinate_hops_still_escape_the_double_well_deterministically() {
        let run = || {
            let mut obj = FnObjective::new(1, double_well);
            basinhopping(
                &mut obj,
                &[0.9],
                &BasinHoppingOptions {
                    n_hops: 60,
                    step_size: 1.2,
                    temperature: 0.5,
                    coordinate_hops: true,
                    ..Default::default()
                },
                &mut StdRng::seed_from_u64(7),
            )
        };
        let a = run();
        assert!(
            a.x[0] < 0.0,
            "coordinate hops should still find the global well"
        );
        let b = run();
        assert_eq!(a.x, b.x);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn zero_hops_reduces_to_bfgs() {
        let mut obj = FnObjective::new(2, |x: &[f64]| x[0].powi(2) + x[1].powi(2));
        let res = basinhopping(
            &mut obj,
            &[3.0, -4.0],
            &BasinHoppingOptions {
                n_hops: 0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(1),
        );
        assert!(res.value < 1e-8);
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut obj = FnObjective::new(1, double_well);
            basinhopping(
                &mut obj,
                &[1.0],
                &BasinHoppingOptions::default(),
                &mut StdRng::seed_from_u64(seed),
            )
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.x, b.x);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn cancellation_between_hops_keeps_best_so_far() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = flag.clone();
        // Cancel once the initial minimisation plus two hops have completed.
        let control = RunControl::with_cancel(flag).on_progress(move |done, _| {
            if done >= 3 {
                flag2.store(true, Ordering::SeqCst);
            }
        });
        let mut obj = FnObjective::new(1, double_well);
        let res = basinhopping_with_control(
            &mut obj,
            &[0.9],
            &BasinHoppingOptions {
                n_hops: 40,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(7),
            &control,
        );
        assert!(!res.converged);
        assert!(res.iterations <= 4);
        assert!(res.value.is_finite());
    }

    #[test]
    fn best_is_never_worse_than_initial_minimum() {
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            (x[0].sin() * 3.0).powi(2) + (x[1] - 0.3).powi(2)
        });
        let initial = bfgs(&mut obj, &[0.5, 0.5], &BfgsOptions::default());
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            (x[0].sin() * 3.0).powi(2) + (x[1] - 0.3).powi(2)
        });
        let res = basinhopping(
            &mut obj,
            &[0.5, 0.5],
            &BasinHoppingOptions::default(),
            &mut StdRng::seed_from_u64(3),
        );
        assert!(res.value <= initial.value + 1e-12);
    }
}
