//! Cooperative cancellation and progress reporting for optimizer runs.
//!
//! The angle-finding drivers are long-running: hundreds of BFGS restarts, thousands of
//! grid points.  A job service needs to (a) stop a run promptly when a client cancels
//! the job and (b) surface how far along a run is.  [`RunControl`] carries both
//! capabilities into the drivers without changing their hot loops: cancellation is a
//! shared atomic flag polled at candidate/hop/block boundaries (never inside a
//! simulation), and progress is an optional callback invoked with `(done, total)` work
//! units from whichever worker thread finishes a unit.
//!
//! A default [`RunControl`] is free: no flag to poll, no callback to invoke, and the
//! plain driver entry points (`random_restart`, `basinhopping`, `grid_search`) use
//! exactly that, so existing callers see identical behaviour.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared handle that can cancel a running optimization and observe its progress.
#[derive(Clone, Default)]
pub struct RunControl {
    cancel: Option<Arc<AtomicBool>>,
    progress: Option<Arc<dyn Fn(u64, u64) + Send + Sync>>,
}

impl RunControl {
    /// A control that never cancels and reports nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// A control driven by a shared cancellation flag (set it from any thread to stop
    /// the run at the next unit boundary).
    pub fn with_cancel(flag: Arc<AtomicBool>) -> Self {
        RunControl {
            cancel: Some(flag),
            progress: None,
        }
    }

    /// Attaches a progress callback, invoked with `(completed, total)` work units.
    ///
    /// Units are driver-specific (restarts, hops, grid blocks).  The callback runs on
    /// worker threads and must be cheap and non-blocking.
    pub fn on_progress(mut self, f: impl Fn(u64, u64) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Reports `done` of `total` work units complete.
    pub fn report(&self, done: u64, total: u64) {
        if let Some(f) = &self.progress {
            f(done, total);
        }
    }
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancellable", &self.cancel.is_some())
            .field("has_progress", &self.progress.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_control_never_cancels() {
        let c = RunControl::new();
        assert!(!c.is_cancelled());
        c.report(1, 2); // no callback: must be a no-op, not a panic
    }

    #[test]
    fn cancel_flag_is_observed() {
        let flag = Arc::new(AtomicBool::new(false));
        let c = RunControl::with_cancel(flag.clone());
        assert!(!c.is_cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(c.is_cancelled());
    }

    #[test]
    fn progress_callback_receives_units() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let c = RunControl::new().on_progress(move |done, total| {
            assert!(done <= total);
            seen2.store(done, Ordering::Relaxed);
        });
        c.report(3, 10);
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }
}
