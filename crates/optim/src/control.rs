//! Cooperative cancellation and progress reporting for optimizer runs.
//!
//! The angle-finding drivers are long-running: hundreds of BFGS restarts, thousands of
//! grid points.  A job service needs to (a) stop a run promptly when a client cancels
//! the job and (b) surface how far along a run is.  [`RunControl`] carries both
//! capabilities into the drivers without changing their hot loops: cancellation is a
//! shared atomic flag polled at candidate/hop/block boundaries (never inside a
//! simulation), and progress is an optional callback invoked with `(done, total)` work
//! units from whichever worker thread finishes a unit.
//!
//! A default [`RunControl`] is free: no flag to poll, no callback to invoke, and the
//! plain driver entry points (`random_restart`, `basinhopping`, `grid_search`) use
//! exactly that, so existing callers see identical behaviour.
//!
//! # Deadlines
//!
//! A control may also carry a **deadline** ([`RunControl::with_deadline`] /
//! [`RunControl::deadline_in`]).  Drivers poll [`RunControl::should_stop`] at the
//! exact points they already polled the cancel flag, so a run whose deadline expires
//! stops at the next unit boundary and returns the best of the work it finished —
//! the caller distinguishes the two stop reasons via [`RunControl::is_cancelled`]
//! vs [`RunControl::is_timed_out`].  A pathological job (a huge grid, a hard
//! landscape) therefore costs bounded wall-clock, never a stuck worker.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared handle that can cancel a running optimization, bound its wall-clock time
/// and observe its progress.
#[derive(Clone, Default)]
pub struct RunControl {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    progress: Option<Arc<dyn Fn(u64, u64) + Send + Sync>>,
}

impl RunControl {
    /// A control that never cancels and reports nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// A control driven by a shared cancellation flag (set it from any thread to stop
    /// the run at the next unit boundary).
    pub fn with_cancel(flag: Arc<AtomicBool>) -> Self {
        RunControl {
            cancel: Some(flag),
            deadline: None,
            progress: None,
        }
    }

    /// Attaches an absolute deadline; the run stops cooperatively at the first unit
    /// boundary at or after it.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a deadline `timeout` from now.
    pub fn deadline_in(self, timeout: Duration) -> Self {
        // lint:allow(R1, deadline anchor only - the Instant bounds wall-clock, it never enters a computed result)
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a progress callback, invoked with `(completed, total)` work units.
    ///
    /// Units are driver-specific (restarts, hops, grid blocks).  The callback runs on
    /// worker threads and must be cheap and non-blocking.
    pub fn on_progress(mut self, f: impl Fn(u64, u64) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            // relaxed: advisory stop flag polled at unit boundaries; a stale read only
            // delays the stop by one unit and orders against no other data.
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Whether the deadline (if any) has passed.
    pub fn is_timed_out(&self) -> bool {
        // lint:allow(R1, deadline comparison only - affects when we stop, never what we compute)
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the run should stop at the next unit boundary — cancelled *or* past
    /// its deadline.  This is what drivers poll; without a flag or deadline it is a
    /// pair of `None` checks, so the default control stays free.
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.is_timed_out()
    }

    /// The remaining time before the deadline (`None` when no deadline is set;
    /// `Some(0)` once it has passed).
    pub fn time_remaining(&self) -> Option<Duration> {
        self.deadline
            // lint:allow(R1, deadline countdown only - reported to callers, never fed into the math)
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Reports `done` of `total` work units complete.
    pub fn report(&self, done: u64, total: u64) {
        if let Some(f) = &self.progress {
            f(done, total);
        }
    }
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancellable", &self.cancel.is_some())
            .field("has_deadline", &self.deadline.is_some())
            .field("has_progress", &self.progress.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_control_never_cancels() {
        let c = RunControl::new();
        assert!(!c.is_cancelled());
        assert!(!c.is_timed_out());
        assert!(!c.should_stop());
        assert_eq!(c.time_remaining(), None);
        c.report(1, 2); // no callback: must be a no-op, not a panic
    }

    #[test]
    fn deadlines_expire_and_compose_with_cancellation() {
        // A deadline far in the future does not stop the run.
        let future = RunControl::new().deadline_in(Duration::from_secs(3600));
        assert!(!future.is_timed_out());
        assert!(!future.should_stop());
        assert!(future.time_remaining().unwrap() > Duration::from_secs(3500));
        // An already-past deadline stops it immediately.
        let past = RunControl::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(past.is_timed_out());
        assert!(past.should_stop());
        assert!(!past.is_cancelled(), "timeout is not cancellation");
        assert_eq!(past.time_remaining(), Some(Duration::ZERO));
        // Cancellation still stops a run whose deadline has not passed.
        let flag = Arc::new(AtomicBool::new(true));
        let both = RunControl::with_cancel(flag).deadline_in(Duration::from_secs(3600));
        assert!(both.should_stop());
        assert!(both.is_cancelled());
        assert!(!both.is_timed_out());
    }

    #[test]
    fn cancel_flag_is_observed() {
        let flag = Arc::new(AtomicBool::new(false));
        let c = RunControl::with_cancel(flag.clone());
        assert!(!c.is_cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(c.is_cancelled());
    }

    #[test]
    fn progress_callback_receives_units() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let c = RunControl::new().on_progress(move |done, total| {
            assert!(done <= total);
            seen2.store(done, Ordering::Relaxed);
        });
        c.report(3, 10);
        assert_eq!(seen.load(Ordering::Relaxed), 3);
    }
}
