//! The objective-function interface shared by all optimizers.
//!
//! Optimizers *minimise*; the QAOA convention is to *maximise* `⟨C⟩`.
//! [`QaoaObjective`] bridges the two by negating, exactly as Listing 3 does
//! (`optimize(x -> -exp_value(x, …))`).  It also owns the simulation [`Workspace`] so
//! every evaluation inside the optimization loop is allocation-free, and it counts
//! evaluations so the benchmark harness can report costs.

use juliqaoa_core::{
    adjoint_gradient, adjoint_gradient_cached, Angles, PrefixCache, PrefixStats, Simulator,
    Workspace,
};
use juliqaoa_telemetry::kernels::KERNELS;
use std::sync::Mutex;

/// A real-valued function of a flat parameter vector, to be minimised.
pub trait Objective {
    /// Number of parameters.
    fn dim(&self) -> usize;

    /// The objective value at `x`.
    fn value(&mut self, x: &[f64]) -> f64;

    /// The objective value and its gradient at `x` (gradient written into `grad`).
    ///
    /// The default implementation uses central finite differences with step `1e-7`,
    /// which costs `2·dim` extra evaluations — override it when an analytic gradient is
    /// available.
    fn value_and_gradient(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        let f0 = self.value(x);
        let eps = 1e-7;
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            xp[i] = x[i] + eps;
            let fp = self.value(&xp);
            xp[i] = x[i] - eps;
            let fm = self.value(&xp);
            xp[i] = x[i];
            grad[i] = (fp - fm) / (2.0 * eps);
        }
        f0
    }

    /// Number of objective evaluations performed so far (simulation calls for QAOA
    /// objectives).  Used by benchmarks; defaults to 0 for objectives that don't count.
    fn evaluations(&self) -> usize {
        0
    }
}

/// The result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// The best parameter vector found.
    pub x: Vec<f64>,
    /// The objective value at `x` (in the *minimisation* convention).
    pub value: f64,
    /// Iterations of the outer optimizer loop.
    pub iterations: usize,
    /// Total objective evaluations attributable to this run.
    pub function_evals: usize,
    /// Total gradient evaluations attributable to this run.
    pub gradient_evals: usize,
    /// Whether the convergence criterion (rather than the iteration cap) stopped the run.
    pub converged: bool,
}

impl OptimizeResult {
    /// The best value in the *maximisation* convention (`-value`); convenient when the
    /// objective is a negated QAOA expectation.
    pub fn maximized_value(&self) -> f64 {
        -self.value
    }
}

/// Wraps a plain closure (plus optional analytic gradient closure) as an [`Objective`].
pub struct FnObjective<F, G = fn(&[f64], &mut [f64]) -> f64>
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]) -> f64,
{
    dim: usize,
    f: F,
    grad: Option<G>,
    evals: usize,
}

impl<F: FnMut(&[f64]) -> f64> FnObjective<F> {
    /// A gradient-free objective (gradient falls back to finite differences).
    pub fn new(dim: usize, f: F) -> Self {
        FnObjective {
            dim,
            f,
            grad: None,
            evals: 0,
        }
    }
}

impl<F, G> FnObjective<F, G>
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]) -> f64,
{
    /// An objective with an analytic value-and-gradient closure.
    pub fn with_gradient(dim: usize, f: F, grad: G) -> Self {
        FnObjective {
            dim,
            f,
            grad: Some(grad),
            evals: 0,
        }
    }
}

impl<F, G> Objective for FnObjective<F, G>
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]) -> f64,
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        self.evals += 1;
        KERNELS.objective_evals.inc();
        (self.f)(x)
    }

    fn value_and_gradient(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        if let Some(g) = self.grad.as_mut() {
            self.evals += 1;
            KERNELS.objective_evals.inc();
            g(x, grad)
        } else {
            // Fall back to the default finite-difference implementation without
            // recursing through the trait object.
            let f0 = self.value(x);
            let eps = 1e-7;
            let mut xp = x.to_vec();
            for i in 0..x.len() {
                xp[i] = x[i] + eps;
                let fp = self.value(&xp);
                xp[i] = x[i] - eps;
                let fm = self.value(&xp);
                xp[i] = x[i];
                grad[i] = (fp - fm) / (2.0 * eps);
            }
            f0
        }
    }

    fn evaluations(&self) -> usize {
        self.evals
    }
}

/// How a [`QaoaObjective`] obtains gradients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GradientMethod {
    /// Adjoint-mode analytic gradient (the AD substitute): one reverse sweep, cost
    /// independent of `p` in units of expectation evaluations.
    Adjoint,
    /// Central finite differences with the given step: `2·(2p)` extra expectation
    /// evaluations per gradient.
    FiniteDifference {
        /// The finite-difference step.
        eps: f64,
    },
}

/// A parking slot through which a [`PrefixCache`] survives across the short-lived
/// objectives an optimizer run creates.
///
/// The outer-loop drivers (`random_restart`, `grid_search`) build objectives through a
/// per-worker factory and drop them when the run ends, which would discard the
/// checkpoints a sweep accumulated.  A home outlives the run: objectives built with
/// [`QaoaObjective::with_cache_home`] check a cache out of the home (or get a fresh
/// one with the same budget) and return it — counters merged — when dropped.  After
/// the optimizer returns, the caller reads the aggregated [`PrefixStats`] and can
/// carry the cache to the next run over the same simulator (e.g. a job service keying
/// caches by instance).
///
/// With several workers, only one objective gets the parked cache; the rest run with
/// fresh caches, and at check-in the deepest cache wins the parking slot
/// ([`PrefixCache::merge_deeper`]).  Results are unaffected either way — prefix
/// reuse is bit-identical.
pub struct PrefixCacheHome {
    slot: Mutex<Option<PrefixCache>>,
    budget: usize,
    stats: Mutex<PrefixStats>,
}

impl PrefixCacheHome {
    /// A home seeded with an existing cache (typically checked out of a longer-lived
    /// store between jobs).
    pub fn new(cache: PrefixCache) -> Self {
        let budget = cache.budget_bytes();
        PrefixCacheHome {
            slot: Mutex::new(Some(cache)),
            budget,
            stats: Mutex::new(PrefixStats::default()),
        }
    }

    /// An empty home handing out fresh caches with the given byte budget.
    pub fn with_budget(budget: usize) -> Self {
        PrefixCacheHome {
            slot: Mutex::new(None),
            budget,
            stats: Mutex::new(PrefixStats::default()),
        }
    }

    /// Takes the parked cache, or a fresh one with the home's budget.
    pub fn checkout(&self) -> PrefixCache {
        self.slot
            .lock()
            .expect("prefix home poisoned")
            .take()
            .unwrap_or_else(|| PrefixCache::with_budget(self.budget))
    }

    /// Returns a cache to the home, merging its counters into the aggregate.  When
    /// several objectives race back (parallel drivers build one per worker), the
    /// *deepest* cache parks — [`PrefixCache::merge_deeper`] — so the warmest
    /// checkpoints survive for the next run instead of whichever cache returned
    /// first.
    pub fn check_in(&self, mut cache: PrefixCache) {
        let stats = cache.take_stats();
        self.stats
            .lock()
            .expect("prefix home poisoned")
            .absorb(stats);
        let mut slot = self.slot.lock().expect("prefix home poisoned");
        *slot = Some(match slot.take() {
            Some(parked) => parked.merge_deeper(cache),
            None => cache,
        });
    }

    /// Aggregated reuse counters across every objective that lived in this home.
    pub fn stats(&self) -> PrefixStats {
        *self.stats.lock().expect("prefix home poisoned")
    }

    /// Consumes the home, yielding the parked cache (if any objective returned one).
    pub fn into_cache(self) -> Option<PrefixCache> {
        self.slot.into_inner().expect("prefix home poisoned")
    }
}

/// The (negated) QAOA expectation value as a minimisation objective.
///
/// Evaluations route through a [`PrefixCache`] by default, so sweeps whose
/// consecutive points share leading rounds (grid scans with suffix-major axis order,
/// finite-difference gradients, value-then-gradient pairs at one point) resume from
/// checkpoints instead of re-evolving from round 0 — with bit-identical results.
/// Disable with [`QaoaObjective::without_prefix_reuse`] to measure the cold path.
pub struct QaoaObjective<'a> {
    sim: &'a Simulator,
    ws: Workspace,
    gradient_method: GradientMethod,
    evals: usize,
    prefix: Option<PrefixCache>,
    home: Option<&'a PrefixCacheHome>,
}

impl<'a> QaoaObjective<'a> {
    /// Maximises `⟨C⟩` for the given simulator using adjoint gradients.
    pub fn new(sim: &'a Simulator) -> Self {
        Self::with_gradient_method(sim, GradientMethod::Adjoint)
    }

    /// Maximises `⟨C⟩` with an explicit gradient method (used by the Figure 5 benchmark
    /// to compare adjoint against finite differences).
    pub fn with_gradient_method(sim: &'a Simulator, gradient_method: GradientMethod) -> Self {
        QaoaObjective {
            ws: sim.workspace(),
            sim,
            gradient_method,
            evals: 0,
            prefix: Some(PrefixCache::new()),
            home: None,
        }
    }

    /// Disables prefix-state reuse, forcing every evaluation to re-evolve from round 0.
    /// Results are bit-identical either way; this exists for benchmarking the win and
    /// as an escape hatch for memory-constrained sweeps.
    pub fn without_prefix_reuse(mut self) -> Self {
        self.prefix = None;
        self.home = None;
        self
    }

    /// Replaces the objective's prefix cache (e.g. one warmed by a previous run over
    /// the same simulator).
    pub fn with_prefix_cache(mut self, cache: PrefixCache) -> Self {
        self.prefix = Some(cache);
        self
    }

    /// Checks this objective's prefix cache out of `home`, returning it (with its
    /// counters) when the objective is dropped — see [`PrefixCacheHome`].
    pub fn with_cache_home(mut self, home: &'a PrefixCacheHome) -> Self {
        self.prefix = Some(home.checkout());
        self.home = Some(home);
        self
    }

    /// The prefix cache's reuse counters so far (`None` when reuse is disabled).
    pub fn prefix_stats(&self) -> Option<PrefixStats> {
        self.prefix.as_ref().map(|c| c.stats())
    }

    /// The number of rounds `p` this objective's parameter vector describes is decided by
    /// the caller (the flat vector has length `2p`); the simulator itself is round-count
    /// agnostic, so `dim` is not meaningful here and optimizers must take the dimension
    /// from their starting point instead.
    pub fn simulator(&self) -> &Simulator {
        self.sim
    }

    /// Total expectation-value evaluations (simulations) performed, including those
    /// hidden inside finite-difference gradients.  This is the cost unit of Figure 5.
    pub fn simulation_count(&self) -> usize {
        self.evals
    }
}

impl Objective for QaoaObjective<'_> {
    fn dim(&self) -> usize {
        // The parameter dimension is a property of the starting point (2p), not of the
        // problem; optimizers never rely on this value for QAOA objectives.
        0
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        self.evals += 1;
        KERNELS.objective_evals.inc();
        let angles = Angles::from_flat(x);
        let e = match self.prefix.as_mut() {
            Some(cache) => self.sim.expectation_cached(&angles, &mut self.ws, cache),
            None => self.sim.expectation_with(&angles, &mut self.ws),
        };
        -e.expect("simulator and angles are mutually consistent")
    }

    fn value_and_gradient(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        let angles = Angles::from_flat(x);
        match self.gradient_method {
            GradientMethod::Adjoint => {
                // One reverse sweep ≈ a small constant number of forward passes; the
                // forward pass reuses any checkpoint prefix (commonly the full state
                // from a just-evaluated value at the same point).
                self.evals += 1;
                KERNELS.objective_evals.inc();
                let g = match self.prefix.as_mut() {
                    Some(cache) => adjoint_gradient_cached(self.sim, &angles, &mut self.ws, cache),
                    None => adjoint_gradient(self.sim, &angles, &mut self.ws),
                }
                .expect("simulator and angles are mutually consistent");
                for (dst, src) in grad.iter_mut().zip(g.to_flat()) {
                    *dst = -src;
                }
                -g.expectation
            }
            GradientMethod::FiniteDifference { eps } => {
                let f0 = self.value(x);
                let mut xp = x.to_vec();
                for i in 0..x.len() {
                    xp[i] = x[i] + eps;
                    let fp = self.value(&xp);
                    xp[i] = x[i] - eps;
                    let fm = self.value(&xp);
                    xp[i] = x[i];
                    grad[i] = (fp - fm) / (2.0 * eps);
                }
                f0
            }
        }
    }

    fn evaluations(&self) -> usize {
        self.evals
    }
}

impl Drop for QaoaObjective<'_> {
    fn drop(&mut self) {
        if let (Some(home), Some(cache)) = (self.home, self.prefix.take()) {
            home.check_in(cache);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::erdos_renyi;
    use juliqaoa_mixers::Mixer;
    use juliqaoa_problems::{precompute_full, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_sim() -> Simulator {
        let graph = erdos_renyi(5, 0.5, &mut StdRng::seed_from_u64(12));
        let obj = precompute_full(&MaxCut::new(graph));
        Simulator::new(obj, Mixer::transverse_field(5)).unwrap()
    }

    #[test]
    fn fn_objective_counts_and_evaluates() {
        let mut o = FnObjective::new(2, |x: &[f64]| x[0] * x[0] + x[1] * x[1]);
        assert_eq!(o.dim(), 2);
        assert_eq!(o.value(&[3.0, 4.0]), 25.0);
        assert_eq!(o.evaluations(), 1);
        let mut g = vec![0.0; 2];
        let v = o.value_and_gradient(&[1.0, 2.0], &mut g);
        assert!((v - 5.0).abs() < 1e-12);
        assert!((g[0] - 2.0).abs() < 1e-4);
        assert!((g[1] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn fn_objective_with_analytic_gradient() {
        let mut o = FnObjective::with_gradient(
            2,
            |x: &[f64]| x[0] * x[0] + 3.0 * x[1] * x[1],
            |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * x[0];
                g[1] = 6.0 * x[1];
                x[0] * x[0] + 3.0 * x[1] * x[1]
            },
        );
        let mut g = vec![0.0; 2];
        let v = o.value_and_gradient(&[1.0, -1.0], &mut g);
        assert_eq!(v, 4.0);
        assert_eq!(g, vec![2.0, -6.0]);
    }

    #[test]
    fn qaoa_objective_is_negated_expectation() {
        let sim = small_sim();
        let mut obj = QaoaObjective::new(&sim);
        let angles = juliqaoa_core::Angles::random(2, &mut StdRng::seed_from_u64(3));
        let flat = angles.to_flat();
        let direct = sim.expectation(&angles).unwrap();
        assert!((obj.value(&flat) + direct).abs() < 1e-12);
        assert_eq!(obj.simulation_count(), 1);
        assert!(obj.simulator().dim() == 32);
    }

    #[test]
    fn adjoint_and_finite_difference_gradients_agree() {
        let sim = small_sim();
        let angles = juliqaoa_core::Angles::random(3, &mut StdRng::seed_from_u64(4));
        let flat = angles.to_flat();

        let mut adj = QaoaObjective::with_gradient_method(&sim, GradientMethod::Adjoint);
        let mut g_adj = vec![0.0; flat.len()];
        let v_adj = adj.value_and_gradient(&flat, &mut g_adj);

        let mut fd = QaoaObjective::with_gradient_method(
            &sim,
            GradientMethod::FiniteDifference { eps: 1e-5 },
        );
        let mut g_fd = vec![0.0; flat.len()];
        let v_fd = fd.value_and_gradient(&flat, &mut g_fd);

        assert!((v_adj - v_fd).abs() < 1e-9);
        for (a, b) in g_adj.iter().zip(g_fd.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        // Finite differences cost 1 + 2·dim simulations, adjoint costs 1.
        assert_eq!(adj.simulation_count(), 1);
        assert_eq!(fd.simulation_count(), 1 + 2 * flat.len());
    }

    #[test]
    fn cached_and_uncached_objectives_are_bit_identical() {
        let sim = small_sim();
        let mut cached = QaoaObjective::new(&sim);
        let mut cold = QaoaObjective::new(&sim).without_prefix_reuse();
        let base = juliqaoa_core::Angles::random(3, &mut StdRng::seed_from_u64(8)).to_flat();
        // A suffix sweep plus exact repeats: the cached objective takes checkpoint
        // paths, the cold one re-evolves, and every value must match bit-for-bit.
        for step in 0..10 {
            let mut x = base.clone();
            x[2] += 0.05 * (step % 5) as f64;
            let a = cached.value(&x);
            let b = cold.value(&x);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let stats = cached.prefix_stats().expect("cache enabled");
        assert!(stats.hits > 0, "sweep must reuse prefixes");
        assert!(cold.prefix_stats().is_none());
    }

    #[test]
    fn finite_difference_gradient_reuses_prefixes_bit_identically() {
        let sim = small_sim();
        let eps = 1e-6;
        let mut cached =
            QaoaObjective::with_gradient_method(&sim, GradientMethod::FiniteDifference { eps });
        let mut cold =
            QaoaObjective::with_gradient_method(&sim, GradientMethod::FiniteDifference { eps })
                .without_prefix_reuse();
        let x = juliqaoa_core::Angles::random(3, &mut StdRng::seed_from_u64(21)).to_flat();
        let mut g_cached = vec![0.0; x.len()];
        let mut g_cold = vec![0.0; x.len()];
        let v_cached = cached.value_and_gradient(&x, &mut g_cached);
        let v_cold = cold.value_and_gradient(&x, &mut g_cold);
        assert_eq!(v_cached.to_bits(), v_cold.to_bits());
        for (a, b) in g_cached.iter().zip(g_cold.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Perturbing one round at a time shares prefixes with neighbours.
        let stats = cached.prefix_stats().expect("cache enabled");
        assert!(stats.hits > 0, "FD gradient must reuse prefixes");
    }

    #[test]
    fn adjoint_gradient_after_value_is_a_full_prefix_hit() {
        let sim = small_sim();
        let mut obj = QaoaObjective::new(&sim);
        let x = juliqaoa_core::Angles::random(2, &mut StdRng::seed_from_u64(4)).to_flat();
        let v = obj.value(&x);
        let _ = obj.value(&x); // repeat: full hit
        let mut g = vec![0.0; x.len()];
        let vg = obj.value_and_gradient(&x, &mut g);
        assert_eq!(v.to_bits(), vg.to_bits());
        let stats = obj.prefix_stats().expect("cache enabled");
        assert!(stats.hits >= 1);
    }

    #[test]
    fn cache_home_round_trips_the_cache_and_aggregates_stats() {
        let sim = small_sim();
        let home = PrefixCacheHome::with_budget(1 << 20);
        let x = juliqaoa_core::Angles::random(2, &mut StdRng::seed_from_u64(6)).to_flat();
        {
            let mut obj = QaoaObjective::new(&sim).with_cache_home(&home);
            let _ = obj.value(&x);
            let _ = obj.value(&x);
        } // drop returns the cache
        assert!(home.stats().hits >= 1);
        {
            // The next objective inherits the warmed cache: an immediate full hit.
            let mut obj = QaoaObjective::new(&sim).with_cache_home(&home);
            let _ = obj.value(&x);
        }
        let stats = home.stats();
        assert!(stats.hits >= 2, "warm cache must survive the round trip");
        assert!(home.into_cache().is_some());
    }

    #[test]
    fn optimize_result_max_convention() {
        let r = OptimizeResult {
            x: vec![0.0],
            value: -3.5,
            iterations: 1,
            function_evals: 1,
            gradient_evals: 0,
            converged: true,
        };
        assert_eq!(r.maximized_value(), 3.5);
    }
}
