//! The objective-function interface shared by all optimizers.
//!
//! Optimizers *minimise*; the QAOA convention is to *maximise* `⟨C⟩`.
//! [`QaoaObjective`] bridges the two by negating, exactly as Listing 3 does
//! (`optimize(x -> -exp_value(x, …))`).  It also owns the simulation [`Workspace`] so
//! every evaluation inside the optimization loop is allocation-free, and it counts
//! evaluations so the benchmark harness can report costs.

use juliqaoa_core::{adjoint_gradient, Angles, Simulator, Workspace};

/// A real-valued function of a flat parameter vector, to be minimised.
pub trait Objective {
    /// Number of parameters.
    fn dim(&self) -> usize;

    /// The objective value at `x`.
    fn value(&mut self, x: &[f64]) -> f64;

    /// The objective value and its gradient at `x` (gradient written into `grad`).
    ///
    /// The default implementation uses central finite differences with step `1e-7`,
    /// which costs `2·dim` extra evaluations — override it when an analytic gradient is
    /// available.
    fn value_and_gradient(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        let f0 = self.value(x);
        let eps = 1e-7;
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            xp[i] = x[i] + eps;
            let fp = self.value(&xp);
            xp[i] = x[i] - eps;
            let fm = self.value(&xp);
            xp[i] = x[i];
            grad[i] = (fp - fm) / (2.0 * eps);
        }
        f0
    }

    /// Number of objective evaluations performed so far (simulation calls for QAOA
    /// objectives).  Used by benchmarks; defaults to 0 for objectives that don't count.
    fn evaluations(&self) -> usize {
        0
    }
}

/// The result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// The best parameter vector found.
    pub x: Vec<f64>,
    /// The objective value at `x` (in the *minimisation* convention).
    pub value: f64,
    /// Iterations of the outer optimizer loop.
    pub iterations: usize,
    /// Total objective evaluations attributable to this run.
    pub function_evals: usize,
    /// Total gradient evaluations attributable to this run.
    pub gradient_evals: usize,
    /// Whether the convergence criterion (rather than the iteration cap) stopped the run.
    pub converged: bool,
}

impl OptimizeResult {
    /// The best value in the *maximisation* convention (`-value`); convenient when the
    /// objective is a negated QAOA expectation.
    pub fn maximized_value(&self) -> f64 {
        -self.value
    }
}

/// Wraps a plain closure (plus optional analytic gradient closure) as an [`Objective`].
pub struct FnObjective<F, G = fn(&[f64], &mut [f64]) -> f64>
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]) -> f64,
{
    dim: usize,
    f: F,
    grad: Option<G>,
    evals: usize,
}

impl<F: FnMut(&[f64]) -> f64> FnObjective<F> {
    /// A gradient-free objective (gradient falls back to finite differences).
    pub fn new(dim: usize, f: F) -> Self {
        FnObjective {
            dim,
            f,
            grad: None,
            evals: 0,
        }
    }
}

impl<F, G> FnObjective<F, G>
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]) -> f64,
{
    /// An objective with an analytic value-and-gradient closure.
    pub fn with_gradient(dim: usize, f: F, grad: G) -> Self {
        FnObjective {
            dim,
            f,
            grad: Some(grad),
            evals: 0,
        }
    }
}

impl<F, G> Objective for FnObjective<F, G>
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]) -> f64,
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        self.evals += 1;
        (self.f)(x)
    }

    fn value_and_gradient(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        if let Some(g) = self.grad.as_mut() {
            self.evals += 1;
            g(x, grad)
        } else {
            // Fall back to the default finite-difference implementation without
            // recursing through the trait object.
            let f0 = self.value(x);
            let eps = 1e-7;
            let mut xp = x.to_vec();
            for i in 0..x.len() {
                xp[i] = x[i] + eps;
                let fp = self.value(&xp);
                xp[i] = x[i] - eps;
                let fm = self.value(&xp);
                xp[i] = x[i];
                grad[i] = (fp - fm) / (2.0 * eps);
            }
            f0
        }
    }

    fn evaluations(&self) -> usize {
        self.evals
    }
}

/// How a [`QaoaObjective`] obtains gradients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GradientMethod {
    /// Adjoint-mode analytic gradient (the AD substitute): one reverse sweep, cost
    /// independent of `p` in units of expectation evaluations.
    Adjoint,
    /// Central finite differences with the given step: `2·(2p)` extra expectation
    /// evaluations per gradient.
    FiniteDifference {
        /// The finite-difference step.
        eps: f64,
    },
}

/// The (negated) QAOA expectation value as a minimisation objective.
pub struct QaoaObjective<'a> {
    sim: &'a Simulator,
    ws: Workspace,
    gradient_method: GradientMethod,
    evals: usize,
}

impl<'a> QaoaObjective<'a> {
    /// Maximises `⟨C⟩` for the given simulator using adjoint gradients.
    pub fn new(sim: &'a Simulator) -> Self {
        Self::with_gradient_method(sim, GradientMethod::Adjoint)
    }

    /// Maximises `⟨C⟩` with an explicit gradient method (used by the Figure 5 benchmark
    /// to compare adjoint against finite differences).
    pub fn with_gradient_method(sim: &'a Simulator, gradient_method: GradientMethod) -> Self {
        QaoaObjective {
            ws: sim.workspace(),
            sim,
            gradient_method,
            evals: 0,
        }
    }

    /// The number of rounds `p` this objective's parameter vector describes is decided by
    /// the caller (the flat vector has length `2p`); the simulator itself is round-count
    /// agnostic, so `dim` is not meaningful here and optimizers must take the dimension
    /// from their starting point instead.
    pub fn simulator(&self) -> &Simulator {
        self.sim
    }

    /// Total expectation-value evaluations (simulations) performed, including those
    /// hidden inside finite-difference gradients.  This is the cost unit of Figure 5.
    pub fn simulation_count(&self) -> usize {
        self.evals
    }
}

impl Objective for QaoaObjective<'_> {
    fn dim(&self) -> usize {
        // The parameter dimension is a property of the starting point (2p), not of the
        // problem; optimizers never rely on this value for QAOA objectives.
        0
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        self.evals += 1;
        let angles = Angles::from_flat(x);
        -self
            .sim
            .expectation_with(&angles, &mut self.ws)
            .expect("simulator and angles are mutually consistent")
    }

    fn value_and_gradient(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        let angles = Angles::from_flat(x);
        match self.gradient_method {
            GradientMethod::Adjoint => {
                // One reverse sweep ≈ a small constant number of forward passes.
                self.evals += 1;
                let g = adjoint_gradient(self.sim, &angles, &mut self.ws)
                    .expect("simulator and angles are mutually consistent");
                for (dst, src) in grad.iter_mut().zip(g.to_flat()) {
                    *dst = -src;
                }
                -g.expectation
            }
            GradientMethod::FiniteDifference { eps } => {
                let f0 = self.value(x);
                let mut xp = x.to_vec();
                for i in 0..x.len() {
                    xp[i] = x[i] + eps;
                    let fp = self.value(&xp);
                    xp[i] = x[i] - eps;
                    let fm = self.value(&xp);
                    xp[i] = x[i];
                    grad[i] = (fp - fm) / (2.0 * eps);
                }
                f0
            }
        }
    }

    fn evaluations(&self) -> usize {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::erdos_renyi;
    use juliqaoa_mixers::Mixer;
    use juliqaoa_problems::{precompute_full, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_sim() -> Simulator {
        let graph = erdos_renyi(5, 0.5, &mut StdRng::seed_from_u64(12));
        let obj = precompute_full(&MaxCut::new(graph));
        Simulator::new(obj, Mixer::transverse_field(5)).unwrap()
    }

    #[test]
    fn fn_objective_counts_and_evaluates() {
        let mut o = FnObjective::new(2, |x: &[f64]| x[0] * x[0] + x[1] * x[1]);
        assert_eq!(o.dim(), 2);
        assert_eq!(o.value(&[3.0, 4.0]), 25.0);
        assert_eq!(o.evaluations(), 1);
        let mut g = vec![0.0; 2];
        let v = o.value_and_gradient(&[1.0, 2.0], &mut g);
        assert!((v - 5.0).abs() < 1e-12);
        assert!((g[0] - 2.0).abs() < 1e-4);
        assert!((g[1] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn fn_objective_with_analytic_gradient() {
        let mut o = FnObjective::with_gradient(
            2,
            |x: &[f64]| x[0] * x[0] + 3.0 * x[1] * x[1],
            |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * x[0];
                g[1] = 6.0 * x[1];
                x[0] * x[0] + 3.0 * x[1] * x[1]
            },
        );
        let mut g = vec![0.0; 2];
        let v = o.value_and_gradient(&[1.0, -1.0], &mut g);
        assert_eq!(v, 4.0);
        assert_eq!(g, vec![2.0, -6.0]);
    }

    #[test]
    fn qaoa_objective_is_negated_expectation() {
        let sim = small_sim();
        let mut obj = QaoaObjective::new(&sim);
        let angles = juliqaoa_core::Angles::random(2, &mut StdRng::seed_from_u64(3));
        let flat = angles.to_flat();
        let direct = sim.expectation(&angles).unwrap();
        assert!((obj.value(&flat) + direct).abs() < 1e-12);
        assert_eq!(obj.simulation_count(), 1);
        assert!(obj.simulator().dim() == 32);
    }

    #[test]
    fn adjoint_and_finite_difference_gradients_agree() {
        let sim = small_sim();
        let angles = juliqaoa_core::Angles::random(3, &mut StdRng::seed_from_u64(4));
        let flat = angles.to_flat();

        let mut adj = QaoaObjective::with_gradient_method(&sim, GradientMethod::Adjoint);
        let mut g_adj = vec![0.0; flat.len()];
        let v_adj = adj.value_and_gradient(&flat, &mut g_adj);

        let mut fd = QaoaObjective::with_gradient_method(
            &sim,
            GradientMethod::FiniteDifference { eps: 1e-5 },
        );
        let mut g_fd = vec![0.0; flat.len()];
        let v_fd = fd.value_and_gradient(&flat, &mut g_fd);

        assert!((v_adj - v_fd).abs() < 1e-9);
        for (a, b) in g_adj.iter().zip(g_fd.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        // Finite differences cost 1 + 2·dim simulations, adjoint costs 1.
        assert_eq!(adj.simulation_count(), 1);
        assert_eq!(fd.simulation_count(), 1 + 2 * flat.len());
    }

    #[test]
    fn optimize_result_max_convention() {
        let r = OptimizeResult {
            x: vec![0.0],
            value: -3.5,
            iterations: 1,
            function_evals: 1,
            gradient_evals: 0,
            converged: true,
        };
        assert_eq!(r.maximized_value(), 3.5);
    }
}
