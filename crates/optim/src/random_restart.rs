//! Random local-minima exploration (the `find_angles_rand` of Listing 3).
//!
//! The baseline of Lotshaw et al. that Figure 3 compares against: start BFGS from many
//! uniformly random angle vectors in `[0, 2π)^{2p}`, keep the best local minimum.
//!
//! The candidates are independent, so this is the natural place for parallelism — the
//! *outer* loop fans the starting points across cores (each worker with its own
//! objective instance and therefore its own simulation workspace), while the guard from
//! `juliqaoa_linalg::parallel` keeps the tiny *inner* statevector kernels serial on
//! those worker threads.  All starting points are drawn from the caller's RNG up front,
//! in the same order as the serial loop, and ties between equal minima resolve to the
//! earliest candidate — so the result is identical for the same seed whether the
//! candidates run serially or in parallel.

use crate::bfgs::{bfgs, BfgsOptions};
use crate::control::RunControl;
use crate::objective::{Objective, OptimizeResult};
use juliqaoa_linalg::{enter_outer_parallelism, in_outer_parallelism};
use rand::Rng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum number of candidates before fanning out across threads pays.
const MIN_PARALLEL_RESTARTS: usize = 4;

/// Options for random-restart local minimisation.
#[derive(Clone, Copy, Debug)]
pub struct RandomRestartOptions {
    /// Number of random starting points (the paper's baseline uses 100).
    pub restarts: usize,
    /// Lower bound of the uniform sampling box.
    pub lo: f64,
    /// Upper bound of the uniform sampling box.
    pub hi: f64,
    /// Options for the inner BFGS minimizer.
    pub bfgs: BfgsOptions,
}

impl Default for RandomRestartOptions {
    fn default() -> Self {
        RandomRestartOptions {
            restarts: 100,
            lo: 0.0,
            hi: 2.0 * std::f64::consts::PI,
            bfgs: BfgsOptions::default(),
        }
    }
}

/// Runs BFGS from `restarts` random points in the box and returns the best minimum.
///
/// `make_objective` builds one objective instance per worker (e.g. `||
/// QaoaObjective::new(&sim)`), giving every thread its own workspace — and, for QAOA
/// objectives, its own prefix cache, so each worker's value→gradient pairs and
/// finite-difference sweeps take the suffix-replay path independently; candidates are
/// evaluated in parallel when there are enough of them.
pub fn random_restart<O, F, R>(
    make_objective: F,
    dim: usize,
    opts: &RandomRestartOptions,
    rng: &mut R,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
    R: Rng + ?Sized,
{
    random_restart_with_control(make_objective, dim, opts, rng, &RunControl::new())
}

/// [`random_restart`] with cooperative cancellation and progress reporting.
///
/// The cancel flag is polled once per candidate, before its BFGS run starts: already
/// running candidates finish, pending ones are skipped, and the best minimum among the
/// completed candidates is returned with `converged = false`.  Progress units are
/// completed restarts.  An uncancelled run is bit-identical to [`random_restart`].
pub fn random_restart_with_control<O, F, R>(
    make_objective: F,
    dim: usize,
    opts: &RandomRestartOptions,
    rng: &mut R,
    control: &RunControl,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
    R: Rng + ?Sized,
{
    assert!(opts.restarts > 0, "at least one restart is required");
    // Draw every starting point first, in serial candidate order, so the result is a
    // pure function of the seed regardless of how the evaluation is scheduled.
    let starts: Vec<Vec<f64>> = (0..opts.restarts)
        .map(|_| (0..dim).map(|_| rng.gen_range(opts.lo..opts.hi)).collect())
        .collect();
    let first_start = starts[0].clone();
    let total = opts.restarts as u64;
    let completed = AtomicU64::new(0);
    let run_one = |objective: &mut O, x0: &[f64]| -> Option<OptimizeResult> {
        // Cancelled or past the deadline: skip remaining candidates, keep the best
        // of the ones that finished.
        if control.should_stop() {
            return None;
        }
        let res = bfgs(objective, x0, &opts.bfgs);
        // relaxed: progress tally; commutative adds, value is advisory.
        control.report(completed.fetch_add(1, Ordering::Relaxed) + 1, total);
        Some(res)
    };

    // Fan candidates out unless the caller is itself a worker of an outer parallel
    // loop (a batched job runner): nested fan-out would only multiply thread-spawn
    // overhead while every core is already busy.
    let results: Vec<Option<OptimizeResult>> = if opts.restarts >= MIN_PARALLEL_RESTARTS
        && rayon::current_num_threads() > 1
        && !in_outer_parallelism()
    {
        starts
            .into_par_iter()
            .map_init(
                || (enter_outer_parallelism(), make_objective()),
                |(_guard, objective), x0| run_one(objective, &x0),
            )
            .collect()
    } else {
        let mut objective = make_objective();
        starts
            .into_iter()
            .map(|x0| run_one(&mut objective, &x0))
            .collect()
    };

    let mut function_evals = 0;
    let mut gradient_evals = 0;
    let mut ran = 0usize;
    let mut best: Option<OptimizeResult> = None;
    for res in results.into_iter().flatten() {
        ran += 1;
        function_evals += res.function_evals;
        gradient_evals += res.gradient_evals;
        // Strict `<` keeps the earliest candidate on ties, matching the serial loop.
        let better = best.as_ref().map(|b| res.value < b.value).unwrap_or(true);
        if better {
            best = Some(res);
        }
    }
    let mut best = match best {
        Some(best) => best,
        None => {
            // Cancelled before any candidate ran: return the first starting point
            // evaluated once, so callers still get a well-formed (if unoptimized)
            // in-domain result.
            let mut objective = make_objective();
            let value = objective.value(&first_start);
            OptimizeResult {
                x: first_start,
                value,
                iterations: 0,
                function_evals: 1,
                gradient_evals: 0,
                converged: false,
            }
        }
    };
    best.function_evals = function_evals.max(best.function_evals);
    best.gradient_evals = gradient_evals.max(best.gradient_evals);
    best.iterations = opts.restarts;
    best.converged = best.converged && ran == opts.restarts;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A rugged 1-D function on [0, 2π) with global minimum at x* ≈ 4.28 (value ≈ −1.27).
    fn rugged(x: &[f64]) -> f64 {
        (3.0 * x[0]).sin() + 0.3 * (x[0] - 4.0).powi(2)
    }

    #[test]
    fn beats_single_start_on_rugged_landscape() {
        let mut single = FnObjective::new(1, rugged);
        let one = bfgs(&mut single, &[0.3], &BfgsOptions::default());

        let many = random_restart(
            || FnObjective::new(1, rugged),
            1,
            &RandomRestartOptions {
                restarts: 30,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(5),
        );
        assert!(many.value <= one.value + 1e-9);
        // Global minimum is ≈ −0.968 near x ≈ 3.67.
        assert!(
            many.value < -0.9,
            "global minimum not found: {}",
            many.value
        );
        assert!((many.x[0] - 3.67).abs() < 0.3);
    }

    #[test]
    fn single_restart_is_just_bfgs_from_a_random_point() {
        let res = random_restart(
            || FnObjective::new(2, |x: &[f64]| x[0].powi(2) + x[1].powi(2)),
            2,
            &RandomRestartOptions {
                restarts: 1,
                lo: -1.0,
                hi: 1.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(9),
        );
        assert!(res.value < 1e-8);
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            random_restart(
                || FnObjective::new(1, rugged),
                1,
                &RandomRestartOptions {
                    restarts: 10,
                    ..Default::default()
                },
                &mut StdRng::seed_from_u64(seed),
            )
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.x, b.x);
        assert_eq!(a.function_evals, b.function_evals);
    }

    #[test]
    fn parallel_and_serial_candidate_evaluation_agree() {
        // The candidate list and per-candidate BFGS are identical on both scheduling
        // branches, so results must match bit-for-bit; tests/outer_parallel.rs forces
        // the genuinely multi-threaded schedule via RAYON_NUM_THREADS.
        let run_with_restarts = |restarts: usize| {
            random_restart(
                || FnObjective::new(1, rugged),
                1,
                &RandomRestartOptions {
                    restarts,
                    ..Default::default()
                },
                &mut StdRng::seed_from_u64(77),
            )
        };
        // A serial reference computed by hand from the same draws.
        let opts = RandomRestartOptions {
            restarts: 24,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(123);
        let starts: Vec<Vec<f64>> = (0..opts.restarts)
            .map(|_| vec![rand::Rng::gen_range(&mut rng, opts.lo..opts.hi)])
            .collect();
        let mut best_value = f64::INFINITY;
        let mut best_x = Vec::new();
        let mut obj = FnObjective::new(1, rugged);
        for x0 in &starts {
            let r = bfgs(&mut obj, x0, &opts.bfgs);
            if r.value < best_value {
                best_value = r.value;
                best_x = r.x;
            }
        }
        let through_api = random_restart(
            || FnObjective::new(1, rugged),
            1,
            &opts,
            &mut StdRng::seed_from_u64(123),
        );
        assert_eq!(through_api.x, best_x);
        assert_eq!(through_api.value, best_value);
        // And the scheduling branch itself does not change the answer shape.
        let par = run_with_restarts(24);
        let par2 = run_with_restarts(24);
        assert_eq!(par.x, par2.x);
    }

    #[test]
    fn cancellation_mid_run_returns_partial_best_unconverged() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = flag.clone();
        let completed = Arc::new(AtomicUsize::new(0));
        let completed2 = completed.clone();
        // Cancel after the third completed restart.
        let control = RunControl::with_cancel(flag).on_progress(move |done, _| {
            completed2.store(done as usize, Ordering::SeqCst);
            if done >= 3 {
                flag2.store(true, Ordering::SeqCst);
            }
        });
        let res = random_restart_with_control(
            || FnObjective::new(1, rugged),
            1,
            &RandomRestartOptions {
                restarts: 50,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(5),
            &control,
        );
        assert!(!res.converged);
        assert!(res.value.is_finite());
        assert!(completed.load(Ordering::SeqCst) < 50);
    }

    #[test]
    fn pre_cancelled_run_returns_an_in_domain_point() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(true));
        let control = RunControl::with_cancel(flag);
        let opts = RandomRestartOptions {
            restarts: 6,
            lo: 1.0,
            hi: 2.0,
            ..Default::default()
        };
        let res = random_restart_with_control(
            || FnObjective::new(1, rugged),
            1,
            &opts,
            &mut StdRng::seed_from_u64(3),
            &control,
        );
        assert!(!res.converged);
        assert!(
            (opts.lo..opts.hi).contains(&res.x[0]),
            "fallback point {} must lie inside the search box",
            res.x[0]
        );
    }

    #[test]
    fn uncancelled_control_run_matches_plain_run() {
        let opts = RandomRestartOptions {
            restarts: 12,
            ..Default::default()
        };
        let plain = random_restart(
            || FnObjective::new(1, rugged),
            1,
            &opts,
            &mut StdRng::seed_from_u64(21),
        );
        let controlled = random_restart_with_control(
            || FnObjective::new(1, rugged),
            1,
            &opts,
            &mut StdRng::seed_from_u64(21),
            &RunControl::new(),
        );
        assert_eq!(plain.x, controlled.x);
        assert_eq!(plain.value, controlled.value);
        assert_eq!(plain.function_evals, controlled.function_evals);
        assert!(controlled.converged == plain.converged);
    }

    #[test]
    #[should_panic]
    fn zero_restarts_panics() {
        let _ = random_restart(
            || FnObjective::new(1, |x: &[f64]| x[0]),
            1,
            &RandomRestartOptions {
                restarts: 0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(1),
        );
    }
}
