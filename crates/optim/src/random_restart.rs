//! Random local-minima exploration (the `find_angles_rand` of Listing 3).
//!
//! The baseline of Lotshaw et al. that Figure 3 compares against: start BFGS from many
//! uniformly random angle vectors in `[0, 2π)^{2p}`, keep the best local minimum.

use crate::bfgs::{bfgs, BfgsOptions};
use crate::objective::{Objective, OptimizeResult};
use rand::Rng;

/// Options for random-restart local minimisation.
#[derive(Clone, Copy, Debug)]
pub struct RandomRestartOptions {
    /// Number of random starting points (the paper's baseline uses 100).
    pub restarts: usize,
    /// Lower bound of the uniform sampling box.
    pub lo: f64,
    /// Upper bound of the uniform sampling box.
    pub hi: f64,
    /// Options for the inner BFGS minimizer.
    pub bfgs: BfgsOptions,
}

impl Default for RandomRestartOptions {
    fn default() -> Self {
        RandomRestartOptions {
            restarts: 100,
            lo: 0.0,
            hi: 2.0 * std::f64::consts::PI,
            bfgs: BfgsOptions::default(),
        }
    }
}

/// Runs BFGS from `restarts` random points in the box and returns the best minimum.
pub fn random_restart<O: Objective + ?Sized, R: Rng + ?Sized>(
    objective: &mut O,
    dim: usize,
    opts: &RandomRestartOptions,
    rng: &mut R,
) -> OptimizeResult {
    assert!(opts.restarts > 0, "at least one restart is required");
    let mut best: Option<OptimizeResult> = None;
    let mut function_evals = 0;
    let mut gradient_evals = 0;
    for _ in 0..opts.restarts {
        let x0: Vec<f64> = (0..dim).map(|_| rng.gen_range(opts.lo..opts.hi)).collect();
        let res = bfgs(objective, &x0, &opts.bfgs);
        function_evals += res.function_evals;
        gradient_evals += res.gradient_evals;
        let better = best.as_ref().map(|b| res.value < b.value).unwrap_or(true);
        if better {
            best = Some(res);
        }
    }
    let mut best = best.expect("restarts > 0 guarantees a result");
    best.function_evals = function_evals;
    best.gradient_evals = gradient_evals;
    best.iterations = opts.restarts;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A rugged 1-D function on [0, 2π) with global minimum at x* ≈ 4.28 (value ≈ −1.27).
    fn rugged(x: &[f64]) -> f64 {
        (3.0 * x[0]).sin() + 0.3 * (x[0] - 4.0).powi(2)
    }

    #[test]
    fn beats_single_start_on_rugged_landscape() {
        let mut single = FnObjective::new(1, rugged);
        let one = bfgs(&mut single, &[0.3], &BfgsOptions::default());

        let mut multi = FnObjective::new(1, rugged);
        let many = random_restart(
            &mut multi,
            1,
            &RandomRestartOptions {
                restarts: 30,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(5),
        );
        assert!(many.value <= one.value + 1e-9);
        // Global minimum is ≈ −0.968 near x ≈ 3.67.
        assert!(many.value < -0.9, "global minimum not found: {}", many.value);
        assert!((many.x[0] - 3.67).abs() < 0.3);
    }

    #[test]
    fn single_restart_is_just_bfgs_from_a_random_point() {
        let mut obj = FnObjective::new(2, |x: &[f64]| x[0].powi(2) + x[1].powi(2));
        let res = random_restart(
            &mut obj,
            2,
            &RandomRestartOptions {
                restarts: 1,
                lo: -1.0,
                hi: 1.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(9),
        );
        assert!(res.value < 1e-8);
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut obj = FnObjective::new(1, rugged);
            random_restart(
                &mut obj,
                1,
                &RandomRestartOptions {
                    restarts: 10,
                    ..Default::default()
                },
                &mut StdRng::seed_from_u64(seed),
            )
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.x, b.x);
    }

    #[test]
    #[should_panic]
    fn zero_restarts_panics() {
        let mut obj = FnObjective::new(1, |x: &[f64]| x[0]);
        let _ = random_restart(
            &mut obj,
            1,
            &RandomRestartOptions {
                restarts: 0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(1),
        );
    }
}
