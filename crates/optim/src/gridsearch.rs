//! Brute-force grid search over the angle hypercube.
//!
//! One of the "other common angle-finding methods" the paper lists.  Only practical at
//! very small `p` (the grid has `resolution^{2p}` points), but useful as a ground truth
//! for `p = 1` landscapes and in tests.
//!
//! Grid points are independent, so the scan fans contiguous index blocks out across
//! cores — each worker with its own objective instance (and therefore its own
//! simulation workspace), inner statevector kernels pinned serial by the
//! `juliqaoa_linalg::parallel` guard.  Points are totally ordered by their linear
//! index and ties resolve to the lowest index, so the parallel scan returns exactly
//! the serial scan's result.

use crate::control::RunControl;
use crate::objective::{Objective, OptimizeResult};
use juliqaoa_linalg::{enter_outer_parallelism, in_outer_parallelism};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum number of grid points before fanning out across threads pays.
const MIN_PARALLEL_POINTS: u128 = 256;

/// Cancellation is polled once per this many grid points inside a block scan.
const CANCEL_POLL_STRIDE: usize = 1024;

/// Writes the coordinates of grid point `index` into `point`.
///
/// Axis 0 is the fastest-varying digit, matching the odometer order of the serial
/// scan; every cell is sampled at its midpoint.
fn point_at(index: usize, resolution: usize, lo: f64, step: f64, point: &mut [f64]) {
    let mut rest = index;
    for coordinate in point.iter_mut() {
        let digit = rest % resolution;
        rest /= resolution;
        *coordinate = lo + (digit as f64 + 0.5) * step;
    }
}

/// The geometry of one scan: per-axis resolution, box origin, cell width, dimension.
#[derive(Clone, Copy)]
struct GridShape {
    resolution: usize,
    lo: f64,
    step: f64,
    dim: usize,
}

/// Scans grid indices `[start, end)`, returning the best `(value, index, scanned)` of
/// the block (strict `<`, so the lowest index wins ties).  Cancellation is polled every
/// [`CANCEL_POLL_STRIDE`] points; a cancelled scan returns the best of the points it
/// reached.
fn scan_block<O: Objective + ?Sized>(
    objective: &mut O,
    start: usize,
    end: usize,
    grid: GridShape,
    control: &RunControl,
) -> (f64, usize, usize) {
    let mut point = vec![grid.lo; grid.dim];
    let mut best_value = f64::INFINITY;
    let mut best_index = start;
    let mut scanned = 0;
    for index in start..end {
        if scanned % CANCEL_POLL_STRIDE == 0 && control.is_cancelled() {
            break;
        }
        point_at(index, grid.resolution, grid.lo, grid.step, &mut point);
        let value = objective.value(&point);
        scanned += 1;
        if value < best_value {
            best_value = value;
            best_index = index;
        }
    }
    (best_value, best_index, scanned)
}

/// Evaluates the objective on a regular grid over `[lo, hi)^dim` with `resolution`
/// points per axis, returning the best grid point.
///
/// `make_objective` builds one objective instance per worker thread; the grid is
/// scanned in parallel blocks when large enough.
///
/// # Panics
/// Panics if `resolution == 0`, `dim == 0`, or the grid would exceed `10^8` points.
pub fn grid_search<O, F>(
    make_objective: F,
    dim: usize,
    lo: f64,
    hi: f64,
    resolution: usize,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
{
    grid_search_with_control(make_objective, dim, lo, hi, resolution, &RunControl::new())
}

/// [`grid_search`] with cooperative cancellation and progress reporting.
///
/// Progress units are scanned grid points, reported per finished block.  A cancelled
/// scan returns the best of the points actually visited with `converged = false`; an
/// uncancelled run is bit-identical to [`grid_search`].
///
/// # Panics
/// Panics if `resolution == 0`, `dim == 0`, or the grid would exceed `10^8` points.
pub fn grid_search_with_control<O, F>(
    make_objective: F,
    dim: usize,
    lo: f64,
    hi: f64,
    resolution: usize,
    control: &RunControl,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
{
    assert!(resolution > 0, "grid resolution must be positive");
    assert!(dim > 0, "grid search needs at least one dimension");
    let total_wide = (resolution as u128).pow(dim as u32);
    assert!(
        total_wide <= 100_000_000,
        "grid of {total_wide} points is too large"
    );
    let total = total_wide as usize;

    let step = (hi - lo) / resolution as f64;
    let grid = GridShape {
        resolution,
        lo,
        step,
        dim,
    };
    let threads = rayon::current_num_threads();
    let progress = AtomicU64::new(0);

    // Like the candidate loop of `random_restart`, stay serial when the caller is
    // already a worker of an outer parallel region (e.g. a batched job runner).
    let (best_value, best_index, scanned) =
        if total_wide >= MIN_PARALLEL_POINTS && threads > 1 && !in_outer_parallelism() {
            // Contiguous index blocks, a few per thread for load balance.
            let blocks = (threads * 4).min(total);
            let block_bests: Vec<(f64, usize, usize)> = (0..blocks)
                .into_par_iter()
                .map_init(
                    || (enter_outer_parallelism(), make_objective()),
                    |(_guard, objective), block| {
                        let start = block * total / blocks;
                        let end = (block + 1) * total / blocks;
                        let out = scan_block(objective, start, end, grid, control);
                        control.report(
                            progress.fetch_add(out.2 as u64, Ordering::Relaxed) + out.2 as u64,
                            total as u64,
                        );
                        out
                    },
                )
                .collect();
            // Blocks are in index order; strict `<` keeps the lowest-index winner.
            let mut best = (f64::INFINITY, 0usize, 0usize);
            for (value, index, scanned) in block_bests {
                best.2 += scanned;
                if value < best.0 {
                    best.0 = value;
                    best.1 = index;
                }
            }
            best
        } else {
            let mut objective = make_objective();
            let out = scan_block(&mut objective, 0, total, grid, control);
            control.report(out.2 as u64, total as u64);
            out
        };

    let mut best_x = vec![lo; dim];
    point_at(best_index, resolution, lo, step, &mut best_x);
    OptimizeResult {
        x: best_x,
        value: best_value,
        iterations: scanned,
        function_evals: scanned,
        gradient_evals: 0,
        converged: scanned == total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn finds_minimum_of_separable_quadratic() {
        let res = grid_search(
            || FnObjective::new(2, |x: &[f64]| (x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2)),
            2,
            -1.0,
            1.0,
            20,
        );
        assert!((res.x[0] - 0.5).abs() < 0.1);
        assert!((res.x[1] + 0.5).abs() < 0.1);
        assert_eq!(res.function_evals, 400);
    }

    #[test]
    fn single_point_grid() {
        let res = grid_search(
            || FnObjective::new(1, |x: &[f64]| x[0].abs()),
            1,
            0.0,
            2.0,
            1,
        );
        assert_eq!(res.function_evals, 1);
        assert_eq!(res.x, vec![1.0]); // midpoint of the only cell
    }

    #[test]
    fn resolution_refines_accuracy() {
        let f = |x: &[f64]| (x[0] - 0.123).powi(2);
        let c = grid_search(|| FnObjective::new(1, f), 1, 0.0, 1.0, 4);
        let g = grid_search(|| FnObjective::new(1, f), 1, 0.0, 1.0, 200);
        assert!(g.value <= c.value);
        assert!((g.x[0] - 0.123).abs() < 0.01);
    }

    #[test]
    fn parallel_block_scan_matches_serial_scan() {
        // 40_000 points is far above MIN_PARALLEL_POINTS; on a multi-core host this
        // takes the block-parallel path (tests/outer_parallel.rs forces that schedule
        // even on one core via RAYON_NUM_THREADS).  Either way the result must equal
        // a plain serial scan with lowest-index tie-breaking.
        let f = |x: &[f64]| ((x[0] * 3.1).sin() + (x[1] * 1.7).cos()).abs();
        let parallel = grid_search(|| FnObjective::new(2, f), 2, -2.0, 2.0, 200);
        let mut serial_obj = FnObjective::new(2, f);
        let serial = scan_block(
            &mut serial_obj,
            0,
            40_000,
            GridShape {
                resolution: 200,
                lo: -2.0,
                step: 4.0 / 200.0,
                dim: 2,
            },
            &RunControl::new(),
        );
        assert_eq!(parallel.value, serial.0);
        let mut expected_x = vec![0.0; 2];
        point_at(serial.1, 200, -2.0, 4.0 / 200.0, &mut expected_x);
        assert_eq!(parallel.x, expected_x);
        assert_eq!(serial.2, 40_000);
    }

    #[test]
    fn pre_cancelled_scan_visits_no_points_and_reports_unconverged() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let control = RunControl::with_cancel(flag);
        let res = grid_search_with_control(
            || FnObjective::new(2, |x: &[f64]| x[0] + x[1]),
            2,
            0.0,
            1.0,
            100,
            &control,
        );
        assert!(!res.converged);
        assert_eq!(res.function_evals, 0);
    }

    #[test]
    fn progress_reports_reach_the_full_grid() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = std::sync::Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let control = RunControl::new().on_progress(move |done, _total| {
            seen2.fetch_max(done, Ordering::Relaxed);
        });
        let res = grid_search_with_control(
            || FnObjective::new(2, |x: &[f64]| x[0] * x[1]),
            2,
            0.0,
            1.0,
            40,
            &control,
        );
        assert!(res.converged);
        assert_eq!(seen.load(Ordering::Relaxed), 1600);
    }

    #[test]
    fn point_index_decomposition_matches_odometer_order() {
        // Axis 0 varies fastest: index 1 moves axis 0, index `resolution` moves axis 1.
        let mut p = vec![0.0; 2];
        point_at(0, 10, 0.0, 0.1, &mut p);
        assert!((p[0] - 0.05).abs() < 1e-12 && (p[1] - 0.05).abs() < 1e-12);
        point_at(1, 10, 0.0, 0.1, &mut p);
        assert!((p[0] - 0.15).abs() < 1e-12 && (p[1] - 0.05).abs() < 1e-12);
        point_at(10, 10, 0.0, 0.1, &mut p);
        assert!((p[0] - 0.05).abs() < 1e-12 && (p[1] - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn oversized_grid_panics() {
        let _ = grid_search(|| FnObjective::new(6, |_: &[f64]| 0.0), 6, 0.0, 1.0, 100);
    }
}
