//! Brute-force grid search over the angle hypercube.
//!
//! One of the "other common angle-finding methods" the paper lists.  Only practical at
//! very small `p` (the grid has `resolution^{2p}` points), but useful as a ground truth
//! for `p = 1` landscapes and in tests.

use crate::objective::{Objective, OptimizeResult};

/// Evaluates the objective on a regular grid over `[lo, hi)^dim` with `resolution`
/// points per axis, returning the best grid point.
///
/// # Panics
/// Panics if `resolution == 0`, `dim == 0`, or the grid would exceed `10^8` points.
pub fn grid_search<O: Objective + ?Sized>(
    objective: &mut O,
    dim: usize,
    lo: f64,
    hi: f64,
    resolution: usize,
) -> OptimizeResult {
    assert!(resolution > 0, "grid resolution must be positive");
    assert!(dim > 0, "grid search needs at least one dimension");
    let total = (resolution as u128).pow(dim as u32);
    assert!(total <= 100_000_000, "grid of {total} points is too large");

    let step = (hi - lo) / resolution as f64;
    let mut best_x = vec![lo; dim];
    let mut best_value = f64::INFINITY;
    let mut point = vec![lo; dim];
    let mut indices = vec![0usize; dim];
    let mut function_evals = 0usize;

    loop {
        for (p, &idx) in point.iter_mut().zip(indices.iter()) {
            *p = lo + (idx as f64 + 0.5) * step;
        }
        let v = objective.value(&point);
        function_evals += 1;
        if v < best_value {
            best_value = v;
            best_x.copy_from_slice(&point);
        }
        // Odometer increment.
        let mut carry = true;
        for idx in indices.iter_mut() {
            if carry {
                *idx += 1;
                if *idx == resolution {
                    *idx = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }

    OptimizeResult {
        x: best_x,
        value: best_value,
        iterations: function_evals,
        function_evals,
        gradient_evals: 0,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn finds_minimum_of_separable_quadratic() {
        let mut obj = FnObjective::new(2, |x: &[f64]| (x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2));
        let res = grid_search(&mut obj, 2, -1.0, 1.0, 20);
        assert!((res.x[0] - 0.5).abs() < 0.1);
        assert!((res.x[1] + 0.5).abs() < 0.1);
        assert_eq!(res.function_evals, 400);
    }

    #[test]
    fn single_point_grid() {
        let mut obj = FnObjective::new(1, |x: &[f64]| x[0].abs());
        let res = grid_search(&mut obj, 1, 0.0, 2.0, 1);
        assert_eq!(res.function_evals, 1);
        assert_eq!(res.x, vec![1.0]); // midpoint of the only cell
    }

    #[test]
    fn resolution_refines_accuracy() {
        let f = |x: &[f64]| (x[0] - 0.123).powi(2);
        let mut coarse = FnObjective::new(1, f);
        let mut fine = FnObjective::new(1, f);
        let c = grid_search(&mut coarse, 1, 0.0, 1.0, 4);
        let g = grid_search(&mut fine, 1, 0.0, 1.0, 200);
        assert!(g.value <= c.value);
        assert!((g.x[0] - 0.123).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn oversized_grid_panics() {
        let mut obj = FnObjective::new(6, |_: &[f64]| 0.0);
        let _ = grid_search(&mut obj, 6, 0.0, 1.0, 100);
    }
}
