//! Brute-force grid search over the angle hypercube.
//!
//! One of the "other common angle-finding methods" the paper lists.  Only practical at
//! very small `p` (the grid has `resolution^{2p}` points), but useful as a ground truth
//! for `p = 1` landscapes and in tests.
//!
//! Grid points are independent, so the scan fans contiguous index blocks out across
//! cores — each worker with its own objective instance (and therefore its own
//! simulation workspace), inner statevector kernels pinned serial by the
//! `juliqaoa_linalg::parallel` guard.  Points are totally ordered by their linear
//! index and ties resolve to the lowest index, so the parallel scan returns exactly
//! the serial scan's result.

use crate::objective::{Objective, OptimizeResult};
use juliqaoa_linalg::enter_outer_parallelism;
use rayon::prelude::*;

/// Minimum number of grid points before fanning out across threads pays.
const MIN_PARALLEL_POINTS: u128 = 256;

/// Writes the coordinates of grid point `index` into `point`.
///
/// Axis 0 is the fastest-varying digit, matching the odometer order of the serial
/// scan; every cell is sampled at its midpoint.
fn point_at(index: usize, resolution: usize, lo: f64, step: f64, point: &mut [f64]) {
    let mut rest = index;
    for coordinate in point.iter_mut() {
        let digit = rest % resolution;
        rest /= resolution;
        *coordinate = lo + (digit as f64 + 0.5) * step;
    }
}

/// Scans grid indices `[start, end)`, returning the best `(value, index)` of the block
/// (strict `<`, so the lowest index wins ties).
fn scan_block<O: Objective + ?Sized>(
    objective: &mut O,
    start: usize,
    end: usize,
    resolution: usize,
    lo: f64,
    step: f64,
    dim: usize,
) -> (f64, usize) {
    let mut point = vec![lo; dim];
    let mut best_value = f64::INFINITY;
    let mut best_index = start;
    for index in start..end {
        point_at(index, resolution, lo, step, &mut point);
        let value = objective.value(&point);
        if value < best_value {
            best_value = value;
            best_index = index;
        }
    }
    (best_value, best_index)
}

/// Evaluates the objective on a regular grid over `[lo, hi)^dim` with `resolution`
/// points per axis, returning the best grid point.
///
/// `make_objective` builds one objective instance per worker thread; the grid is
/// scanned in parallel blocks when large enough.
///
/// # Panics
/// Panics if `resolution == 0`, `dim == 0`, or the grid would exceed `10^8` points.
pub fn grid_search<O, F>(
    make_objective: F,
    dim: usize,
    lo: f64,
    hi: f64,
    resolution: usize,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
{
    assert!(resolution > 0, "grid resolution must be positive");
    assert!(dim > 0, "grid search needs at least one dimension");
    let total_wide = (resolution as u128).pow(dim as u32);
    assert!(
        total_wide <= 100_000_000,
        "grid of {total_wide} points is too large"
    );
    let total = total_wide as usize;

    let step = (hi - lo) / resolution as f64;
    let threads = rayon::current_num_threads();

    let (best_value, best_index) = if total_wide >= MIN_PARALLEL_POINTS && threads > 1 {
        // Contiguous index blocks, a few per thread for load balance.
        let blocks = (threads * 4).min(total);
        let block_bests: Vec<(f64, usize)> = (0..blocks)
            .into_par_iter()
            .map_init(
                || (enter_outer_parallelism(), make_objective()),
                |(_guard, objective), block| {
                    let start = block * total / blocks;
                    let end = (block + 1) * total / blocks;
                    scan_block(objective, start, end, resolution, lo, step, dim)
                },
            )
            .collect();
        // Blocks are in index order; strict `<` keeps the lowest-index winner.
        let mut best = (f64::INFINITY, 0usize);
        for (value, index) in block_bests {
            if value < best.0 {
                best = (value, index);
            }
        }
        best
    } else {
        let mut objective = make_objective();
        scan_block(&mut objective, 0, total, resolution, lo, step, dim)
    };

    let mut best_x = vec![lo; dim];
    point_at(best_index, resolution, lo, step, &mut best_x);
    OptimizeResult {
        x: best_x,
        value: best_value,
        iterations: total,
        function_evals: total,
        gradient_evals: 0,
        converged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn finds_minimum_of_separable_quadratic() {
        let res = grid_search(
            || FnObjective::new(2, |x: &[f64]| (x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2)),
            2,
            -1.0,
            1.0,
            20,
        );
        assert!((res.x[0] - 0.5).abs() < 0.1);
        assert!((res.x[1] + 0.5).abs() < 0.1);
        assert_eq!(res.function_evals, 400);
    }

    #[test]
    fn single_point_grid() {
        let res = grid_search(
            || FnObjective::new(1, |x: &[f64]| x[0].abs()),
            1,
            0.0,
            2.0,
            1,
        );
        assert_eq!(res.function_evals, 1);
        assert_eq!(res.x, vec![1.0]); // midpoint of the only cell
    }

    #[test]
    fn resolution_refines_accuracy() {
        let f = |x: &[f64]| (x[0] - 0.123).powi(2);
        let c = grid_search(|| FnObjective::new(1, f), 1, 0.0, 1.0, 4);
        let g = grid_search(|| FnObjective::new(1, f), 1, 0.0, 1.0, 200);
        assert!(g.value <= c.value);
        assert!((g.x[0] - 0.123).abs() < 0.01);
    }

    #[test]
    fn parallel_block_scan_matches_serial_scan() {
        // 40_000 points is far above MIN_PARALLEL_POINTS; on a multi-core host this
        // takes the block-parallel path (tests/outer_parallel.rs forces that schedule
        // even on one core via RAYON_NUM_THREADS).  Either way the result must equal
        // a plain serial scan with lowest-index tie-breaking.
        let f = |x: &[f64]| ((x[0] * 3.1).sin() + (x[1] * 1.7).cos()).abs();
        let parallel = grid_search(|| FnObjective::new(2, f), 2, -2.0, 2.0, 200);
        let mut serial_obj = FnObjective::new(2, f);
        let serial = scan_block(&mut serial_obj, 0, 40_000, 200, -2.0, 4.0 / 200.0, 2);
        assert_eq!(parallel.value, serial.0);
        let mut expected_x = vec![0.0; 2];
        point_at(serial.1, 200, -2.0, 4.0 / 200.0, &mut expected_x);
        assert_eq!(parallel.x, expected_x);
    }

    #[test]
    fn point_index_decomposition_matches_odometer_order() {
        // Axis 0 varies fastest: index 1 moves axis 0, index `resolution` moves axis 1.
        let mut p = vec![0.0; 2];
        point_at(0, 10, 0.0, 0.1, &mut p);
        assert!((p[0] - 0.05).abs() < 1e-12 && (p[1] - 0.05).abs() < 1e-12);
        point_at(1, 10, 0.0, 0.1, &mut p);
        assert!((p[0] - 0.15).abs() < 1e-12 && (p[1] - 0.05).abs() < 1e-12);
        point_at(10, 10, 0.0, 0.1, &mut p);
        assert!((p[0] - 0.05).abs() < 1e-12 && (p[1] - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn oversized_grid_panics() {
        let _ = grid_search(|| FnObjective::new(6, |_: &[f64]| 0.0), 6, 0.0, 1.0, 100);
    }
}
