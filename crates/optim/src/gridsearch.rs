//! Brute-force grid search over the angle hypercube.
//!
//! One of the "other common angle-finding methods" the paper lists.  Only practical at
//! very small `p` (the grid has `resolution^{2p}` points), but useful as a ground truth
//! for `p = 1` landscapes and in tests.
//!
//! Grid points are independent, so the scan fans contiguous index blocks out across
//! cores — each worker with its own objective instance (and therefore its own
//! simulation workspace), inner statevector kernels pinned serial by the
//! `juliqaoa_linalg::parallel` guard.  Points are totally ordered by their linear
//! index and ties resolve to the lowest index, so the parallel scan returns exactly
//! the serial scan's result.
//!
//! # Axis order
//!
//! The odometer mapping from linear index to coordinates is configurable: `order[d]`
//! names the coordinate that digit `d` (digit 0 fastest) drives.  For QAOA objectives
//! use [`qaoa_axis_order`], which makes the **deepest round's angles the
//! fastest-varying axes**: consecutive grid points then share a `p−1`-round circuit
//! prefix, so an objective with a prefix cache re-evolves one round per point instead
//! of `p` — the sweep-level payoff of `juliqaoa_core::PrefixCache`.  The visited point
//! set is the full Cartesian grid either way; only the scan order (and therefore
//! which point wins exact-tie comparisons) depends on the order.
//!
//! Inside a block the odometer is advanced incrementally — digit increment plus carry,
//! updating only the coordinates whose digits changed — instead of a per-point
//! div/mod decode.  Coordinates are always recomputed from their integer digit
//! (`lo + (digit + 0.5)·step`), never accumulated, so the scanned points are
//! bit-identical to a cold decode.

use crate::control::RunControl;
use crate::objective::{Objective, OptimizeResult};
use juliqaoa_linalg::{enter_outer_parallelism, in_outer_parallelism};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum number of grid points before fanning out across threads pays.
const MIN_PARALLEL_POINTS: u128 = 256;

/// Cancellation and deadline expiry are polled once per this many grid points inside
/// a block scan.
const CANCEL_POLL_STRIDE: usize = 1024;

/// The axis order that maximises circuit-prefix sharing for a flat QAOA angle vector
/// `[β_1…β_p, γ_1…γ_p]`: digits drive, fastest first, `β_p, γ_p, β_{p−1}, γ_{p−1}, …`
/// — the deepest round varies fastest, and within a round `β` varies faster than `γ`
/// (so a prefix cache's post-phase-separator tail checkpoint serves the innermost
/// loop).
pub fn qaoa_axis_order(p: usize) -> Vec<usize> {
    assert!(p > 0, "QAOA axis order needs at least one round");
    let mut order = Vec::with_capacity(2 * p);
    for depth in 0..p {
        let round = p - 1 - depth;
        order.push(round); // β of this round
        order.push(p + round); // γ of this round
    }
    order
}

/// Writes the coordinates of grid point `index` into `point`, under the digit→axis
/// mapping `order`; every cell is sampled at its midpoint.
fn point_at(
    index: usize,
    resolution: usize,
    lo: f64,
    step: f64,
    order: &[usize],
    point: &mut [f64],
) {
    let mut rest = index;
    for &axis in order {
        let digit = rest % resolution;
        rest /= resolution;
        point[axis] = lo + (digit as f64 + 0.5) * step;
    }
}

/// The geometry of one scan: per-axis resolution, box origin, cell width, digit order.
#[derive(Clone, Copy)]
struct GridShape<'o> {
    resolution: usize,
    lo: f64,
    step: f64,
    order: &'o [usize],
}

/// Scans grid indices `[start, end)`, returning the best `(value, index, scanned)` of
/// the block (strict `<`, so the lowest index wins ties).  Cancellation is polled every
/// [`CANCEL_POLL_STRIDE`] points; a cancelled scan returns the best of the points it
/// reached.
fn scan_block<O: Objective + ?Sized>(
    objective: &mut O,
    start: usize,
    end: usize,
    grid: GridShape<'_>,
    control: &RunControl,
) -> (f64, usize, usize) {
    let dim = grid.order.len();
    let mut point = vec![grid.lo; dim];
    // Decode the block's first point once; afterwards the odometer advances by
    // increment-and-carry, touching only the digits (and coordinates) that change.
    let mut digits = vec![0usize; dim];
    {
        let mut rest = start;
        for digit in digits.iter_mut() {
            *digit = rest % grid.resolution;
            rest /= grid.resolution;
        }
    }
    for (d, &axis) in grid.order.iter().enumerate() {
        point[axis] = grid.lo + (digits[d] as f64 + 0.5) * grid.step;
    }
    let mut best_value = f64::INFINITY;
    let mut best_index = start;
    let mut scanned = 0;
    for index in start..end {
        if scanned % CANCEL_POLL_STRIDE == 0 && control.should_stop() {
            break;
        }
        let value = objective.value(&point);
        scanned += 1;
        if value < best_value {
            best_value = value;
            best_index = index;
        }
        // Advance the odometer (skipped after the block's last point).
        if index + 1 < end {
            for (d, &axis) in grid.order.iter().enumerate() {
                digits[d] += 1;
                if digits[d] == grid.resolution {
                    digits[d] = 0;
                    point[axis] = grid.lo + 0.5 * grid.step;
                    // Carry into the next digit.
                } else {
                    point[axis] = grid.lo + (digits[d] as f64 + 0.5) * grid.step;
                    break;
                }
            }
        }
    }
    (best_value, best_index, scanned)
}

/// Evaluates the objective on a regular grid over `[lo, hi)^dim` with `resolution`
/// points per axis, returning the best grid point.
///
/// `make_objective` builds one objective instance per worker thread; the grid is
/// scanned in parallel blocks when large enough.  Axis 0 varies fastest; for QAOA
/// objectives prefer [`grid_search_ordered`] with [`qaoa_axis_order`].
///
/// # Panics
/// Panics if `resolution == 0`, `dim == 0`, or the grid would exceed `10^8` points.
pub fn grid_search<O, F>(
    make_objective: F,
    dim: usize,
    lo: f64,
    hi: f64,
    resolution: usize,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
{
    grid_search_with_control(make_objective, dim, lo, hi, resolution, &RunControl::new())
}

/// [`grid_search`] with cooperative cancellation and progress reporting.
///
/// Progress units are scanned grid points, reported per finished block.  A cancelled
/// scan returns the best of the points actually visited with `converged = false`; an
/// uncancelled run is bit-identical to [`grid_search`].
///
/// # Panics
/// Panics if `resolution == 0`, `dim == 0`, or the grid would exceed `10^8` points.
pub fn grid_search_with_control<O, F>(
    make_objective: F,
    dim: usize,
    lo: f64,
    hi: f64,
    resolution: usize,
    control: &RunControl,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
{
    let order: Vec<usize> = (0..dim).collect();
    grid_search_ordered(make_objective, dim, lo, hi, resolution, &order, control)
}

/// [`grid_search_with_control`] with an explicit digit→axis `order` (see the module
/// docs); `order` must be a permutation of `0..dim`.
///
/// # Panics
/// Panics if `resolution == 0`, `dim == 0`, `order` is not a permutation of `0..dim`,
/// or the grid would exceed `10^8` points.
pub fn grid_search_ordered<O, F>(
    make_objective: F,
    dim: usize,
    lo: f64,
    hi: f64,
    resolution: usize,
    order: &[usize],
    control: &RunControl,
) -> OptimizeResult
where
    O: Objective,
    F: Fn() -> O + Sync,
{
    assert!(resolution > 0, "grid resolution must be positive");
    assert!(dim > 0, "grid search needs at least one dimension");
    assert_eq!(order.len(), dim, "axis order must name every dimension");
    {
        let mut seen = vec![false; dim];
        for &axis in order {
            assert!(
                axis < dim && !std::mem::replace(&mut seen[axis], true),
                "axis order must be a permutation of 0..{dim}"
            );
        }
    }
    let total_wide = (resolution as u128).pow(dim as u32);
    assert!(
        total_wide <= 100_000_000,
        "grid of {total_wide} points is too large"
    );
    let total = total_wide as usize;

    let step = (hi - lo) / resolution as f64;
    let grid = GridShape {
        resolution,
        lo,
        step,
        order,
    };
    let threads = rayon::current_num_threads();
    let progress = AtomicU64::new(0);

    // Like the candidate loop of `random_restart`, stay serial when the caller is
    // already a worker of an outer parallel region (e.g. a batched job runner).
    let (best_value, best_index, scanned) =
        if total_wide >= MIN_PARALLEL_POINTS && threads > 1 && !in_outer_parallelism() {
            // Contiguous index blocks, a few per thread for load balance.
            let blocks = (threads * 4).min(total);
            let block_bests: Vec<(f64, usize, usize)> = (0..blocks)
                .into_par_iter()
                .map_init(
                    || (enter_outer_parallelism(), make_objective()),
                    |(_guard, objective), block| {
                        let start = block * total / blocks;
                        let end = (block + 1) * total / blocks;
                        let out = scan_block(objective, start, end, grid, control);
                        control.report(
                            // relaxed: progress tally; commutative adds, value is advisory.
                            progress.fetch_add(out.2 as u64, Ordering::Relaxed) + out.2 as u64,
                            total as u64,
                        );
                        out
                    },
                )
                .collect();
            // Blocks are in index order; strict `<` keeps the lowest-index winner.
            let mut best = (f64::INFINITY, 0usize, 0usize);
            for (value, index, scanned) in block_bests {
                best.2 += scanned;
                if value < best.0 {
                    best.0 = value;
                    best.1 = index;
                }
            }
            best
        } else {
            let mut objective = make_objective();
            let out = scan_block(&mut objective, 0, total, grid, control);
            control.report(out.2 as u64, total as u64);
            out
        };

    let mut best_x = vec![lo; dim];
    point_at(best_index, resolution, lo, step, order, &mut best_x);
    OptimizeResult {
        x: best_x,
        value: best_value,
        iterations: scanned,
        function_evals: scanned,
        gradient_evals: 0,
        converged: scanned == total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn finds_minimum_of_separable_quadratic() {
        let res = grid_search(
            || FnObjective::new(2, |x: &[f64]| (x[0] - 0.5).powi(2) + (x[1] + 0.5).powi(2)),
            2,
            -1.0,
            1.0,
            20,
        );
        assert!((res.x[0] - 0.5).abs() < 0.1);
        assert!((res.x[1] + 0.5).abs() < 0.1);
        assert_eq!(res.function_evals, 400);
    }

    #[test]
    fn single_point_grid() {
        let res = grid_search(
            || FnObjective::new(1, |x: &[f64]| x[0].abs()),
            1,
            0.0,
            2.0,
            1,
        );
        assert_eq!(res.function_evals, 1);
        assert_eq!(res.x, vec![1.0]); // midpoint of the only cell
    }

    #[test]
    fn resolution_refines_accuracy() {
        let f = |x: &[f64]| (x[0] - 0.123).powi(2);
        let c = grid_search(|| FnObjective::new(1, f), 1, 0.0, 1.0, 4);
        let g = grid_search(|| FnObjective::new(1, f), 1, 0.0, 1.0, 200);
        assert!(g.value <= c.value);
        assert!((g.x[0] - 0.123).abs() < 0.01);
    }

    #[test]
    fn parallel_block_scan_matches_serial_scan() {
        // 40_000 points is far above MIN_PARALLEL_POINTS; on a multi-core host this
        // takes the block-parallel path (tests/outer_parallel.rs forces that schedule
        // even on one core via RAYON_NUM_THREADS).  Either way the result must equal
        // a plain serial scan with lowest-index tie-breaking.
        let f = |x: &[f64]| ((x[0] * 3.1).sin() + (x[1] * 1.7).cos()).abs();
        let parallel = grid_search(|| FnObjective::new(2, f), 2, -2.0, 2.0, 200);
        let mut serial_obj = FnObjective::new(2, f);
        let order = [0usize, 1];
        let serial = scan_block(
            &mut serial_obj,
            0,
            40_000,
            GridShape {
                resolution: 200,
                lo: -2.0,
                step: 4.0 / 200.0,
                order: &order,
            },
            &RunControl::new(),
        );
        assert_eq!(parallel.value, serial.0);
        let mut expected_x = vec![0.0; 2];
        point_at(serial.1, 200, -2.0, 4.0 / 200.0, &order, &mut expected_x);
        assert_eq!(parallel.x, expected_x);
        assert_eq!(serial.2, 40_000);
    }

    #[test]
    fn incremental_odometer_matches_per_point_decode() {
        // Every point the carry odometer visits must be bit-identical to a fresh
        // div/mod decode of its index, including across block boundaries.
        for &(start, end) in &[(0usize, 125usize), (7, 100), (123, 125), (60, 61)] {
            let grid = GridShape {
                resolution: 5,
                lo: -1.0,
                step: 0.4,
                order: &[2, 0, 1],
            };
            let visited = std::cell::RefCell::new(Vec::new());
            let mut probe = FnObjective::new(3, |x: &[f64]| {
                visited.borrow_mut().push(x.to_vec());
                0.0
            });
            let (_, _, scanned) = scan_block(&mut probe, start, end, grid, &RunControl::new());
            assert_eq!(scanned, end - start);
            for (offset, point) in visited.borrow().iter().enumerate() {
                let mut expected = vec![0.0; 3];
                point_at(start + offset, 5, -1.0, 0.4, grid.order, &mut expected);
                for (a, b) in point.iter().zip(expected.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn ordered_scan_visits_the_same_point_set() {
        // The suffix-major order permutes the scan sequence, never the grid itself:
        // both orders must find the same (unique) minimizer of a tie-free function.
        let f = |x: &[f64]| (x[0] - 0.31).powi(2) + (x[1] + 0.77).powi(2) + 0.1 * x[2] + x[3];
        let standard = grid_search(|| FnObjective::new(4, f), 4, -1.0, 1.0, 7);
        let order = qaoa_axis_order(2);
        let suffix = grid_search_ordered(
            || FnObjective::new(4, f),
            4,
            -1.0,
            1.0,
            7,
            &order,
            &RunControl::new(),
        );
        assert_eq!(standard.x, suffix.x);
        assert_eq!(standard.value, suffix.value);
        assert_eq!(standard.function_evals, suffix.function_evals);
    }

    #[test]
    fn qaoa_axis_order_puts_the_deepest_round_first() {
        // p = 3, flat layout [β1 β2 β3 γ1 γ2 γ3]: digits drive β3 γ3 β2 γ2 β1 γ1.
        assert_eq!(qaoa_axis_order(3), vec![2, 5, 1, 4, 0, 3]);
        assert_eq!(qaoa_axis_order(1), vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn non_permutation_order_panics() {
        let _ = grid_search_ordered(
            || FnObjective::new(2, |x: &[f64]| x[0] + x[1]),
            2,
            0.0,
            1.0,
            3,
            &[0, 0],
            &RunControl::new(),
        );
    }

    #[test]
    fn pre_cancelled_scan_visits_no_points_and_reports_unconverged() {
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let control = RunControl::with_cancel(flag);
        let res = grid_search_with_control(
            || FnObjective::new(2, |x: &[f64]| x[0] + x[1]),
            2,
            0.0,
            1.0,
            100,
            &control,
        );
        assert!(!res.converged);
        assert_eq!(res.function_evals, 0);
    }

    #[test]
    fn progress_reports_reach_the_full_grid() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = std::sync::Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let control = RunControl::new().on_progress(move |done, _total| {
            seen2.fetch_max(done, Ordering::Relaxed);
        });
        let res = grid_search_with_control(
            || FnObjective::new(2, |x: &[f64]| x[0] * x[1]),
            2,
            0.0,
            1.0,
            40,
            &control,
        );
        assert!(res.converged);
        assert_eq!(seen.load(Ordering::Relaxed), 1600);
    }

    #[test]
    fn point_index_decomposition_matches_odometer_order() {
        // Identity order: axis 0 varies fastest — index 1 moves axis 0, index
        // `resolution` moves axis 1.
        let order = [0usize, 1];
        let mut p = vec![0.0; 2];
        point_at(0, 10, 0.0, 0.1, &order, &mut p);
        assert!((p[0] - 0.05).abs() < 1e-12 && (p[1] - 0.05).abs() < 1e-12);
        point_at(1, 10, 0.0, 0.1, &order, &mut p);
        assert!((p[0] - 0.15).abs() < 1e-12 && (p[1] - 0.05).abs() < 1e-12);
        point_at(10, 10, 0.0, 0.1, &order, &mut p);
        assert!((p[0] - 0.05).abs() < 1e-12 && (p[1] - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn oversized_grid_panics() {
        let _ = grid_search(|| FnObjective::new(6, |_: &[f64]| 0.0), 6, 0.0, 1.0, 100);
    }
}
