//! The Broyden–Fletcher–Goldfarb–Shanno quasi-Newton minimizer.
//!
//! BFGS is the local optimizer used throughout the paper: it drives the random
//! local-minima exploration of Lotshaw et al. (Listing 3), the basin-hopping polish of
//! the iterative angle finder, and the gradient-method comparison of Figure 5.  This is
//! a dense-inverse-Hessian implementation — the angle space has dimension `2p ≤ ~40`, so
//! the `O(d²)` update is negligible next to a single statevector simulation.

use crate::linesearch::{backtracking_line_search, LineSearchOptions};
use crate::objective::{Objective, OptimizeResult};

/// Options controlling the BFGS run.
#[derive(Clone, Copy, Debug)]
pub struct BfgsOptions {
    /// Stop when the gradient's infinity norm drops below this.
    pub gradient_tolerance: f64,
    /// Stop when the objective improvement between iterations drops below this.
    pub value_tolerance: f64,
    /// Maximum number of quasi-Newton iterations.
    pub max_iterations: usize,
    /// Line-search parameters.
    pub line_search: LineSearchOptions,
}

impl Default for BfgsOptions {
    fn default() -> Self {
        BfgsOptions {
            gradient_tolerance: 1e-6,
            value_tolerance: 1e-10,
            max_iterations: 200,
            line_search: LineSearchOptions::default(),
        }
    }
}

/// Minimises `objective` starting from `x0` with BFGS.
pub fn bfgs<O: Objective + ?Sized>(
    objective: &mut O,
    x0: &[f64],
    opts: &BfgsOptions,
) -> OptimizeResult {
    let d = x0.len();
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; d];
    let mut fx = objective.value_and_gradient(&x, &mut grad);
    let mut gradient_evals = 1;
    let mut function_evals = 0;

    // Inverse Hessian approximation, row-major, starts as the identity.
    let mut h_inv = identity(d);
    let mut direction = vec![0.0; d];
    let mut x_new = vec![0.0; d];
    let mut grad_new = vec![0.0; d];
    let mut converged = false;
    let mut iterations = 0;

    if d == 0 {
        return OptimizeResult {
            x,
            value: fx,
            iterations: 0,
            function_evals,
            gradient_evals,
            converged: true,
        };
    }

    for iter in 0..opts.max_iterations {
        iterations = iter + 1;
        if inf_norm(&grad) < opts.gradient_tolerance {
            converged = true;
            break;
        }

        // direction = −H⁻¹·∇f
        matvec(&h_inv, &grad, &mut direction);
        direction.iter_mut().for_each(|v| *v = -*v);
        let mut slope = dot(&grad, &direction);
        if slope >= 0.0 {
            // Numerical breakdown: reset to steepest descent.
            h_inv = identity(d);
            for (di, &gi) in direction.iter_mut().zip(grad.iter()) {
                *di = -gi;
            }
            slope = dot(&grad, &direction);
            if slope >= 0.0 {
                converged = true; // gradient is (numerically) zero
                break;
            }
        }

        let ls = backtracking_line_search(objective, &x, fx, &direction, slope, &opts.line_search);
        function_evals += ls.evals;
        let alpha = ls.alpha;
        for ((xn, &xi), &di) in x_new.iter_mut().zip(x.iter()).zip(direction.iter()) {
            *xn = xi + alpha * di;
        }
        let fx_new = objective.value_and_gradient(&x_new, &mut grad_new);
        gradient_evals += 1;

        let improvement = fx - fx_new;
        // BFGS update with s = x_new − x, y = ∇f_new − ∇f.
        let s: Vec<f64> = x_new.iter().zip(x.iter()).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = grad_new
            .iter()
            .zip(grad.iter())
            .map(|(a, b)| a - b)
            .collect();
        let sy = dot(&s, &y);
        if sy > 1e-12 {
            bfgs_update(&mut h_inv, &s, &y, sy);
        }

        x.copy_from_slice(&x_new);
        grad.copy_from_slice(&grad_new);
        fx = fx_new;

        if improvement.abs() < opts.value_tolerance {
            converged = true;
            break;
        }
    }

    OptimizeResult {
        x,
        value: fx,
        iterations,
        function_evals,
        gradient_evals,
        converged,
    }
}

fn identity(d: usize) -> Vec<f64> {
    let mut m = vec![0.0; d * d];
    for i in 0..d {
        m[i * d + i] = 1.0;
    }
    m
}

fn matvec(m: &[f64], v: &[f64], out: &mut [f64]) {
    let d = v.len();
    for i in 0..d {
        let row = &m[i * d..(i + 1) * d];
        out[i] = dot(row, v);
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Sherman–Morrison style BFGS inverse-Hessian update:
/// `H ← (I − ρ·s·yᵀ)·H·(I − ρ·y·sᵀ) + ρ·s·sᵀ` with `ρ = 1/(sᵀy)`.
fn bfgs_update(h: &mut [f64], s: &[f64], y: &[f64], sy: f64) {
    let d = s.len();
    let rho = 1.0 / sy;
    // t = H·y
    let mut t = vec![0.0; d];
    matvec(h, y, &mut t);
    let yty_h = dot(&t, y); // yᵀ·H·y
                            // H ← H − ρ(s·tᵀ + t·sᵀ) + ρ²·(yᵀHy)·s·sᵀ + ρ·s·sᵀ
    for i in 0..d {
        for j in 0..d {
            h[i * d + j] +=
                -rho * (s[i] * t[j] + t[i] * s[j]) + (rho * rho * yty_h + rho) * s[i] * s[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn minimises_convex_quadratic_exactly() {
        // f(x) = (x0 − 1)² + 10·(x1 + 2)²
        let mut obj = FnObjective::with_gradient(
            2,
            |x: &[f64]| (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 2.0).powi(2),
            |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * (x[0] - 1.0);
                g[1] = 20.0 * (x[1] + 2.0);
                (x[0] - 1.0).powi(2) + 10.0 * (x[1] + 2.0).powi(2)
            },
        );
        let res = bfgs(&mut obj, &[5.0, 5.0], &BfgsOptions::default());
        assert!(res.converged);
        assert!((res.x[0] - 1.0).abs() < 1e-5);
        assert!((res.x[1] + 2.0).abs() < 1e-5);
        assert!(res.value < 1e-9);
    }

    #[test]
    fn minimises_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let mut obj = FnObjective::with_gradient(2, rosen, move |x: &[f64], g: &mut [f64]| {
            g[0] = -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]);
            g[1] = 200.0 * (x[1] - x[0] * x[0]);
            rosen(x)
        });
        let res = bfgs(
            &mut obj,
            &[-1.2, 1.0],
            &BfgsOptions {
                max_iterations: 500,
                ..Default::default()
            },
        );
        assert!(res.value < 1e-7, "Rosenbrock value {}", res.value);
        assert!((res.x[0] - 1.0).abs() < 1e-3);
        assert!((res.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn works_without_analytic_gradient() {
        let mut obj = FnObjective::new(3, |x: &[f64]| x.iter().map(|v| (v - 0.5).powi(2)).sum());
        let res = bfgs(&mut obj, &[2.0, -1.0, 4.0], &BfgsOptions::default());
        for xi in &res.x {
            assert!((xi - 0.5).abs() < 1e-4);
        }
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let mut obj = FnObjective::with_gradient(
            1,
            |x: &[f64]| x[0] * x[0],
            |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * x[0];
                x[0] * x[0]
            },
        );
        let res = bfgs(&mut obj, &[0.0], &BfgsOptions::default());
        assert!(res.converged);
        assert!(res.iterations <= 1);
        assert_eq!(res.value, 0.0);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut obj = FnObjective::new(2, |x: &[f64]| x[0].powi(2) + x[1].powi(2));
        let res = bfgs(
            &mut obj,
            &[100.0, -50.0],
            &BfgsOptions {
                max_iterations: 1,
                gradient_tolerance: 0.0,
                value_tolerance: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn zero_dimensional_problem() {
        let mut obj = FnObjective::new(0, |_: &[f64]| 7.0);
        let res = bfgs(&mut obj, &[], &BfgsOptions::default());
        assert!(res.converged);
        assert_eq!(res.value, 7.0);
    }
}
