//! The Nelder–Mead downhill-simplex minimizer.
//!
//! A derivative-free local optimizer, included for user-defined objectives whose
//! gradients are unavailable or unreliable and as an alternative local searcher inside
//! basin hopping.  Standard reflection/expansion/contraction/shrink rules.

use crate::objective::{Objective, OptimizeResult};

/// Options controlling the Nelder–Mead run.
#[derive(Clone, Copy, Debug)]
pub struct NelderMeadOptions {
    /// Initial simplex edge length.
    pub initial_step: f64,
    /// Stop when the spread of simplex values falls below this.
    pub value_tolerance: f64,
    /// Stop only when, additionally, the simplex diameter falls below this (guards
    /// against premature convergence when vertices straddle a minimum symmetrically).
    pub point_tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            initial_step: 0.5,
            value_tolerance: 1e-10,
            point_tolerance: 1e-7,
            max_iterations: 2000,
        }
    }
}

/// Minimises `objective` from `x0` using the Nelder–Mead simplex algorithm.
pub fn nelder_mead<O: Objective + ?Sized>(
    objective: &mut O,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> OptimizeResult {
    let d = x0.len();
    let mut function_evals = 0;
    if d == 0 {
        let v = objective.value(x0);
        return OptimizeResult {
            x: x0.to_vec(),
            value: v,
            iterations: 0,
            function_evals: 1,
            gradient_evals: 0,
            converged: true,
        };
    }

    // Standard coefficients.
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<Vec<f64>> = vec![x0.to_vec()];
    for i in 0..d {
        let mut v = x0.to_vec();
        v[i] += opts.initial_step;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex
        .iter()
        .map(|v| {
            function_evals += 1;
            objective.value(v)
        })
        .collect();

    let mut iterations = 0;
    let mut converged = false;
    for iter in 0..opts.max_iterations {
        iterations = iter + 1;
        // Order the simplex by value.
        let mut order: Vec<usize> = (0..=d).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let best = order[0];
        let worst = order[d];
        let second_worst = order[d - 1];

        let diameter = simplex
            .iter()
            .flat_map(|a| {
                simplex.iter().map(move |b| {
                    a.iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y).abs())
                        .fold(0.0f64, f64::max)
                })
            })
            .fold(0.0f64, f64::max);
        if (values[worst] - values[best]).abs() < opts.value_tolerance
            && diameter < opts.point_tolerance
        {
            converged = true;
            break;
        }

        // Centroid of all points except the worst.
        let mut centroid = vec![0.0; d];
        for &idx in order.iter().take(d) {
            for (c, &xi) in centroid.iter_mut().zip(simplex[idx].iter()) {
                *c += xi / d as f64;
            }
        }

        // Reflection.
        let reflected: Vec<f64> = centroid
            .iter()
            .zip(simplex[worst].iter())
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let f_reflected = objective.value(&reflected);
        function_evals += 1;

        if f_reflected < values[best] {
            // Expansion.
            let expanded: Vec<f64> = centroid
                .iter()
                .zip(reflected.iter())
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let f_expanded = objective.value(&expanded);
            function_evals += 1;
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if f_reflected < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            // Contraction (towards the better of worst/reflected).
            let (toward, f_toward) = if f_reflected < values[worst] {
                (&reflected, f_reflected)
            } else {
                (&simplex[worst].clone(), values[worst])
            };
            let contracted: Vec<f64> = centroid
                .iter()
                .zip(toward.iter())
                .map(|(c, t)| c + rho * (t - c))
                .collect();
            let f_contracted = objective.value(&contracted);
            function_evals += 1;
            if f_contracted < f_toward {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
            } else {
                // Shrink towards the best vertex.
                let best_point = simplex[best].clone();
                for idx in 0..=d {
                    if idx == best {
                        continue;
                    }
                    for (xi, &bi) in simplex[idx].iter_mut().zip(best_point.iter()) {
                        *xi = bi + sigma * (*xi - bi);
                    }
                    values[idx] = objective.value(&simplex[idx]);
                    function_evals += 1;
                }
            }
        }
    }

    let (best_idx, &best_value) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("simplex is non-empty");
    OptimizeResult {
        x: simplex[best_idx].clone(),
        value: best_value,
        iterations,
        function_evals,
        gradient_evals: 0,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn minimises_quadratic_bowl() {
        let mut obj = FnObjective::new(2, |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2));
        let res = nelder_mead(&mut obj, &[0.0, 0.0], &NelderMeadOptions::default());
        assert!(res.converged);
        assert!((res.x[0] - 3.0).abs() < 1e-4);
        assert!((res.x[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn minimises_rosenbrock_without_gradients() {
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        });
        let res = nelder_mead(
            &mut obj,
            &[-1.2, 1.0],
            &NelderMeadOptions {
                max_iterations: 5000,
                ..Default::default()
            },
        );
        assert!(res.value < 1e-6, "value {}", res.value);
    }

    #[test]
    fn nan_objective_values_do_not_panic_the_simplex_ordering() {
        // Regression for the PR 5 class of bug: ordering simplex vertices with
        // partial_cmp(..).unwrap() panicked the moment an objective went NaN
        // (e.g. 0/0 in a user-defined ratio).  total_cmp sorts NaN after +inf,
        // so NaN vertices are treated as worst and the search still converges
        // to the finite minimum.
        let mut obj = FnObjective::new(2, |x: &[f64]| {
            if x[0] < -2.0 {
                f64::NAN
            } else {
                (x[0] - 1.0).powi(2) + x[1].powi(2)
            }
        });
        let res = nelder_mead(&mut obj, &[-1.8, 0.5], &NelderMeadOptions::default());
        assert!(res.value.is_finite(), "value {}", res.value);
        assert!((res.x[0] - 1.0).abs() < 1e-3, "x {:?}", res.x);

        // Even an everywhere-NaN objective must terminate rather than panic.
        let mut all_nan = FnObjective::new(1, |_: &[f64]| f64::NAN);
        let res = nelder_mead(&mut all_nan, &[0.0], &NelderMeadOptions::default());
        assert!(res.value.is_nan());
    }

    #[test]
    fn handles_one_dimensional_problems() {
        let mut obj = FnObjective::new(1, |x: &[f64]| (x[0] - 0.25).powi(2) + 2.0);
        let res = nelder_mead(&mut obj, &[10.0], &NelderMeadOptions::default());
        assert!((res.x[0] - 0.25).abs() < 1e-4);
        assert!((res.value - 2.0).abs() < 1e-8);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut obj = FnObjective::new(2, |x: &[f64]| x[0].powi(2) + x[1].powi(2));
        let res = nelder_mead(
            &mut obj,
            &[50.0, 50.0],
            &NelderMeadOptions {
                max_iterations: 3,
                value_tolerance: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }

    #[test]
    fn zero_dimensional_problem() {
        let mut obj = FnObjective::new(0, |_: &[f64]| -1.5);
        let res = nelder_mead(&mut obj, &[], &NelderMeadOptions::default());
        assert_eq!(res.value, -1.5);
        assert!(res.converged);
    }
}
