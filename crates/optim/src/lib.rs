//! Classical angle-finding for QAOA (the outer loop of Figure 1).
//!
//! The quantum simulation in `juliqaoa-core` evaluates `⟨β,γ|C|β,γ⟩` (and, through the
//! adjoint method, its gradient) at a point; everything that decides *where* to evaluate
//! lives here:
//!
//! * [`objective`] — the minimisation interface and the [`objective::QaoaObjective`]
//!   adapter that exposes a [`juliqaoa_core::Simulator`] to the optimizers (with either
//!   adjoint or finite-difference gradients — the comparison of Figure 5).
//! * [`bfgs`] / [`linesearch`] — the BFGS quasi-Newton local minimizer used by every
//!   search strategy.
//! * [`neldermead`] — a derivative-free simplex minimizer, for objectives whose gradient
//!   is unavailable.
//! * [`basinhopping`] — the global strategy of Wales & Doye the paper adopts
//!   for its iterative angle finding.
//! * [`random_restart`] — the "random local minima exploration" baseline of Lotshaw et
//!   al. (Listing 3's `find_angles_rand`), with the candidates fanned out across cores.
//! * [`gridsearch`] — brute-force grid evaluation at small `p`, scanned in parallel
//!   index blocks.
//! * [`sampled`] — shot-based objectives ([`sampled::SampledObjective`]): optimize a
//!   CVaR-α / Gibbs / sample-mean estimate over measured bitstrings instead of the
//!   exact expectation, with per-point frozen shot noise so every driver stays
//!   deterministic.
//!
//! The parallelism in this crate lives in the *outer* candidate loops: each worker
//! thread owns a private objective (and simulation workspace) built by a caller
//! `make_objective` factory, and holds a `juliqaoa_linalg::parallel` guard so the tiny
//! inner statevector kernels stay serial instead of fighting the outer fan-out for
//! cores.  Candidate orders and tie-breaks are fixed, so same-seed runs return
//! identical results whether the candidates execute serially or in parallel.
//! * [`median`] — the "median angles" heuristic across instances.
//! * [`iterative`] — the paper's `find_angles`: extrapolate good `(p−1)`-round angles to
//!   seed round `p`, polish with basin-hopping, persist every step ([`persistence`]) and
//!   resume after interruption.

pub mod basinhopping;
pub mod bfgs;
pub mod control;
pub mod gridsearch;
pub mod iterative;
pub mod linesearch;
pub mod median;
pub mod neldermead;
pub mod objective;
pub mod persistence;
pub mod random_restart;
pub mod sampled;

pub use basinhopping::{basinhopping, basinhopping_with_control, BasinHoppingOptions};
pub use bfgs::{bfgs, BfgsOptions};
pub use control::RunControl;
pub use gridsearch::{grid_search, grid_search_ordered, grid_search_with_control, qaoa_axis_order};
pub use iterative::{find_angles, IterativeOptions, IterativeResult};
pub use median::median_angles;
pub use neldermead::{nelder_mead, NelderMeadOptions};
pub use objective::{
    FnObjective, GradientMethod, Objective, OptimizeResult, PrefixCacheHome, QaoaObjective,
};
pub use random_restart::{random_restart, random_restart_with_control, RandomRestartOptions};
pub use sampled::SampledObjective;
