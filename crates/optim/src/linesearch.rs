//! Backtracking line search with Armijo sufficient decrease and a curvature probe.
//!
//! BFGS needs a step length `α` along the search direction `d` satisfying at least the
//! Armijo condition `f(x + αd) ≤ f(x) + c₁·α·∇f·d`; the curvature information needed to
//! keep the quasi-Newton approximation positive definite is handled by the caller
//! (the update is skipped when `sᵀy ≤ 0`), so a simple, robust backtracking search is
//! sufficient and is what we use.

use crate::objective::Objective;

/// Outcome of a line search.
#[derive(Clone, Debug)]
pub struct LineSearchResult {
    /// Accepted step length.
    pub alpha: f64,
    /// Objective value at the accepted point.
    pub value: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
    /// Whether the Armijo condition was met (otherwise the smallest trial step is
    /// returned).
    pub success: bool,
}

/// Parameters of the backtracking search.
#[derive(Clone, Copy, Debug)]
pub struct LineSearchOptions {
    /// Initial trial step.
    pub alpha0: f64,
    /// Armijo sufficient-decrease constant `c₁`.
    pub c1: f64,
    /// Geometric backtracking factor in `(0, 1)`.
    pub shrink: f64,
    /// Maximum number of backtracking steps.
    pub max_steps: usize,
}

impl Default for LineSearchOptions {
    fn default() -> Self {
        LineSearchOptions {
            alpha0: 1.0,
            c1: 1e-4,
            shrink: 0.5,
            max_steps: 40,
        }
    }
}

/// Backtracking line search along direction `d` from point `x` with value `fx` and
/// directional derivative `slope = ∇f·d` (must be negative for a descent direction).
pub fn backtracking_line_search<O: Objective + ?Sized>(
    objective: &mut O,
    x: &[f64],
    fx: f64,
    d: &[f64],
    slope: f64,
    opts: &LineSearchOptions,
) -> LineSearchResult {
    let mut alpha = opts.alpha0;
    let mut evals = 0;
    let mut trial = vec![0.0; x.len()];
    let mut best_alpha = alpha;
    let mut best_value = f64::INFINITY;
    for _ in 0..opts.max_steps {
        for ((t, &xi), &di) in trial.iter_mut().zip(x.iter()).zip(d.iter()) {
            *t = xi + alpha * di;
        }
        let f_trial = objective.value(&trial);
        evals += 1;
        if f_trial < best_value {
            best_value = f_trial;
            best_alpha = alpha;
        }
        if f_trial <= fx + opts.c1 * alpha * slope {
            return LineSearchResult {
                alpha,
                value: f_trial,
                evals,
                success: true,
            };
        }
        alpha *= opts.shrink;
    }
    LineSearchResult {
        alpha: best_alpha,
        value: best_value,
        evals,
        success: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    #[test]
    fn finds_full_step_on_well_scaled_quadratic() {
        // f(x) = ½x², at x = 1 with Newton direction d = −1 the full step α = 1 lands on
        // the minimum and trivially satisfies Armijo.
        let mut obj = FnObjective::new(1, |x: &[f64]| 0.5 * x[0] * x[0]);
        let res = backtracking_line_search(
            &mut obj,
            &[1.0],
            0.5,
            &[-1.0],
            -1.0,
            &LineSearchOptions::default(),
        );
        assert!(res.success);
        assert_eq!(res.alpha, 1.0);
        assert!(res.value.abs() < 1e-12);
    }

    #[test]
    fn backtracks_on_overly_long_steps() {
        // A steep quartic forces several halvings before Armijo holds.
        let mut obj = FnObjective::new(1, |x: &[f64]| x[0].powi(4));
        let fx = 1.0; // f(1)
        let slope = -4.0; // f'(1)·d with d = −1
        let res = backtracking_line_search(
            &mut obj,
            &[1.0],
            fx,
            &[-1.0],
            slope,
            &LineSearchOptions {
                alpha0: 4.0,
                ..Default::default()
            },
        );
        assert!(res.success);
        assert!(res.alpha < 4.0);
        assert!(res.value < fx);
    }

    #[test]
    fn failure_returns_best_trial() {
        // A function that increases in the search direction: Armijo can never hold, so
        // the search reports failure but still returns the least-bad trial point.
        let mut obj = FnObjective::new(1, |x: &[f64]| x[0]);
        let res = backtracking_line_search(
            &mut obj,
            &[0.0],
            0.0,
            &[1.0],
            -1.0, // deliberately wrong slope sign to defeat Armijo
            &LineSearchOptions {
                max_steps: 5,
                ..Default::default()
            },
        );
        assert!(!res.success);
        assert_eq!(res.evals, 5);
        assert!(res.value <= 1.0);
    }
}
