//! Synthetic cost functions.
//!
//! Two roles:
//!
//! 1. **Large-n Grover studies.**  The Grover fast path (§2.4) only needs the *distinct*
//!    objective values and their degeneracies.  For structured synthetic costs those
//!    degeneracies are known analytically, which is how simulations up to `n = 100` are
//!    exercised without enumerating `2¹⁰⁰` states (see DESIGN.md §4).
//! 2. **Threshold phase separators.**  Replacing `C(x)` by the indicator
//!    `C(x) ≥ threshold` turns Grover-mixer QAOA into Grover's search, one of the
//!    non-traditional variations the paper lists.

use crate::cost::CostFunction;
use juliqaoa_combinatorics::binomial;
use serde::{Deserialize, Serialize};

/// The Hamming-ramp cost `C(x) = popcount(x)`.
///
/// Its value distribution over the full space is binomial — `C(n,w)` states take value
/// `w` — so the Grover-compressed simulation can run at any `n` from the analytic table
/// returned by [`HammingRamp::analytic_degeneracies`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HammingRamp {
    n: usize,
}

impl HammingRamp {
    /// Creates the ramp on `n` qubits.
    pub fn new(n: usize) -> Self {
        HammingRamp { n }
    }

    /// The exact `(value, degeneracy)` table over the full `2ⁿ` space, computed from
    /// binomial coefficients rather than enumeration.  Usable up to `n = 64` (value
    /// degeneracies must fit in `u64`).
    pub fn analytic_degeneracies(&self) -> Vec<(f64, u64)> {
        (0..=self.n)
            .map(|w| (w as f64, binomial(self.n, w)))
            .collect()
    }

    /// The exact `(value, degeneracy)` table over the weight-`k` subspace: a single
    /// value `k` with degeneracy `C(n,k)`.
    pub fn analytic_degeneracies_dicke(&self, k: usize) -> Vec<(f64, u64)> {
        vec![(k as f64, binomial(self.n, k))]
    }
}

impl CostFunction for HammingRamp {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn evaluate(&self, state: u64) -> f64 {
        state.count_ones() as f64
    }

    fn name(&self) -> &str {
        "hamming_ramp"
    }
}

/// A "needle" cost: value 1 on a set of marked states, 0 elsewhere.  With the Grover
/// mixer this reproduces Grover's search as a QAOA; the analytic degeneracy table is
/// `{1: #marked, 0: 2ⁿ − #marked}`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MarkedStates {
    n: usize,
    marked: Vec<u64>,
}

impl MarkedStates {
    /// Creates the cost function with the given marked states.
    pub fn new(n: usize, marked: Vec<u64>) -> Self {
        assert!(n <= 63);
        MarkedStates { n, marked }
    }

    /// Analytic `(value, degeneracy)` table over the full space, valid for any `n ≤ 63`.
    pub fn analytic_degeneracies(&self) -> Vec<(f64, u64)> {
        let m = self.marked.len() as u64;
        let total = 1u64 << self.n;
        if m == 0 {
            vec![(0.0, total)]
        } else if m == total {
            vec![(1.0, total)]
        } else {
            vec![(0.0, total - m), (1.0, m)]
        }
    }
}

impl CostFunction for MarkedStates {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn evaluate(&self, state: u64) -> f64 {
        if self.marked.contains(&state) {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "marked_states"
    }
}

/// The threshold phase separator of Golden et al.: `C_t(x) = 1` if the wrapped objective
/// reaches the threshold, else `0`.
pub struct ThresholdCost<C: CostFunction> {
    inner: C,
    threshold: f64,
}

impl<C: CostFunction> ThresholdCost<C> {
    /// Wraps `inner` with a threshold indicator.
    pub fn new(inner: C, threshold: f64) -> Self {
        ThresholdCost { inner, threshold }
    }

    /// The wrapped cost function.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl<C: CostFunction> CostFunction for ThresholdCost<C> {
    fn num_qubits(&self) -> usize {
        self.inner.num_qubits()
    }

    fn evaluate(&self, state: u64) -> f64 {
        if self.inner.evaluate(state) >= self.threshold {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;
    use juliqaoa_graphs::cycle_graph;

    #[test]
    fn hamming_ramp_values() {
        let c = HammingRamp::new(6);
        assert_eq!(c.evaluate(0), 0.0);
        assert_eq!(c.evaluate(0b111111), 6.0);
        assert_eq!(c.evaluate(0b010101), 3.0);
    }

    #[test]
    fn hamming_ramp_analytic_degeneracies_sum_to_2n() {
        for n in [4usize, 8, 20, 40] {
            let c = HammingRamp::new(n);
            let table = c.analytic_degeneracies();
            assert_eq!(table.len(), n + 1);
            let total: u128 = table.iter().map(|&(_, d)| d as u128).sum();
            assert_eq!(total, 1u128 << n);
        }
    }

    #[test]
    fn hamming_ramp_analytic_matches_enumeration() {
        let n = 8;
        let c = HammingRamp::new(n);
        let analytic = c.analytic_degeneracies();
        for (value, deg) in analytic {
            let counted = (0..(1u64 << n)).filter(|&x| c.evaluate(x) == value).count() as u64;
            assert_eq!(counted, deg);
        }
    }

    #[test]
    fn hamming_ramp_dicke_table() {
        let c = HammingRamp::new(10);
        let table = c.analytic_degeneracies_dicke(4);
        assert_eq!(table, vec![(4.0, binomial(10, 4))]);
    }

    #[test]
    fn marked_states_values_and_table() {
        let c = MarkedStates::new(5, vec![3, 17]);
        assert_eq!(c.evaluate(3), 1.0);
        assert_eq!(c.evaluate(17), 1.0);
        assert_eq!(c.evaluate(4), 0.0);
        let table = c.analytic_degeneracies();
        assert_eq!(table, vec![(0.0, 30), (1.0, 2)]);
        let empty = MarkedStates::new(4, vec![]);
        assert_eq!(empty.analytic_degeneracies(), vec![(0.0, 16)]);
    }

    #[test]
    fn threshold_cost_indicator() {
        let mc = MaxCut::new(cycle_graph(6));
        let t = ThresholdCost::new(mc, 5.0);
        // The alternating cut achieves 6 ≥ 5.
        assert_eq!(t.evaluate(0b010101), 1.0);
        // The trivial cut achieves 0 < 5.
        assert_eq!(t.evaluate(0), 0.0);
        assert_eq!(t.threshold(), 5.0);
        assert_eq!(t.num_qubits(), 6);
    }
}
