//! The cost-function interface.
//!
//! Mirroring the Julia package, a problem is "anything that maps a basis state to a
//! scalar".  Basis states are passed as `u64` bitmasks (qubit `i` ↔ bit `i`); the
//! convenience method [`CostFunction::evaluate_bits`] accepts the explicit 0/1 arrays the
//! paper's listings use.  QAOA conventionally *maximizes* the objective; minimization
//! problems simply negate their values (as Listing 3 in the paper describes).

use juliqaoa_combinatorics::bits;

/// A cost function `C(x)` on `n`-qubit computational basis states.
pub trait CostFunction: Sync {
    /// Number of qubits (bits) the cost function is defined on.
    fn num_qubits(&self) -> usize;

    /// The objective value of the basis state given as a bitmask.
    fn evaluate(&self, state: u64) -> f64;

    /// The objective value of a basis state given as a 0/1 array (LSB-first, i.e.
    /// `bits[i]` is qubit `i`).  Default implementation converts and calls
    /// [`CostFunction::evaluate`].
    fn evaluate_bits(&self, bits: &[u8]) -> f64 {
        assert_eq!(bits.len(), self.num_qubits(), "bit array has wrong length");
        self.evaluate(bits::from_bit_array(bits))
    }

    /// A short human-readable name, used in logs and benchmark output.
    fn name(&self) -> &str {
        "cost"
    }
}

/// Wraps a plain closure as a [`CostFunction`] — the "arbitrarily complicated or
/// synthetic optimization functions" escape hatch the paper highlights.
pub struct FnCost<F: Fn(u64) -> f64 + Sync> {
    n: usize,
    name: String,
    f: F,
}

impl<F: Fn(u64) -> f64 + Sync> FnCost<F> {
    /// Wraps `f` as a cost function on `n` qubits.
    pub fn new(n: usize, name: impl Into<String>, f: F) -> Self {
        FnCost {
            n,
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(u64) -> f64 + Sync> CostFunction for FnCost<F> {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn evaluate(&self, state: u64) -> f64 {
        (self.f)(state)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A cost function with every value negated; turns maximization into minimization and
/// vice versa (the "overall minus sign" of Listing 3).
pub struct Negated<C: CostFunction>(pub C);

impl<C: CostFunction> CostFunction for Negated<C> {
    fn num_qubits(&self) -> usize {
        self.0.num_qubits()
    }

    fn evaluate(&self, state: u64) -> f64 {
        -self.0.evaluate(state)
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// A cost function shifted by a constant offset; used to make mixed-sign objectives
/// single-signed as the paper recommends for `find_angles`.
pub struct Offset<C: CostFunction> {
    /// The wrapped cost function.
    pub inner: C,
    /// The constant added to every value.
    pub offset: f64,
}

impl<C: CostFunction> CostFunction for Offset<C> {
    fn num_qubits(&self) -> usize {
        self.inner.num_qubits()
    }

    fn evaluate(&self, state: u64) -> f64 {
        self.inner.evaluate(state) + self.offset
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_cost_wraps_closure() {
        let c = FnCost::new(4, "popcount", |x: u64| x.count_ones() as f64);
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.name(), "popcount");
        assert_eq!(c.evaluate(0b1011), 3.0);
        assert_eq!(c.evaluate_bits(&[1, 1, 0, 1]), 3.0);
    }

    #[test]
    fn negated_flips_sign() {
        let c = Negated(FnCost::new(3, "id", |x: u64| x as f64));
        assert_eq!(c.evaluate(5), -5.0);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    fn offset_shifts_values() {
        let c = Offset {
            inner: FnCost::new(3, "id", |x: u64| x as f64 - 4.0),
            offset: 4.0,
        };
        assert_eq!(c.evaluate(0), 0.0);
        assert_eq!(c.evaluate(7), 7.0);
    }

    #[test]
    #[should_panic]
    fn evaluate_bits_length_mismatch_panics() {
        let c = FnCost::new(4, "id", |x: u64| x as f64);
        let _ = c.evaluate_bits(&[0, 1]);
    }
}
