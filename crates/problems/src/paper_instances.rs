//! Seeded problem instances matching the paper's experimental setups.
//!
//! Every figure uses random `G(n, 0.5)` graphs (and, for Figure 2, a clause-density-6
//! 3-SAT instance); these constructors pin the RNG seed so an instance referenced by
//! `(n, index)` — from a figure binary or a `qaoa-service` job spec — is bit-identical
//! everywhere it is regenerated.  The seed formulas are frozen: both generators derive
//! their streams through `juliqaoa_combinatorics::seeding::derive_stream_seed` (one
//! domain tag per family), and changing that scheme silently invalidates every
//! recorded result and cache entry keyed by instance id.

use crate::sat::KSat;
use juliqaoa_combinatorics::derive_stream_seed;
use juliqaoa_graphs::{erdos_renyi, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stream-family domain tag for the paper's MaxCut `G(n, 0.5)` instances.
const MAXCUT_DOMAIN: u64 = 0xC0FFEE;

/// Stream-family domain tag for the paper's random k-SAT instances.
const SAT_DOMAIN: u64 = 0x5A7;

/// The `G(n, 0.5)` MaxCut instance with a fixed per-index seed, as used throughout the
/// paper's evaluation.
pub fn paper_maxcut_instance(n: usize, instance_index: u64) -> Graph {
    let mut rng =
        StdRng::seed_from_u64(derive_stream_seed(MAXCUT_DOMAIN, n as u64, instance_index));
    erdos_renyi(n, 0.5, &mut rng)
}

/// The clause-density-6 random 3-SAT instance of Figure 2.
pub fn paper_sat_instance(n: usize, instance_index: u64) -> KSat {
    paper_sat_instance_with(n, 3, 6.0, instance_index)
}

/// A seeded random k-SAT instance at an arbitrary clause density (the Figure 2 family
/// generalised, so job specs can sweep width and density).
pub fn paper_sat_instance_with(n: usize, k: usize, density: f64, instance_index: u64) -> KSat {
    let mut rng = StdRng::seed_from_u64(derive_stream_seed(SAT_DOMAIN, n as u64, instance_index));
    KSat::random_with_density(n, k, density, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_match_the_legacy_inline_formulas() {
        // Before the shared helper existed these expressions were inlined here; the
        // instances they generate are frozen, so the helper must agree bit-for-bit.
        #[allow(clippy::precedence)]
        let legacy_maxcut = 0xC0FFEE ^ (3u64.wrapping_mul(0x9E37_79B9)) ^ (10u64) << 32;
        assert_eq!(derive_stream_seed(MAXCUT_DOMAIN, 10, 3), legacy_maxcut);
        #[allow(clippy::precedence)]
        let legacy_sat = 0x5A7 ^ 7u64.wrapping_mul(0x9E37_79B9) ^ (12u64) << 32;
        assert_eq!(derive_stream_seed(SAT_DOMAIN, 12, 7), legacy_sat);
    }

    #[test]
    fn maxcut_instances_are_reproducible_and_distinct() {
        let a = paper_maxcut_instance(10, 0);
        let b = paper_maxcut_instance(10, 0);
        let c = paper_maxcut_instance(10, 1);
        let edges = |g: &Graph| g.edges().iter().map(|e| (e.u, e.v)).collect::<Vec<_>>();
        assert_eq!(edges(&a), edges(&b));
        assert_ne!(edges(&a), edges(&c));
        assert_eq!(a.num_vertices(), 10);
    }

    #[test]
    fn sat_instances_match_the_paper_parameters() {
        let sat = paper_sat_instance(12, 0);
        assert_eq!(sat.num_clauses(), 72);
        for clause in sat.clauses() {
            assert_eq!(clause.len(), 3);
        }
        let again = paper_sat_instance(12, 0);
        assert_eq!(sat.clauses(), again.clauses());
    }

    #[test]
    fn generalised_sat_family_contains_the_figure_2_point() {
        let a = paper_sat_instance(10, 3);
        let b = paper_sat_instance_with(10, 3, 6.0, 3);
        assert_eq!(a.clauses(), b.clauses());
    }
}
