//! Pre-computation of objective-value vectors and degeneracy tables.
//!
//! This is the first box of the paper's Figure 1: evaluate `C(x)` across all feasible
//! states once, store the result, and re-use it in every simulator call and every step of
//! the angle-finding outer loop.  Evaluation is embarrassingly parallel, so all routines
//! fan out over rayon; the degeneracy variants implement the per-worker counting scheme
//! of §2.4 (each worker tallies its chunk into a local map, maps are merged at the end).

use crate::cost::CostFunction;
use juliqaoa_combinatorics::{partition, DickeSubspace};
use rayon::prelude::*;
use std::collections::HashMap;

/// Distinct objective values with their multiplicities, sorted by value.
///
/// This is all the Grover fast path needs to simulate a QAOA regardless of how many
/// states share each value.
#[derive(Clone, Debug, PartialEq)]
pub struct DegeneracyTable {
    /// `(value, number of feasible states with that value)`, sorted by value.
    pub entries: Vec<(f64, u64)>,
}

impl DegeneracyTable {
    /// Builds a table directly from `(value, degeneracy)` pairs (e.g. analytic tables
    /// from [`crate::synthetic`]).  Entries are merged and sorted.
    pub fn from_entries(entries: impl IntoIterator<Item = (f64, u64)>) -> Self {
        let mut map: HashMap<u64, (f64, u64)> = HashMap::new();
        for (v, d) in entries {
            let e = map.entry(v.to_bits()).or_insert((v, 0));
            e.1 += d;
        }
        let mut entries: Vec<(f64, u64)> = map.into_values().collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        DegeneracyTable { entries }
    }

    /// Total number of states accounted for.
    pub fn total_states(&self) -> u64 {
        self.entries.iter().map(|&(_, d)| d).sum()
    }

    /// Number of distinct objective values.
    pub fn num_distinct(&self) -> usize {
        self.entries.len()
    }

    /// Largest objective value in the table.
    pub fn max_value(&self) -> f64 {
        self.entries.last().map(|&(v, _)| v).unwrap_or(f64::NAN)
    }

    /// Smallest objective value in the table.
    pub fn min_value(&self) -> f64 {
        self.entries.first().map(|&(v, _)| v).unwrap_or(f64::NAN)
    }

    /// Mean objective value over all states (the `p = 0` expectation in the uniform
    /// superposition).
    pub fn mean_value(&self) -> f64 {
        let total = self.total_states() as f64;
        self.entries.iter().map(|&(v, d)| v * d as f64).sum::<f64>() / total
    }
}

/// Evaluates `C(x)` for every state of the full `2ⁿ` computational basis, in state order.
///
/// The analogue of `[maxcut(graph, x) for x in states(n)]` from Listing 1, but
/// parallelised.
pub fn precompute_full<C: CostFunction + ?Sized>(cost: &C) -> Vec<f64> {
    let n = cost.num_qubits();
    assert!(n < 64, "full-space precomputation limited to n < 64");
    let size = 1usize << n;
    (0..size)
        .into_par_iter()
        .map(|x| cost.evaluate(x as u64))
        .collect()
}

/// Evaluates `C(x)` for every state of the weight-k Dicke subspace, in subspace index
/// order (the order of [`DickeSubspace::states`]).
///
/// The analogue of `[densest_subgraph(graph, x) for x in dicke_states(n, k)]` from
/// Listing 2.
pub fn precompute_dicke<C: CostFunction + ?Sized>(cost: &C, subspace: &DickeSubspace) -> Vec<f64> {
    assert_eq!(
        subspace.n(),
        cost.num_qubits(),
        "subspace and cost function disagree on qubit count"
    );
    subspace
        .states()
        .par_iter()
        .map(|&x| cost.evaluate(x))
        .collect()
}

/// Tallies one worker's share of states into a local `bits(value) → (value, count)` map
/// — the per-worker counting step of §2.4, shared by both feasible-set shapes.
fn tally_chunk<C: CostFunction + ?Sized>(
    cost: &C,
    states: impl Iterator<Item = u64>,
) -> HashMap<u64, (f64, u64)> {
    let mut local: HashMap<u64, (f64, u64)> = HashMap::new();
    for x in states {
        let v = cost.evaluate(x);
        let e = local.entry(v.to_bits()).or_insert((v, 0));
        e.1 += 1;
    }
    local
}

/// Counts objective-value degeneracies over the full `2ⁿ` space with `workers` parallel
/// chunks (Gosper-style partitioning of the integer range, §2.4).
pub fn degeneracies_full<C: CostFunction + ?Sized>(cost: &C, workers: usize) -> DegeneracyTable {
    let n = cost.num_qubits();
    assert!(n < 64, "full-space degeneracy counting limited to n < 64");
    let chunks = partition::partition_full_space(n, workers.max(1));
    let maps: Vec<HashMap<u64, (f64, u64)>> = chunks
        .into_par_iter()
        .map(|chunk| tally_chunk(cost, chunk.start..chunk.end))
        .collect();
    merge_degeneracy_maps(maps)
}

/// Counts objective-value degeneracies over the weight-k subspace, walking each worker's
/// share with Gosper's hack exactly as §2.4 describes.
pub fn degeneracies_dicke<C: CostFunction + ?Sized>(
    cost: &C,
    n: usize,
    k: usize,
    workers: usize,
) -> DegeneracyTable {
    assert_eq!(n, cost.num_qubits());
    let shares = partition::partition_dicke_space(n, k, workers.max(1));
    let maps: Vec<HashMap<u64, (f64, u64)>> = shares
        .into_par_iter()
        .map(|(start, count)| tally_chunk(cost, partition::dicke_chunk_iter(start, count)))
        .collect();
    merge_degeneracy_maps(maps)
}

fn merge_degeneracy_maps(maps: Vec<HashMap<u64, (f64, u64)>>) -> DegeneracyTable {
    let mut merged: HashMap<u64, (f64, u64)> = HashMap::new();
    for map in maps {
        for (bits, (v, d)) in map {
            let e = merged.entry(bits).or_insert((v, 0));
            e.1 += d;
        }
    }
    let mut entries: Vec<(f64, u64)> = merged.into_values().collect();
    entries.sort_by(|a, b| a.0.total_cmp(&b.0));
    DegeneracyTable { entries }
}

/// Maximum of a pre-computed objective vector; the denominator of approximation ratios.
pub fn max_objective(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum of a pre-computed objective vector.
pub fn min_objective(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;
    use crate::synthetic::HammingRamp;
    use crate::DensestKSubgraph;
    use juliqaoa_graphs::{complete_graph, cycle_graph};

    #[test]
    fn full_precompute_matches_direct_evaluation() {
        let cost = MaxCut::new(cycle_graph(5));
        let values = precompute_full(&cost);
        assert_eq!(values.len(), 32);
        for (x, &v) in values.iter().enumerate() {
            assert_eq!(v, cost.evaluate(x as u64));
        }
    }

    #[test]
    fn dicke_precompute_matches_direct_evaluation() {
        let cost = DensestKSubgraph::new(complete_graph(6), 3);
        let sub = DickeSubspace::new(6, 3);
        let values = precompute_dicke(&cost, &sub);
        assert_eq!(values.len(), 20);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(v, cost.evaluate(sub.state_at(i)));
        }
        // Every 3-subset of K6 induces exactly 3 edges.
        assert!(values.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn degeneracies_full_match_analytic_binomials() {
        let ramp = HammingRamp::new(10);
        let table = degeneracies_full(&ramp, 4);
        let analytic = DegeneracyTable::from_entries(ramp.analytic_degeneracies());
        assert_eq!(table, analytic);
        assert_eq!(table.total_states(), 1 << 10);
        assert_eq!(table.num_distinct(), 11);
    }

    #[test]
    fn degeneracies_independent_of_worker_count() {
        let cost = MaxCut::new(cycle_graph(8));
        let t1 = degeneracies_full(&cost, 1);
        let t8 = degeneracies_full(&cost, 8);
        let t100 = degeneracies_full(&cost, 100);
        assert_eq!(t1, t8);
        assert_eq!(t1, t100);
        assert_eq!(t1.total_states(), 256);
    }

    #[test]
    fn dicke_degeneracies_count_subspace_only() {
        let cost = DensestKSubgraph::new(cycle_graph(6), 3);
        let table = degeneracies_dicke(&cost, 6, 3, 4);
        assert_eq!(table.total_states(), 20);
        // Values must lie between 0 and 3 edges for a cycle.
        assert!(table.min_value() >= 0.0);
        assert!(table.max_value() <= 3.0);
        // Cross-check against the dense precompute.
        let sub = DickeSubspace::new(6, 3);
        let values = precompute_dicke(&cost, &sub);
        let expected = DegeneracyTable::from_entries(values.iter().map(|&v| (v, 1)));
        assert_eq!(table, expected);
    }

    #[test]
    fn degeneracy_table_statistics() {
        let table = DegeneracyTable::from_entries([(1.0, 3), (0.0, 1), (1.0, 2), (2.0, 2)]);
        assert_eq!(table.entries, vec![(0.0, 1), (1.0, 5), (2.0, 2)]);
        assert_eq!(table.total_states(), 8);
        assert_eq!(table.num_distinct(), 3);
        assert_eq!(table.max_value(), 2.0);
        assert_eq!(table.min_value(), 0.0);
        assert!((table.mean_value() - 9.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn objective_extrema_helpers() {
        let values = vec![1.0, -3.0, 2.5, 0.0];
        assert_eq!(max_objective(&values), 2.5);
        assert_eq!(min_objective(&values), -3.0);
    }
}
