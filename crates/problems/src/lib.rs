//! Combinatorial optimization cost functions for QAOA.
//!
//! JuliQAOA's interface for problems is deliberately minimal: a cost function takes some
//! structure (a graph, a set of clauses, …) plus a computational basis state and returns
//! a scalar objective value; the simulator only ever sees the vector of objective values
//! pre-computed over the feasible states.  This crate supplies that interface
//! ([`cost::CostFunction`]), the problems used throughout the paper's evaluation
//! (MaxCut, k-SAT, Densest-k-Subgraph, Max-k-Vertex-Cover) plus several extras, and the
//! rayon-parallel pre-computation routines ([`precompute`]) that produce objective-value
//! vectors and the distinct-value/degeneracy tables used by the Grover fast path.

pub mod cost;
pub mod densest_subgraph;
pub mod independent_set;
pub mod instance_id;
pub mod maxcut;
pub mod paper_instances;
pub mod partition_problem;
pub mod phase_classes;
pub mod precompute;
pub mod sat;
pub mod synthetic;
pub mod vertex_cover;

pub use cost::{CostFunction, FnCost};
pub use densest_subgraph::DensestKSubgraph;
pub use independent_set::MaxIndependentSet;
pub use instance_id::{Fnv64, InstanceId};
pub use maxcut::MaxCut;
pub use paper_instances::{paper_maxcut_instance, paper_sat_instance, paper_sat_instance_with};
pub use partition_problem::NumberPartitioning;
pub use phase_classes::{phase_classes, PhaseClasses};
pub use precompute::{
    degeneracies_dicke, degeneracies_full, precompute_dicke, precompute_full, DegeneracyTable,
};
pub use sat::{KSat, Literal};
pub use synthetic::{HammingRamp, MarkedStates, ThresholdCost};
pub use vertex_cover::MaxKVertexCover;
