//! Max k-Vertex Cover.
//!
//! Choose exactly `k` vertices maximizing the number of edges covered (touched by at
//! least one chosen vertex).  Like Densest-k-Subgraph this is Hamming-weight constrained;
//! the paper pairs it with the Ring mixer in Figure 2.

use crate::cost::CostFunction;
use juliqaoa_graphs::Graph;
use serde::{Deserialize, Serialize};

/// The Max k-Vertex-Cover cost function: total weight of edges covered by the selected
/// vertex subset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MaxKVertexCover {
    graph: Graph,
    k: usize,
}

impl MaxKVertexCover {
    /// Creates the cost function.
    ///
    /// # Panics
    /// Panics if `k` exceeds the number of vertices.
    pub fn new(graph: Graph, k: usize) -> Self {
        assert!(
            k <= graph.num_vertices(),
            "subset size exceeds vertex count"
        );
        MaxKVertexCover { graph, k }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The subset size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether a basis state is feasible (Hamming weight exactly `k`).
    pub fn is_feasible(&self, state: u64) -> bool {
        state.count_ones() as usize == self.k
    }

    /// Brute-force optimum over the feasible (weight-k) states.
    pub fn optimal_value(&self) -> f64 {
        let n = self.graph.num_vertices();
        assert!(n <= 30, "brute-force optimum limited to n ≤ 30");
        juliqaoa_combinatorics::GosperIter::new(n, self.k)
            .map(|x| self.evaluate(x))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl CostFunction for MaxKVertexCover {
    fn num_qubits(&self) -> usize {
        self.graph.num_vertices()
    }

    fn evaluate(&self, state: u64) -> f64 {
        juliqaoa_graphs::analysis::edges_covered_by_subset(&self.graph, state)
    }

    fn name(&self) -> &str {
        "max_k_vertex_cover"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::{star_graph, Graph};

    #[test]
    fn star_center_covers_everything() {
        let c = MaxKVertexCover::new(star_graph(6), 1);
        assert_eq!(c.evaluate(0b000001), 5.0); // the hub
        assert_eq!(c.evaluate(0b000010), 1.0); // a leaf
        assert_eq!(c.optimal_value(), 5.0);
    }

    #[test]
    fn square_two_cover() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let c = MaxKVertexCover::new(g, 2);
        // Opposite corners cover all four edges.
        assert_eq!(c.evaluate(0b0101), 4.0);
        // Adjacent corners cover three.
        assert_eq!(c.evaluate(0b0011), 3.0);
        assert_eq!(c.optimal_value(), 4.0);
    }

    #[test]
    fn feasibility_and_metadata() {
        let c = MaxKVertexCover::new(star_graph(5), 2);
        assert!(c.is_feasible(0b00011));
        assert!(!c.is_feasible(0b00111));
        assert_eq!(c.k(), 2);
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.name(), "max_k_vertex_cover");
    }

    #[test]
    fn covering_nothing_scores_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let c = MaxKVertexCover::new(g, 0);
        assert_eq!(c.evaluate(0), 0.0);
        assert_eq!(c.optimal_value(), 0.0);
    }

    #[test]
    #[should_panic]
    fn k_too_large_panics() {
        let _ = MaxKVertexCover::new(star_graph(3), 4);
    }
}
