//! Maximum Independent Set (penalty formulation).
//!
//! An example of how traditional circuit-based QAOA handles constraints: infeasible
//! states are allowed but penalised in the cost function.  Included both as an extra
//! problem and to contrast with the subspace-restricted approach the paper advocates
//! (compare with [`crate::DensestKSubgraph`], which never leaves the feasible set).

use crate::cost::CostFunction;
use juliqaoa_graphs::Graph;
use serde::{Deserialize, Serialize};

/// MIS objective `|S| − penalty·(edges inside S)`.
///
/// With `penalty > 1` every maximizer of the objective is an independent set, so the
/// penalty formulation and the exact problem agree on their optima.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MaxIndependentSet {
    graph: Graph,
    penalty: f64,
}

impl MaxIndependentSet {
    /// Creates the penalised MIS cost function.  A `penalty` of at least 1 guarantees
    /// that removing a conflicting vertex never decreases the objective.
    pub fn new(graph: Graph, penalty: f64) -> Self {
        assert!(penalty > 0.0, "penalty must be positive");
        MaxIndependentSet { graph, penalty }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Whether the selected set is a genuine independent set.
    pub fn is_independent(&self, state: u64) -> bool {
        juliqaoa_graphs::analysis::edges_within_subset(&self.graph, state) == 0.0
    }

    /// Brute-force size of the maximum independent set.
    pub fn optimal_value(&self) -> f64 {
        let n = self.graph.num_vertices();
        assert!(n <= 30, "brute-force optimum limited to n ≤ 30");
        (0..(1u64 << n))
            .filter(|&x| self.is_independent(x))
            .map(|x| x.count_ones() as f64)
            .fold(0.0, f64::max)
    }
}

impl CostFunction for MaxIndependentSet {
    fn num_qubits(&self) -> usize {
        self.graph.num_vertices()
    }

    fn evaluate(&self, state: u64) -> f64 {
        let size = state.count_ones() as f64;
        let conflicts = juliqaoa_graphs::analysis::edges_within_subset(&self.graph, state);
        size - self.penalty * conflicts
    }

    fn name(&self) -> &str {
        "max_independent_set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::{complete_graph, cycle_graph, Graph};

    #[test]
    fn independent_sets_score_their_size() {
        let c = MaxIndependentSet::new(cycle_graph(6), 2.0);
        assert_eq!(c.evaluate(0b010101), 3.0);
        assert!(c.is_independent(0b010101));
        assert_eq!(c.evaluate(0b000101), 2.0);
    }

    #[test]
    fn conflicts_are_penalised() {
        let c = MaxIndependentSet::new(complete_graph(4), 2.0);
        // Two adjacent vertices: size 2, one conflict.
        assert_eq!(c.evaluate(0b0011), 2.0 - 2.0);
        // All four vertices of K4: size 4, six conflicts.
        assert_eq!(c.evaluate(0b1111), 4.0 - 12.0);
    }

    #[test]
    fn optimum_of_cycle() {
        let c = MaxIndependentSet::new(cycle_graph(5), 1.5);
        assert_eq!(c.optimal_value(), 2.0);
        let c6 = MaxIndependentSet::new(cycle_graph(6), 1.5);
        assert_eq!(c6.optimal_value(), 3.0);
    }

    #[test]
    fn penalised_optimum_matches_exact_optimum_when_penalty_large() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let c = MaxIndependentSet::new(g, 3.0);
        let exact = c.optimal_value();
        let penalised = (0..(1u64 << 6))
            .map(|x| c.evaluate(x))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(exact, penalised);
    }

    #[test]
    #[should_panic]
    fn zero_penalty_panics() {
        let _ = MaxIndependentSet::new(cycle_graph(4), 0.0);
    }
}
