//! Densest k-Subgraph.
//!
//! Choose exactly `k` vertices maximizing the number of induced edges.  This is a
//! Hamming-weight-constrained problem: the feasible states are the weight-`k` bitmasks
//! (Dicke subspace), and the paper pairs it with the Clique mixer in Figure 2.

use crate::cost::CostFunction;
use juliqaoa_graphs::Graph;
use serde::{Deserialize, Serialize};

/// The Densest k-Subgraph cost function: number (total weight) of edges with both
/// endpoints selected.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DensestKSubgraph {
    graph: Graph,
    k: usize,
}

impl DensestKSubgraph {
    /// Creates the cost function.  `k` is recorded so feasibility can be checked and the
    /// optimum brute-forced over the right subspace.
    ///
    /// # Panics
    /// Panics if `k` exceeds the number of vertices.
    pub fn new(graph: Graph, k: usize) -> Self {
        assert!(
            k <= graph.num_vertices(),
            "subset size exceeds vertex count"
        );
        DensestKSubgraph { graph, k }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The subset size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether a basis state is feasible (has Hamming weight exactly `k`).
    pub fn is_feasible(&self, state: u64) -> bool {
        state.count_ones() as usize == self.k
    }

    /// Brute-force optimum over the feasible (weight-k) states.
    pub fn optimal_value(&self) -> f64 {
        let n = self.graph.num_vertices();
        assert!(n <= 30, "brute-force optimum limited to n ≤ 30");
        juliqaoa_combinatorics::GosperIter::new(n, self.k)
            .map(|x| self.evaluate(x))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl CostFunction for DensestKSubgraph {
    fn num_qubits(&self) -> usize {
        self.graph.num_vertices()
    }

    fn evaluate(&self, state: u64) -> f64 {
        juliqaoa_graphs::analysis::edges_within_subset(&self.graph, state)
    }

    fn name(&self) -> &str {
        "densest_k_subgraph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::{complete_graph, Graph};

    #[test]
    fn complete_graph_density() {
        let c = DensestKSubgraph::new(complete_graph(6), 3);
        // Any 3 vertices of K6 induce a triangle.
        assert_eq!(c.evaluate(0b000111), 3.0);
        assert_eq!(c.evaluate(0b101010), 3.0);
        assert_eq!(c.optimal_value(), 3.0);
    }

    #[test]
    fn planted_dense_subgraph_is_found() {
        // Graph: triangle {0,1,2} plus pendant edges 3-4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let c = DensestKSubgraph::new(g, 3);
        assert_eq!(c.optimal_value(), 3.0);
        assert_eq!(c.evaluate(0b00111), 3.0);
        assert_eq!(c.evaluate(0b11001), 1.0);
    }

    #[test]
    fn feasibility_check() {
        let c = DensestKSubgraph::new(complete_graph(4), 2);
        assert!(c.is_feasible(0b0011));
        assert!(!c.is_feasible(0b0111));
        assert!(!c.is_feasible(0b0000));
        assert_eq!(c.k(), 2);
    }

    #[test]
    fn evaluate_counts_only_induced_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = DensestKSubgraph::new(g, 2);
        assert_eq!(c.evaluate(0b0011), 1.0); // edge (0,1) inside
        assert_eq!(c.evaluate(0b1001), 0.0); // 0 and 3 not adjacent
        assert_eq!(c.name(), "densest_k_subgraph");
    }

    #[test]
    #[should_panic]
    fn k_too_large_panics() {
        let _ = DensestKSubgraph::new(complete_graph(3), 4);
    }
}
