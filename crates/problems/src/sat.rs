//! k-SAT / Max-k-SAT.
//!
//! A clause is a disjunction of `k` literals; the Max-k-SAT objective counts satisfied
//! clauses.  The paper's Figure 2 uses a random 3-SAT instance with clause density 6
//! (i.e. `6·n` clauses) paired with the Grover mixer.

use crate::cost::CostFunction;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single literal: variable index plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Literal {
    /// Variable (qubit) index.
    pub var: usize,
    /// `true` if the literal is negated (satisfied when the variable is 0).
    pub negated: bool,
}

impl Literal {
    /// A positive literal on `var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            negated: false,
        }
    }

    /// A negated literal on `var`.
    pub fn neg(var: usize) -> Self {
        Literal { var, negated: true }
    }

    /// Whether the literal is satisfied by the assignment.
    #[inline]
    pub fn satisfied(&self, state: u64) -> bool {
        let bit = (state >> self.var) & 1 == 1;
        bit != self.negated
    }
}

/// A Max-k-SAT instance: maximize the number of satisfied clauses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KSat {
    n: usize,
    clauses: Vec<Vec<Literal>>,
}

impl KSat {
    /// Builds an instance from explicit clauses.
    ///
    /// # Panics
    /// Panics if any literal references a variable `≥ n` or a clause is empty.
    pub fn new(n: usize, clauses: Vec<Vec<Literal>>) -> Self {
        for clause in &clauses {
            assert!(!clause.is_empty(), "empty clause");
            for lit in clause {
                assert!(lit.var < n, "literal variable {} out of range", lit.var);
            }
        }
        KSat { n, clauses }
    }

    /// Generates a random k-SAT instance with `num_clauses` clauses.  Each clause picks
    /// `k` distinct variables uniformly and negates each independently with
    /// probability ½.
    pub fn random<R: Rng + ?Sized>(n: usize, k: usize, num_clauses: usize, rng: &mut R) -> Self {
        assert!(k <= n, "clause width k={k} exceeds variable count n={n}");
        let vars: Vec<usize> = (0..n).collect();
        let clauses = (0..num_clauses)
            .map(|_| {
                let chosen: Vec<usize> = vars.choose_multiple(rng, k).copied().collect();
                chosen
                    .into_iter()
                    .map(|var| Literal {
                        var,
                        negated: rng.gen::<bool>(),
                    })
                    .collect()
            })
            .collect();
        KSat { n, clauses }
    }

    /// Generates a random k-SAT instance at a given clause density (`⌊density·n⌋`
    /// clauses), the parameterisation used in the paper's Figure 2.
    pub fn random_with_density<R: Rng + ?Sized>(
        n: usize,
        k: usize,
        density: f64,
        rng: &mut R,
    ) -> Self {
        let num_clauses = (density * n as f64).floor() as usize;
        Self::random(n, k, num_clauses, rng)
    }

    /// The clauses of the instance.
    pub fn clauses(&self) -> &[Vec<Literal>] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of clauses satisfied by the assignment (the objective value).
    pub fn satisfied_count(&self, state: u64) -> usize {
        self.clauses
            .iter()
            .filter(|clause| clause.iter().any(|lit| lit.satisfied(state)))
            .count()
    }

    /// Brute-force maximum number of simultaneously satisfiable clauses.
    pub fn optimal_value(&self) -> f64 {
        assert!(self.n <= 30, "brute-force optimum limited to n ≤ 30");
        (0..(1u64 << self.n))
            .map(|x| self.satisfied_count(x))
            .max()
            .unwrap_or(0) as f64
    }
}

impl CostFunction for KSat {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn evaluate(&self, state: u64) -> f64 {
        self.satisfied_count(state) as f64
    }

    fn name(&self) -> &str {
        "ksat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn literal_satisfaction() {
        assert!(Literal::pos(0).satisfied(0b1));
        assert!(!Literal::pos(0).satisfied(0b0));
        assert!(Literal::neg(0).satisfied(0b0));
        assert!(!Literal::neg(0).satisfied(0b1));
        assert!(Literal::pos(3).satisfied(0b1000));
    }

    #[test]
    fn single_clause_counting() {
        // (x0 ∨ ¬x1)
        let sat = KSat::new(2, vec![vec![Literal::pos(0), Literal::neg(1)]]);
        assert_eq!(sat.evaluate(0b00), 1.0);
        assert_eq!(sat.evaluate(0b01), 1.0);
        assert_eq!(sat.evaluate(0b10), 0.0);
        assert_eq!(sat.evaluate(0b11), 1.0);
    }

    #[test]
    fn contradictory_clauses_cannot_all_be_satisfied() {
        // (x0) ∧ (¬x0): at most one clause satisfiable.
        let sat = KSat::new(1, vec![vec![Literal::pos(0)], vec![Literal::neg(0)]]);
        assert_eq!(sat.optimal_value(), 1.0);
    }

    #[test]
    fn random_instance_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let sat = KSat::random(10, 3, 25, &mut rng);
        assert_eq!(sat.num_clauses(), 25);
        assert_eq!(sat.num_qubits(), 10);
        for clause in sat.clauses() {
            assert_eq!(clause.len(), 3);
            // Variables within a clause are distinct.
            let mut vars: Vec<usize> = clause.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn density_parameterisation() {
        let mut rng = StdRng::seed_from_u64(9);
        let sat = KSat::random_with_density(12, 3, 6.0, &mut rng);
        assert_eq!(sat.num_clauses(), 72);
    }

    #[test]
    fn objective_bounded_by_clause_count() {
        let mut rng = StdRng::seed_from_u64(17);
        let sat = KSat::random(8, 3, 40, &mut rng);
        for x in 0..(1u64 << 8) {
            let v = sat.evaluate(x);
            assert!((0.0..=40.0).contains(&v));
        }
        assert!(sat.optimal_value() <= 40.0);
    }

    #[test]
    fn reproducible_from_seed() {
        let a = KSat::random(8, 3, 10, &mut StdRng::seed_from_u64(3));
        let b = KSat::random(8, 3, 10, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.clauses(), b.clauses());
    }

    #[test]
    #[should_panic]
    fn out_of_range_literal_panics() {
        let _ = KSat::new(2, vec![vec![Literal::pos(2)]]);
    }
}
