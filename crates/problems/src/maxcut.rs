//! The MaxCut problem.
//!
//! `C(x)` is the total weight of edges whose endpoints receive different labels in the
//! bipartition encoded by `x`.  MaxCut is the canonical unconstrained QAOA benchmark and
//! drives Figures 2, 3, 4 and 5 of the paper.

use crate::cost::CostFunction;
use juliqaoa_graphs::Graph;
use serde::{Deserialize, Serialize};

/// MaxCut on a (possibly weighted) graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MaxCut {
    graph: Graph,
}

impl MaxCut {
    /// Creates the MaxCut cost function for a graph.
    pub fn new(graph: Graph) -> Self {
        MaxCut { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The best possible cut value, found by brute force.  Intended for the modest
    /// instance sizes used when reporting approximation ratios.
    pub fn optimal_value(&self) -> f64 {
        let n = self.graph.num_vertices();
        assert!(n <= 30, "brute-force optimum limited to n ≤ 30");
        // The cut is symmetric under complementing the mask, so scanning half the space
        // would suffice; the full scan keeps the code obvious.
        (0..(1u64 << n))
            .map(|x| self.evaluate(x))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl CostFunction for MaxCut {
    fn num_qubits(&self) -> usize {
        self.graph.num_vertices()
    }

    fn evaluate(&self, state: u64) -> f64 {
        juliqaoa_graphs::analysis::cut_weight(&self.graph, state)
    }

    fn name(&self) -> &str {
        "maxcut"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::{complete_graph, cycle_graph, Graph};

    #[test]
    fn triangle_cut_values() {
        let c = MaxCut::new(complete_graph(3));
        // No triangle bipartition can cut all 3 edges.
        assert_eq!(c.evaluate(0b000), 0.0);
        assert_eq!(c.evaluate(0b001), 2.0);
        assert_eq!(c.evaluate(0b011), 2.0);
        assert_eq!(c.evaluate(0b111), 0.0);
        assert_eq!(c.optimal_value(), 2.0);
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let c = MaxCut::new(cycle_graph(6));
        // Alternating assignment cuts every edge.
        assert_eq!(c.evaluate(0b010101), 6.0);
        assert_eq!(c.optimal_value(), 6.0);
    }

    #[test]
    fn odd_cycle_optimum_misses_one_edge() {
        let c = MaxCut::new(cycle_graph(5));
        assert_eq!(c.optimal_value(), 4.0);
    }

    #[test]
    fn complement_symmetry() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let c = MaxCut::new(g);
        let full_mask = (1u64 << 5) - 1;
        for x in 0..(1u64 << 5) {
            assert_eq!(c.evaluate(x), c.evaluate(!x & full_mask));
        }
    }

    #[test]
    fn weighted_cut_values() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 1.5), (1, 2, 2.5)]);
        let c = MaxCut::new(g);
        assert!((c.evaluate(0b010) - 4.0).abs() < 1e-12);
        assert!((c.evaluate(0b001) - 1.5).abs() < 1e-12);
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.name(), "maxcut");
    }

    #[test]
    fn bits_interface_matches_mask_interface() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let c = MaxCut::new(g);
        assert_eq!(c.evaluate_bits(&[1, 0, 1, 0]), c.evaluate(0b0101));
    }
}
