//! Stable identity hashing for problem instances.
//!
//! The job-service layer caches pre-computed objective vectors and their phase-class
//! compression across jobs; the cache key must be a *canonical* fingerprint of the
//! problem instance, stable across processes and unaffected by JSON field order or
//! float formatting.  [`InstanceId`] is that fingerprint: a 64-bit FNV-1a hash of the
//! instance's serde tree, prefixed with the problem kind so a MaxCut graph and a
//! Densest-k-Subgraph over the same graph never collide.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A streaming 64-bit FNV-1a hasher.
///
/// FNV-1a is used instead of `std::hash::DefaultHasher` because its output is pinned
/// by the algorithm, not by the standard library version — identifiers written into
/// result files must stay comparable across builds.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv64 {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a `u64` as eight little-endian bytes.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern (so `-0.0` and `0.0` hash differently, matching
    /// the exact-bit-pattern classing of [`crate::PhaseClasses`]).
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Feeds a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// A canonical 64-bit fingerprint of a problem instance.
///
/// Displayed (and serialised) as 16 lowercase hex digits, the form used in result
/// files and cache logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(u64);

impl InstanceId {
    /// Wraps a raw hash value.
    pub fn from_raw(raw: u64) -> Self {
        InstanceId(raw)
    }

    /// The raw hash value.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Fingerprints a serialisable instance, namespaced by its problem kind.
    ///
    /// Two instances receive the same id exactly when they have the same kind string
    /// and structurally identical serde trees — the same notion of identity their
    /// JSON round-trip uses.
    pub fn of<T: Serialize + ?Sized>(kind: &str, instance: &T) -> Self {
        let mut h = Fnv64::new();
        h.write_str(kind);
        hash_value(&mut h, &instance.to_value());
        InstanceId(h.finish())
    }

    /// Parses the 16-hex-digit `Display` form.
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(InstanceId)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Serialize for InstanceId {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for InstanceId {
    fn from_value(v: &Value) -> Result<Self, String> {
        let s = v
            .as_str()
            .ok_or_else(|| format!("expected 16-hex-digit instance id, found {v:?}"))?;
        InstanceId::parse(s).ok_or_else(|| format!("invalid instance id {s:?}"))
    }
}

/// Feeds a serde tree into the hasher with a type tag per node, so e.g. the number `1`
/// and the string `"1"` — or an empty array and an empty object — cannot collide.
fn hash_value(h: &mut Fnv64, v: &Value) {
    match v {
        Value::Null => h.write(&[0]),
        Value::Bool(b) => {
            h.write(&[1]);
            h.write(&[*b as u8]);
        }
        // All three numeric variants hash through their f64 widening when lossless, so
        // a round-trip through JSON (which may turn `UInt(3)` into `Num(3.0)` and back)
        // cannot change the fingerprint.
        Value::UInt(x) => {
            h.write(&[2]);
            h.write_f64(*x as f64);
        }
        Value::Int(x) => {
            h.write(&[2]);
            h.write_f64(*x as f64);
        }
        Value::Num(x) => {
            h.write(&[2]);
            h.write_f64(*x);
        }
        Value::Str(s) => {
            h.write(&[3]);
            h.write_str(s);
        }
        Value::Array(items) => {
            h.write(&[4]);
            h.write_u64(items.len() as u64);
            for item in items {
                hash_value(h, item);
            }
        }
        Value::Object(fields) => {
            // Field order is canonicalised by sorting keys, so hand-written JSON with
            // re-ordered fields fingerprints identically to the serialiser's output.
            h.write(&[5]);
            h.write_u64(fields.len() as u64);
            let mut sorted: Vec<&(String, Value)> = fields.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (k, val) in sorted {
                h.write_str(k);
                hash_value(h, val);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;
    use crate::{DensestKSubgraph, KSat, Literal};
    use juliqaoa_graphs::{cycle_graph, Graph};

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn display_is_16_hex_digits_and_parses_back() {
        let id = InstanceId::from_raw(0x1234);
        assert_eq!(id.to_string(), "0000000000001234");
        assert_eq!(InstanceId::parse(&id.to_string()), Some(id));
        assert_eq!(InstanceId::parse("xyz"), None);
        assert_eq!(InstanceId::parse("123"), None);
    }

    #[test]
    fn identical_instances_share_an_id() {
        let a = MaxCut::new(cycle_graph(6));
        let b = MaxCut::new(cycle_graph(6));
        assert_eq!(InstanceId::of("maxcut", &a), InstanceId::of("maxcut", &b));
    }

    #[test]
    fn different_instances_and_kinds_get_different_ids() {
        let a = MaxCut::new(cycle_graph(6));
        let b = MaxCut::new(cycle_graph(7));
        assert_ne!(InstanceId::of("maxcut", &a), InstanceId::of("maxcut", &b));
        // Same graph, different problem kind.
        let d = DensestKSubgraph::new(cycle_graph(6), 3);
        assert_ne!(InstanceId::of("maxcut", &a), InstanceId::of("dks", &d));
    }

    #[test]
    fn id_survives_json_round_trip_of_the_instance() {
        let sat = KSat::new(
            3,
            vec![
                vec![Literal::pos(0), Literal::neg(1)],
                vec![Literal::pos(2)],
            ],
        );
        let id = InstanceId::of("ksat", &sat);
        let json = serde_json::to_string(&sat).unwrap();
        let back: KSat = serde_json::from_str(&json).unwrap();
        assert_eq!(InstanceId::of("ksat", &back), id);
    }

    #[test]
    fn object_field_order_does_not_matter() {
        let a = Value::Object(vec![
            ("x".into(), Value::UInt(1)),
            ("y".into(), Value::UInt(2)),
        ]);
        let b = Value::Object(vec![
            ("y".into(), Value::UInt(2)),
            ("x".into(), Value::UInt(1)),
        ]);
        let mut ha = Fnv64::new();
        hash_value(&mut ha, &a);
        let mut hb = Fnv64::new();
        hash_value(&mut hb, &b);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn numeric_widening_is_round_trip_stable() {
        // UInt(3) and Num(3.0) must fingerprint identically: the JSON parser may
        // return either depending on how the number was written.
        let mut ha = Fnv64::new();
        hash_value(&mut ha, &Value::UInt(3));
        let mut hb = Fnv64::new();
        hash_value(&mut hb, &Value::Num(3.0));
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn id_serialises_as_hex_string() {
        let id = InstanceId::of("maxcut", &MaxCut::new(Graph::from_edges(3, &[(0, 1)])));
        let json = serde_json::to_string(&id).unwrap();
        let back: InstanceId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
        assert!(json.starts_with('"') && json.ends_with('"'));
    }
}
