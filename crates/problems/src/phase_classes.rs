//! Phase-class compression of objective-value vectors.
//!
//! MaxCut, k-SAT, Densest-k-Subgraph and the other objectives of the paper take only
//! `O(m)` distinct values over the `2ⁿ` (or `C(n,k)`) feasible states — the same
//! degeneracy structure [`crate::DegeneracyTable`] exploits for the Grover fast path.
//! [`PhaseClasses`] stores that structure in simulation order: the list of distinct
//! values plus, for every state, the index of its value class.  The phase separator
//! `e^{-iγ H_C}` then needs one `cis` per *distinct* value per round (into a small
//! table) followed by a gather-multiply sweep, instead of a sine/cosine pair per
//! amplitude — see `juliqaoa_linalg::vector::apply_phases_indexed`.
//!
//! Compression is only attempted up to [`PhaseClasses::MAX_CLASSES`] distinct values;
//! objectives that are effectively injective (e.g. continuous random weights) fall
//! back to the dense kernel, which the simulator keeps for exactly this case.

use std::collections::HashMap;

/// Objective values compressed into `(distinct values, per-state class index)`.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseClasses {
    distinct: Vec<f64>,
    class_idx: Vec<u16>,
}

impl PhaseClasses {
    /// Hard cap on the number of distinct values worth compressing.
    ///
    /// Beyond this the per-round table stops fitting in fast cache and the dense
    /// kernel's streaming trigonometry is no slower, so [`PhaseClasses::build`]
    /// reports the objective as non-compressible instead.
    pub const MAX_CLASSES: usize = 1 << 16;

    /// Compresses an objective-value vector, preserving order.
    ///
    /// Returns `None` when the values are not worth compressing: more than
    /// [`Self::MAX_CLASSES`] distinct values, or more distinct values than half the
    /// states (the table stops paying for the extra indirection).  Values are classed
    /// by exact bit pattern, so `-0.0` and `0.0` form distinct classes and every NaN
    /// bit pattern its own class — both still multiply amplitudes by exactly the same
    /// factor the dense kernel would.
    pub fn build(obj_vals: &[f64]) -> Option<Self> {
        if obj_vals.is_empty() {
            return None;
        }
        let cap = Self::MAX_CLASSES.min((obj_vals.len() / 2).max(1));
        let mut first_index: HashMap<u64, u16> = HashMap::new();
        let mut distinct: Vec<f64> = Vec::new();
        let mut class_idx: Vec<u16> = Vec::with_capacity(obj_vals.len());
        for &v in obj_vals {
            // `cap <= MAX_CLASSES = 2^16` keeps every *stored* index within u16: the
            // cast can only wrap on the iteration that pushes class 2^16, and that
            // iteration returns `None` below before the index is ever used.
            let next = distinct.len() as u16;
            let k = *first_index.entry(v.to_bits()).or_insert_with(|| {
                distinct.push(v);
                next
            });
            if distinct.len() > cap {
                return None;
            }
            class_idx.push(k);
        }
        Some(PhaseClasses {
            distinct,
            class_idx,
        })
    }

    /// The distinct objective values, in order of first appearance.
    pub fn distinct_values(&self) -> &[f64] {
        &self.distinct
    }

    /// For every state, the index of its value class in [`Self::distinct_values`].
    pub fn class_indices(&self) -> &[u16] {
        &self.class_idx
    }

    /// Number of distinct value classes.
    pub fn num_classes(&self) -> usize {
        self.distinct.len()
    }

    /// Number of states (the statevector dimension).
    pub fn len(&self) -> usize {
        self.class_idx.len()
    }

    /// Whether the table covers zero states.
    pub fn is_empty(&self) -> bool {
        self.class_idx.is_empty()
    }

    /// Compression ratio `states / distinct values` (≥ 2 by construction).
    pub fn compression_ratio(&self) -> f64 {
        self.len() as f64 / self.num_classes() as f64
    }
}

/// Builds [`PhaseClasses`] for a pre-computed objective vector (convenience wrapper
/// mirroring [`crate::precompute_full`] / [`crate::precompute_dicke`], whose outputs
/// are exactly what this consumes).
pub fn phase_classes(obj_vals: &[f64]) -> Option<PhaseClasses> {
    PhaseClasses::build(obj_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;
    use crate::precompute::precompute_full;
    use juliqaoa_graphs::cycle_graph;

    #[test]
    fn reconstructs_the_original_values() {
        let obj = precompute_full(&MaxCut::new(cycle_graph(8)));
        let classes = PhaseClasses::build(&obj).expect("MaxCut is compressible");
        assert_eq!(classes.len(), obj.len());
        for (x, &v) in obj.iter().enumerate() {
            let k = classes.class_indices()[x] as usize;
            assert_eq!(classes.distinct_values()[k], v);
        }
        // An 8-cycle has cut values {0, 2, 4, 6, 8}.
        assert_eq!(classes.num_classes(), 5);
        assert!(classes.compression_ratio() > 50.0);
    }

    #[test]
    fn distinct_values_in_first_appearance_order() {
        let classes = PhaseClasses::build(&[3.0, 1.0, 3.0, 2.0, 1.0, 1.0]).unwrap();
        assert_eq!(classes.distinct_values(), &[3.0, 1.0, 2.0]);
        assert_eq!(classes.class_indices(), &[0, 1, 0, 2, 1, 1]);
    }

    #[test]
    fn injective_values_are_rejected() {
        let obj: Vec<f64> = (0..64).map(|i| i as f64 * 0.137).collect();
        assert!(PhaseClasses::build(&obj).is_none());
    }

    #[test]
    fn barely_compressible_values_are_rejected() {
        // 33 distinct values over 64 states: more classes than half the states.
        let obj: Vec<f64> = (0..64)
            .map(|i| (i / 2).min(32) as f64 + (i % 2) as f64 * 0.5)
            .collect();
        let distinct: std::collections::HashSet<u64> = obj.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 32);
        assert!(PhaseClasses::build(&obj).is_none());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(PhaseClasses::build(&[]).is_none());
    }

    #[test]
    fn negative_zero_is_its_own_class() {
        let classes = PhaseClasses::build(&[0.0, -0.0, 0.0, -0.0]).unwrap();
        assert_eq!(classes.num_classes(), 2);
    }
}
