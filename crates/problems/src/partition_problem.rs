//! Number partitioning.
//!
//! Split a multiset of numbers into two groups minimizing the difference of their sums.
//! We expose it as a maximization problem (the convention of the rest of the crate) by
//! negating the squared imbalance, so the best states have objective 0 for perfectly
//! balanced partitions.

use crate::cost::CostFunction;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number partitioning with objective `−(Σ_i a_i·s_i)²` where `s_i = 1 − 2·x_i ∈ {±1}`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NumberPartitioning {
    numbers: Vec<f64>,
}

impl NumberPartitioning {
    /// Creates the cost function for a set of numbers.
    pub fn new(numbers: Vec<f64>) -> Self {
        assert!(
            !numbers.is_empty(),
            "number partitioning needs at least one number"
        );
        NumberPartitioning { numbers }
    }

    /// Random instance with integer entries drawn uniformly from `1..=max_value`.
    pub fn random<R: Rng + ?Sized>(n: usize, max_value: u64, rng: &mut R) -> Self {
        let numbers = (0..n)
            .map(|_| rng.gen_range(1..=max_value) as f64)
            .collect();
        NumberPartitioning { numbers }
    }

    /// The numbers being partitioned.
    pub fn numbers(&self) -> &[f64] {
        &self.numbers
    }

    /// The signed imbalance `Σ_i a_i·s_i` for the given assignment.
    pub fn imbalance(&self, state: u64) -> f64 {
        self.numbers
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let s = if (state >> i) & 1 == 1 { -1.0 } else { 1.0 };
                a * s
            })
            .sum()
    }

    /// Brute-force optimal objective (closest to zero imbalance, negated square).
    pub fn optimal_value(&self) -> f64 {
        let n = self.numbers.len();
        assert!(n <= 30, "brute-force optimum limited to n ≤ 30");
        (0..(1u64 << n))
            .map(|x| self.evaluate(x))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl CostFunction for NumberPartitioning {
    fn num_qubits(&self) -> usize {
        self.numbers.len()
    }

    fn evaluate(&self, state: u64) -> f64 {
        let d = self.imbalance(state);
        -(d * d)
    }

    fn name(&self) -> &str {
        "number_partitioning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfectly_balanced_partition_scores_zero() {
        let c = NumberPartitioning::new(vec![3.0, 1.0, 2.0]);
        // {3} vs {1,2}: balanced.
        assert_eq!(c.evaluate(0b001), 0.0);
        assert_eq!(c.optimal_value(), 0.0);
    }

    #[test]
    fn imbalance_sign_and_symmetry() {
        let c = NumberPartitioning::new(vec![5.0, 2.0]);
        assert_eq!(c.imbalance(0b00), 7.0);
        assert_eq!(c.imbalance(0b11), -7.0);
        assert_eq!(c.evaluate(0b00), c.evaluate(0b11));
        assert_eq!(c.evaluate(0b01), -9.0);
    }

    #[test]
    fn impossible_balance_has_negative_optimum() {
        let c = NumberPartitioning::new(vec![1.0, 1.0, 1.0]);
        assert_eq!(c.optimal_value(), -1.0);
    }

    #[test]
    fn random_instance_has_requested_size() {
        let c = NumberPartitioning::random(10, 50, &mut StdRng::seed_from_u64(2));
        assert_eq!(c.num_qubits(), 10);
        assert!(c.numbers().iter().all(|&a| (1.0..=50.0).contains(&a)));
    }

    #[test]
    #[should_panic]
    fn empty_instance_panics() {
        let _ = NumberPartitioning::new(vec![]);
    }
}
