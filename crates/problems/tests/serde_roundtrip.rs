//! JSON round-trip coverage for every serialisable problem type.
//!
//! The job-service persists problem instances inside job specs; a round-trip must
//! reproduce the cost function exactly (same objective value on every state) and
//! preserve the canonical [`InstanceId`] fingerprint.

use juliqaoa_problems::{
    CostFunction, DensestKSubgraph, HammingRamp, InstanceId, KSat, Literal, MarkedStates, MaxCut,
    MaxIndependentSet, MaxKVertexCover, NumberPartitioning,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Round-trips `cost` through JSON and asserts bit-identical objective values over the
/// whole state space plus a stable instance id.
fn assert_round_trip<C>(kind: &str, cost: &C)
where
    C: CostFunction + Serialize + Deserialize,
{
    let json = serde_json::to_string(cost).expect("serialises");
    let back: C = serde_json::from_str(&json).expect("parses back");
    assert_eq!(back.num_qubits(), cost.num_qubits());
    for x in 0..(1u64 << cost.num_qubits()) {
        assert_eq!(
            back.evaluate(x).to_bits(),
            cost.evaluate(x).to_bits(),
            "{kind}: objective diverged after round-trip at state {x}"
        );
    }
    assert_eq!(InstanceId::of(kind, &back), InstanceId::of(kind, cost));
}

#[test]
fn maxcut_round_trips() {
    let g = juliqaoa_graphs::erdos_renyi(7, 0.5, &mut StdRng::seed_from_u64(3));
    assert_round_trip("maxcut", &MaxCut::new(g));
}

#[test]
fn weighted_maxcut_round_trips() {
    let g = juliqaoa_graphs::Graph::from_weighted_edges(4, &[(0, 1, 1.5), (2, 3, -0.25)]);
    assert_round_trip("maxcut", &MaxCut::new(g));
}

#[test]
fn ksat_round_trips() {
    let sat = KSat::random(8, 3, 30, &mut StdRng::seed_from_u64(11));
    assert_round_trip("ksat", &sat);
    let tiny = KSat::new(2, vec![vec![Literal::pos(0), Literal::neg(1)]]);
    assert_round_trip("ksat", &tiny);
}

#[test]
fn densest_k_subgraph_round_trips() {
    let g = juliqaoa_graphs::erdos_renyi(7, 0.5, &mut StdRng::seed_from_u64(5));
    assert_round_trip("densest_k_subgraph", &DensestKSubgraph::new(g, 3));
}

#[test]
fn max_k_vertex_cover_round_trips() {
    let g = juliqaoa_graphs::erdos_renyi(7, 0.5, &mut StdRng::seed_from_u64(7));
    assert_round_trip("max_k_vertex_cover", &MaxKVertexCover::new(g, 3));
}

#[test]
fn max_independent_set_round_trips() {
    let g = juliqaoa_graphs::erdos_renyi(6, 0.4, &mut StdRng::seed_from_u64(9));
    assert_round_trip("max_independent_set", &MaxIndependentSet::new(g, 1.5));
}

#[test]
fn number_partitioning_round_trips() {
    let np = NumberPartitioning::random(8, 50, &mut StdRng::seed_from_u64(13));
    assert_round_trip("number_partitioning", &np);
}

#[test]
fn hamming_ramp_round_trips() {
    assert_round_trip("hamming_ramp", &HammingRamp::new(9));
}

#[test]
fn marked_states_round_trips() {
    assert_round_trip("marked_states", &MarkedStates::new(8, vec![3, 77, 200]));
}
