//! The Grover-mixer fast path (§2.4): simulation in the compressed space of distinct
//! objective values.
//!
//! The Grover mixer gives *fair sampling*: at every point of a Grover-mixer QAOA, all
//! feasible states with the same objective value have identical amplitudes.  The
//! statevector therefore never needs more storage than one amplitude per *distinct*
//! objective value, and a round costs `O(#distinct values)` instead of `O(|S|)`.  This
//! is what lets the paper push Grover-QAOA studies to `n = 100`: all that is required is
//! the table of distinct values and their degeneracies, which can be counted in parallel
//! (`juliqaoa-problems::degeneracies_full`) or supplied analytically for structured
//! costs.
//!
//! Degeneracies are carried as `f64` so tables whose counts exceed `u64` (e.g. binomial
//! degeneracies at `n = 100`) remain usable; the relative error of an `f64` count is
//! ~1e-16, far below simulation accuracy.

use crate::angles::Angles;
use juliqaoa_linalg::Complex64;
use juliqaoa_problems::DegeneracyTable;

/// A Grover-mixer QAOA simulator operating on `(value, degeneracy)` pairs.
#[derive(Clone, Debug)]
pub struct CompressedGroverSimulator {
    values: Vec<f64>,
    degeneracies: Vec<f64>,
    total: f64,
}

/// The result of a compressed simulation: one amplitude per distinct objective value.
#[derive(Clone, Debug)]
pub struct CompressedResult {
    values: Vec<f64>,
    degeneracies: Vec<f64>,
    /// Per-state amplitude for each value class (every state in the class has this
    /// amplitude, by fair sampling).
    amplitudes: Vec<Complex64>,
}

impl CompressedGroverSimulator {
    /// Builds the simulator from an exact degeneracy table.
    pub fn from_table(table: &DegeneracyTable) -> Self {
        Self::from_entries(
            table
                .entries
                .iter()
                .map(|&(v, d)| (v, d as f64))
                .collect::<Vec<_>>(),
        )
    }

    /// Builds the simulator from `(value, degeneracy)` pairs with float degeneracies
    /// (for analytic tables at very large `n`).
    ///
    /// # Panics
    /// Panics if the table is empty or contains non-positive degeneracies.
    pub fn from_entries(mut entries: Vec<(f64, f64)>) -> Self {
        assert!(!entries.is_empty(), "degeneracy table is empty");
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut values = Vec::with_capacity(entries.len());
        let mut degeneracies = Vec::with_capacity(entries.len());
        for (v, d) in entries {
            assert!(d > 0.0, "degeneracies must be positive");
            values.push(v);
            degeneracies.push(d);
        }
        let total: f64 = degeneracies.iter().sum();
        CompressedGroverSimulator {
            values,
            degeneracies,
            total,
        }
    }

    /// Number of distinct objective values.
    pub fn num_distinct(&self) -> usize {
        self.values.len()
    }

    /// Total number of feasible states represented.
    pub fn total_states(&self) -> f64 {
        self.total
    }

    /// The distinct objective values (ascending).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The degeneracy of each distinct value.
    pub fn degeneracies(&self) -> &[f64] {
        &self.degeneracies
    }

    /// Runs the p-round Grover-mixer QAOA starting from the uniform superposition.
    pub fn simulate(&self, angles: &Angles) -> CompressedResult {
        let m = self.values.len();
        let inv_sqrt_total = 1.0 / self.total.sqrt();
        let mut amps = vec![Complex64::from_real(inv_sqrt_total); m];
        for round in 0..angles.p() {
            let (gamma, beta) = angles.round(round);
            // Phase separator: a_v ← e^{-iγ v}·a_v.
            for (a, &v) in amps.iter_mut().zip(self.values.iter()) {
                *a *= Complex64::cis(-gamma * v);
            }
            // Grover mixer: overlap s = ⟨ψ₀|ψ⟩ = Σ_v d_v·a_v / √N,
            // then a_v += (e^{-iβ} − 1)·s/√N.
            let mut s = Complex64::ZERO;
            for (a, &d) in amps.iter().zip(self.degeneracies.iter()) {
                s += a.scale(d);
            }
            s = s.scale(inv_sqrt_total);
            let shift = (Complex64::cis(-beta) - Complex64::ONE) * s.scale(inv_sqrt_total);
            for a in amps.iter_mut() {
                *a += shift;
            }
        }
        CompressedResult {
            values: self.values.clone(),
            degeneracies: self.degeneracies.clone(),
            amplitudes: amps,
        }
    }

    /// Expectation value of the objective at the given angles.
    pub fn expectation(&self, angles: &Angles) -> f64 {
        self.simulate(angles).expectation_value()
    }
}

impl CompressedResult {
    /// Expectation value `Σ_v d_v·|a_v|²·v`.
    pub fn expectation_value(&self) -> f64 {
        self.values
            .iter()
            .zip(self.degeneracies.iter())
            .zip(self.amplitudes.iter())
            .map(|((&v, &d), a)| v * d * a.norm_sqr())
            .sum()
    }

    /// Total probability mass (1 up to round-off).
    pub fn total_probability(&self) -> f64 {
        self.degeneracies
            .iter()
            .zip(self.amplitudes.iter())
            .map(|(&d, a)| d * a.norm_sqr())
            .sum()
    }

    /// Probability of measuring *any* state attaining the maximum objective value.
    pub fn ground_state_probability(&self) -> f64 {
        // Values are sorted ascending, so the optimum is the last entry.
        let last = self.values.len() - 1;
        self.degeneracies[last] * self.amplitudes[last].norm_sqr()
    }

    /// Probability of measuring a state whose objective equals `value` (0 if the value
    /// does not occur).
    pub fn probability_of_value(&self, value: f64) -> f64 {
        self.values
            .iter()
            .zip(self.degeneracies.iter())
            .zip(self.amplitudes.iter())
            .filter(|((&v, _), _)| v == value)
            .map(|((_, &d), a)| d * a.norm_sqr())
            .sum()
    }

    /// The per-state amplitude of each distinct-value class.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amplitudes
    }

    /// The distinct values (ascending), matching [`CompressedResult::amplitudes`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use juliqaoa_graphs::erdos_renyi;
    use juliqaoa_mixers::Mixer;
    use juliqaoa_problems::{
        degeneracies_full, precompute_full, HammingRamp, MarkedStates, MaxCut,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_full_statevector_simulation_for_maxcut() {
        let n = 6;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(2));
        let cost = MaxCut::new(graph);
        let obj = precompute_full(&cost);
        let full_sim = Simulator::new(obj, Mixer::grover_full(n)).unwrap();
        let compressed = CompressedGroverSimulator::from_table(&degeneracies_full(&cost, 4));

        for seed in 0..4 {
            let angles = Angles::random(3, &mut StdRng::seed_from_u64(100 + seed));
            let full = full_sim.simulate(&angles).unwrap();
            let comp = compressed.simulate(&angles);
            assert!(
                (full.expectation_value() - comp.expectation_value()).abs() < 1e-9,
                "expectation mismatch at seed {seed}"
            );
            assert!(
                (full.ground_state_probability() - comp.ground_state_probability()).abs() < 1e-9
            );
            assert!((comp.total_probability() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fair_sampling_equal_value_states_share_amplitude() {
        // Direct verification of the fair-sampling property on the full simulator, which
        // is the premise of the compressed representation.
        let n = 5;
        let cost = HammingRamp::new(n);
        let obj = precompute_full(&cost);
        let sim = Simulator::new(obj.clone(), Mixer::grover_full(n)).unwrap();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(77));
        let res = sim.simulate(&angles).unwrap();
        for x in 0..(1usize << n) {
            for y in 0..(1usize << n) {
                if obj[x] == obj[y] {
                    assert!(
                        (res.amplitude(x) - res.amplitude(y)).abs() < 1e-10,
                        "states {x} and {y} share a value but not an amplitude"
                    );
                }
            }
        }
    }

    #[test]
    fn grover_search_amplifies_marked_state() {
        // Single marked state out of 2^4 = 16, threshold cost, one round with β = γ = π:
        // the Grover-mixer QAOA step should boost the marked-state probability well above
        // the uniform 1/16.
        let n = 4;
        let cost = MarkedStates::new(n, vec![5]);
        let table: Vec<(f64, f64)> = cost
            .analytic_degeneracies()
            .into_iter()
            .map(|(v, d)| (v, d as f64))
            .collect();
        let sim = CompressedGroverSimulator::from_entries(table);
        let angles = Angles::new(vec![std::f64::consts::PI], vec![std::f64::consts::PI]);
        let res = sim.simulate(&angles);
        let p_marked = res.probability_of_value(1.0);
        assert!(
            p_marked > 3.0 / 16.0,
            "marked probability {p_marked} not amplified"
        );
        assert!((res.total_probability() - 1.0).abs() < 1e-12);
        assert_eq!(res.ground_state_probability(), p_marked);
    }

    #[test]
    fn analytic_hamming_ramp_at_large_n() {
        // n = 100 via the analytic binomial table: 101 distinct values instead of 2^100
        // states.  The p = 0 expectation must equal the mean Hamming weight, n/2.
        let n = 100;
        let ramp = HammingRamp::new(n);
        let entries: Vec<(f64, f64)> = (0..=n)
            .map(|w| {
                (
                    w as f64,
                    juliqaoa_combinatorics::binomial::log2_binomial(n, w).exp2(),
                )
            })
            .collect();
        let sim = CompressedGroverSimulator::from_entries(entries);
        assert_eq!(sim.num_distinct(), 101);
        assert!((sim.total_states().log2() - 100.0).abs() < 1e-6);
        let e0 = sim.expectation(&Angles::zeros(0));
        assert!((e0 - 50.0).abs() < 1e-6);
        // One round with small angles moves the expectation but keeps it bounded.
        let e1 = sim.expectation(&Angles::new(vec![0.3], vec![0.05]));
        assert!(e1.is_finite());
        assert!(e1 >= 0.0 && e1 <= n as f64);
        let _ = ramp; // the cost function itself is only needed for documentation here
    }

    #[test]
    fn expectation_is_bounded_by_value_range() {
        let cost = HammingRamp::new(10);
        let table = DegeneracyTable::from_entries(cost.analytic_degeneracies());
        let sim = CompressedGroverSimulator::from_table(&table);
        for seed in 0..5 {
            let angles = Angles::random(4, &mut StdRng::seed_from_u64(seed));
            let e = sim.expectation(&angles);
            assert!((0.0 - 1e-9..=10.0 + 1e-9).contains(&e));
        }
    }

    #[test]
    fn degenerate_single_value_table() {
        let sim = CompressedGroverSimulator::from_entries(vec![(2.0, 8.0)]);
        let res = sim.simulate(&Angles::random(2, &mut StdRng::seed_from_u64(1)));
        assert!((res.expectation_value() - 2.0).abs() < 1e-12);
        assert!((res.ground_state_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn use_of_degeneracy_table_constructor() {
        let table = DegeneracyTable::from_entries([(0.0, 3), (1.0, 5)]);
        let sim = CompressedGroverSimulator::from_table(&table);
        assert_eq!(sim.num_distinct(), 2);
        assert_eq!(sim.total_states(), 8.0);
        assert_eq!(sim.values(), &[0.0, 1.0]);
        assert_eq!(sim.degeneracies(), &[3.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn empty_table_panics() {
        let _ = CompressedGroverSimulator::from_entries(vec![]);
    }
}
