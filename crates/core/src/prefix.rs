//! Prefix-state reuse for angle sweeps.
//!
//! The angle-finding outer loop evaluates the same circuit at thousands of nearby
//! points, and most of those points share a *prefix*: a grid search that varies the
//! deepest round's angles fastest changes only round `p` between consecutive points,
//! and a central finite difference perturbs one round at a time.  Restarting every
//! evaluation from `|ψ₀⟩` replays all `p` rounds anyway.  A [`PrefixCache`] is the
//! knowledge-compilation answer at the sweep level: checkpoint the statevector after
//! each round once, then let every evaluation that agrees with the cached angles
//! through round `k` resume from checkpoint `k` and re-evolve only the suffix.
//!
//! # Checkpoint invalidation rule
//!
//! A checkpoint is valid for an evaluation exactly when **every** round up to and
//! including its own was applied with bit-identical `(γ, β)` angles by the **same
//! simulator** (same objective vector, same kernel path, same mixers, same initial
//! state).  Concretely:
//!
//! * Each checkpoint stores the `f64` bit patterns of its round's angles; matching is
//!   by `to_bits()` equality, so `-0.0` vs `0.0` or any rounding difference
//!   conservatively re-evolves rather than risking a non-identical state.
//! * The cache is bound to a simulator *identity token* — a unique id every
//!   [`crate::Simulator`] construction (and every kernel-path or initial-state
//!   mutation) refreshes.  Binding the cache to a different token clears it, so a
//!   cache can never replay checkpoints produced by a different circuit.  Clones of a
//!   simulator share the token because they are bit-identical evaluators.
//! * When an evaluation's angles diverge from the stored prefix at round `k`, the
//!   checkpoints for rounds `≥ k` are stale; they are truncated as soon as the cache
//!   decides to record the new trajectory (see the write policy below).
//!
//! Because a resumed evaluation runs the *same kernels in the same order* on a state
//! that is a byte copy of what the cold path would have produced, results are
//! bit-identical to a full re-evolution — the cache changes cost, never answers.
//!
//! # Write policy
//!
//! Storing a checkpoint costs one state-sized `memcpy` per round, which is pure
//! overhead for optimizers (like BFGS line searches) whose consecutive points share
//! no prefix.  The cache therefore records checkpoints only when the access pattern
//! shows reuse: when the current evaluation extends the stored prefix, or when it
//! shares a prefix with the *previous* evaluation that the store cannot yet serve
//! (the start of a sweep).  A pure-miss workload pays only an angle comparison.
//!
//! # Tail checkpoints
//!
//! Sweeping the deepest round still replays all of round `p`, so the cache also keeps
//! one **tail** checkpoint inside the final round, for an evaluation that differs
//! only in the final `β`:
//!
//! * **Pauli-X mixers** (fixed cheap diagonalising transform `H^{⊗n}`): the state
//!   after the final phase separator, already rotated into the mixer eigenbasis — the
//!   replay is one diagonal sweep plus the rotation back, skipping the phase
//!   separator *and* the forward Hadamard transform;
//! * **Grover mixers**: the state straight after the final phase separator, together
//!   with the amplitude sum the fused table-driven round computed — the replay is
//!   just the rank-1 update.
//!
//! # Bit-identity scope
//!
//! "Bit-identical" is relative to a cold evolution under the same kernel-parallelism
//! context (rayon thread count and outer-parallelism guard state): reduction-bearing
//! kernels (Grover overlaps, expectation values) order their sums by that context.
//! Every outer-loop driver in this workspace pins inner kernels serial on worker
//! threads, so checkpoints there are context-independent in practice.
//!
//! The cache never allocates in the steady state: truncated checkpoint buffers are
//! recycled through a spare pool.

use crate::angles::Angles;
use juliqaoa_linalg::Complex64;
use juliqaoa_telemetry::kernels::KERNELS;
use std::sync::OnceLock;

/// Default byte budget for one cache: 256 MiB, enough for `p ≤ 8` full checkpoints at
/// `n = 20` and deliberately larger than any service-sized (`n ≤ 16`) sweep needs.
/// Override at startup with the `JULIQAOA_PREFIX_BUDGET` environment variable (bytes).
pub const DEFAULT_PREFIX_BUDGET_BYTES: usize = 256 << 20;

/// Hard cap on stored checkpoints, a backstop against absurd round counts.
const MAX_CHECKPOINTS: usize = 64;

static ENV_BUDGET: OnceLock<usize> = OnceLock::new();

/// The active default budget: `JULIQAOA_PREFIX_BUDGET` if set to a valid positive
/// integer at first use, [`DEFAULT_PREFIX_BUDGET_BYTES`] otherwise.
pub fn default_prefix_budget() -> usize {
    *ENV_BUDGET.get_or_init(|| {
        std::env::var("JULIQAOA_PREFIX_BUDGET")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_PREFIX_BUDGET_BYTES)
    })
}

/// A full-round checkpoint: the round's angles (as bit patterns) and the statevector
/// after that round.
#[derive(Clone, Debug)]
struct Checkpoint {
    gamma_bits: u64,
    beta_bits: u64,
    state: Vec<Complex64>,
}

/// What the stored tail state represents (and therefore how a `β`-only replay must
/// complete the final round).
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum TailKind {
    /// State after the final phase separator, already rotated into the mixer
    /// eigenbasis (Pauli-X mixers): replay = diagonal phase + rotate back.
    Eigenbasis,
    /// State straight after the final phase separator (Grover mixers): replay = the
    /// rank-1 update.  Carries the amplitude sum the fused table-driven round already
    /// computed (`None` on the dense path, where the replay recomputes it exactly as
    /// the cold kernel would).
    PostPhase {
        /// Amplitude sum from the fused phase sweep, when one was performed.
        fused_sum: Option<Complex64>,
    },
}

/// The final-round sub-checkpoint (see the module docs).
#[derive(Clone, Debug)]
struct TailCheckpoint {
    /// Number of full rounds preceding the final round this tail belongs to.
    prefix_rounds: usize,
    /// Bit pattern of the final round's `γ`.
    gamma_bits: u64,
    kind: TailKind,
    /// The stored state.
    state: Vec<Complex64>,
}

/// Monotonic reuse counters, reported through the service metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Evaluations that resumed from at least one checkpoint.
    pub hits: u64,
    /// Evaluations that ran cold.
    pub misses: u64,
    /// Full rounds skipped across all hits.
    pub rounds_saved: u64,
    /// Hits served by a final-round tail checkpoint (eigenbasis or post-phase).
    pub tail_hits: u64,
}

impl PrefixStats {
    /// Adds another counter set into this one (aggregation across caches).
    pub fn absorb(&mut self, other: PrefixStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.rounds_saved += other.rounds_saved;
        self.tail_hits += other.tail_hits;
    }
}

/// A stack of per-round checkpoint statevectors for incremental re-evolution.
///
/// Owned by one evaluation loop (an optimizer objective) and handed to
/// [`crate::Simulator::evolve_cached`] on every evaluation; see the module docs for
/// the invalidation rule and write policy.  All stored states count against a byte
/// budget fixed at construction — a budget too small for even one checkpoint makes
/// the cache inert (every evaluation runs cold) rather than wrong.
#[derive(Clone, Debug)]
pub struct PrefixCache {
    /// Identity token of the simulator the checkpoints belong to (0 = unbound).
    token: u64,
    /// Statevector dimension the buffers are sized for.
    dim: usize,
    budget_bytes: usize,
    rounds: Vec<Checkpoint>,
    tail: Option<TailCheckpoint>,
    /// Angle bit patterns of the previous evaluation, for the write policy.
    last_angles: Vec<(u64, u64)>,
    /// Recycled checkpoint buffers.
    spare: Vec<Vec<Complex64>>,
    stats: PrefixStats,
}

impl Default for PrefixCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixCache {
    /// A cache with the [`default_prefix_budget`] byte budget.
    pub fn new() -> Self {
        Self::with_budget(default_prefix_budget())
    }

    /// A cache whose stored states may use at most `budget_bytes` bytes in total.
    pub fn with_budget(budget_bytes: usize) -> Self {
        PrefixCache {
            token: 0,
            dim: 0,
            budget_bytes,
            rounds: Vec::new(),
            tail: None,
            last_angles: Vec::new(),
            spare: Vec::new(),
            stats: PrefixStats::default(),
        }
    }

    /// The byte budget this cache was built with.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of full-round checkpoints currently stored.
    pub fn checkpoints(&self) -> usize {
        self.rounds.len()
    }

    /// Approximate bytes held in checkpoint states (including the tail and spares).
    pub fn bytes(&self) -> usize {
        let vecs = self.rounds.len() + self.spare.len() + usize::from(self.tail.is_some());
        vecs * self.dim * std::mem::size_of::<Complex64>()
    }

    /// The reuse counters.
    pub fn stats(&self) -> PrefixStats {
        self.stats
    }

    /// Returns the counters and resets them to zero (used when a cache cycles
    /// through a shared home between jobs, so totals are never double-counted).
    pub fn take_stats(&mut self) -> PrefixStats {
        std::mem::take(&mut self.stats)
    }

    /// Drops every checkpoint (counters are kept).
    pub fn clear(&mut self) {
        while let Some(cp) = self.rounds.pop() {
            self.spare.push(cp.state);
        }
        if let Some(tail) = self.tail.take() {
            self.spare.push(tail.state);
        }
        self.last_angles.clear();
    }

    /// Maximum number of state-sized buffers the budget allows.
    fn max_states(&self) -> usize {
        let bytes_per = self.dim * std::mem::size_of::<Complex64>();
        if bytes_per == 0 {
            return 0;
        }
        (self.budget_bytes / bytes_per).min(MAX_CHECKPOINTS)
    }

    /// Binds the cache to a simulator identity, clearing it when the identity (or the
    /// dimension) changed since the last evaluation.
    pub(crate) fn bind(&mut self, token: u64, dim: usize) {
        if self.token != token || self.dim != dim {
            self.token = token;
            // Buffers of a different dimension cannot be recycled.
            if self.dim != dim {
                self.rounds.clear();
                self.tail = None;
                self.spare.clear();
                self.last_angles.clear();
                self.dim = dim;
            } else {
                self.clear();
            }
        }
    }

    /// Longest stored checkpoint prefix matching `angles` bit-for-bit (capped at `p`).
    pub(crate) fn matching_rounds(&self, angles: &Angles) -> usize {
        let p = angles.p();
        let mut k = 0;
        while k < self.rounds.len() && k < p {
            let (gamma, beta) = angles.round(k);
            let cp = &self.rounds[k];
            if cp.gamma_bits != gamma.to_bits() || cp.beta_bits != beta.to_bits() {
                break;
            }
            k += 1;
        }
        k
    }

    /// Longest prefix shared with the *previous* evaluation's angles (the write-policy
    /// signal; returns 0 before the first evaluation).
    fn shared_with_last(&self, angles: &Angles) -> usize {
        let p = angles.p();
        let mut k = 0;
        while k < self.last_angles.len() && k < p {
            let (gamma, beta) = angles.round(k);
            if self.last_angles[k] != (gamma.to_bits(), beta.to_bits()) {
                break;
            }
            k += 1;
        }
        k
    }

    /// Decides whether this evaluation should record checkpoints, and remembers its
    /// angles as the new "previous evaluation".  `k` is the usable stored prefix.
    /// Callers that decide to write must [`Self::truncate_to`]`(k)` first, so stale
    /// deeper checkpoints never coexist with the new trajectory.
    pub(crate) fn plan_writes(&mut self, angles: &Angles, k: usize) -> bool {
        let write =
            self.max_states() > 0 && (k == self.rounds.len() || self.shared_with_last(angles) > k);
        self.note_eval(angles);
        write
    }

    /// Remembers `angles` as the previous evaluation (for the write policy) without
    /// any other side effect.
    pub(crate) fn note_eval(&mut self, angles: &Angles) {
        self.last_angles.clear();
        for round in 0..angles.p() {
            let (gamma, beta) = angles.round(round);
            self.last_angles.push((gamma.to_bits(), beta.to_bits()));
        }
    }

    /// Drops checkpoints beyond the first `k` rounds (and any tail), recycling buffers.
    pub(crate) fn truncate_to(&mut self, k: usize) {
        while self.rounds.len() > k {
            let cp = self.rounds.pop().expect("len checked");
            self.spare.push(cp.state);
        }
        if let Some(tail) = self.tail.take() {
            self.spare.push(tail.state);
        }
    }

    /// The stored state after `rounds` rounds (`rounds ≥ 1`).
    pub(crate) fn state_after(&self, rounds: usize) -> &[Complex64] {
        &self.rounds[rounds - 1].state
    }

    fn buffer_from_spare(&mut self, src: &[Complex64]) -> Vec<Complex64> {
        match self.spare.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.extend_from_slice(src);
                buf
            }
            None => src.to_vec(),
        }
    }

    /// Records the state after one more round, if the budget allows.  Checkpoints must
    /// be pushed in round order on top of the existing stack.
    pub(crate) fn push_checkpoint(&mut self, gamma: f64, beta: f64, state: &[Complex64]) {
        debug_assert_eq!(state.len(), self.dim);
        // Reserve one buffer slot for the tail checkpoint.
        if self.rounds.len() + 1 >= self.max_states() {
            return;
        }
        let buf = self.buffer_from_spare(state);
        self.rounds.push(Checkpoint {
            gamma_bits: gamma.to_bits(),
            beta_bits: beta.to_bits(),
            state: buf,
        });
    }

    /// The stored tail (kind and state) serving a final round at depth
    /// `prefix_rounds` with this `γ`, if any.
    pub(crate) fn matching_tail(
        &self,
        prefix_rounds: usize,
        gamma: f64,
    ) -> Option<(TailKind, &[Complex64])> {
        self.tail
            .as_ref()
            .filter(|t| t.prefix_rounds == prefix_rounds && t.gamma_bits == gamma.to_bits())
            .map(|t| (t.kind, t.state.as_slice()))
    }

    /// Records the final round's sub-checkpoint, if the budget allows.
    pub(crate) fn store_tail(
        &mut self,
        prefix_rounds: usize,
        gamma: f64,
        kind: TailKind,
        state: &[Complex64],
    ) {
        debug_assert_eq!(state.len(), self.dim);
        if self.max_states() == 0 {
            return;
        }
        match self.tail.as_mut() {
            Some(tail) => {
                tail.prefix_rounds = prefix_rounds;
                tail.gamma_bits = gamma.to_bits();
                tail.kind = kind;
                tail.state.clear();
                tail.state.extend_from_slice(state);
            }
            None => {
                let buf = self.buffer_from_spare(state);
                self.tail = Some(TailCheckpoint {
                    prefix_rounds,
                    gamma_bits: gamma.to_bits(),
                    kind,
                    state: buf,
                });
            }
        }
    }

    pub(crate) fn record_hit(&mut self, rounds_saved: usize, tail: bool) {
        self.stats.hits += 1;
        self.stats.rounds_saved += rounds_saved as u64;
        self.stats.tail_hits += u64::from(tail);
        KERNELS.prefix_checkpoint_hits.inc();
        KERNELS.prefix_rounds_saved.add(rounds_saved as u64);
    }

    pub(crate) fn record_miss(&mut self) {
        self.stats.misses += 1;
        KERNELS.prefix_cold_starts.inc();
    }

    /// Merges another cache's counters into this one's.
    pub fn absorb_stats(&mut self, stats: PrefixStats) {
        self.stats.absorb(stats);
    }

    /// A comparable warmth score: how much replay work this cache's checkpoints can
    /// save the next evaluation.  Full-round checkpoints dominate (each one skips a
    /// whole round); a tail sub-checkpoint breaks ties between equally deep caches.
    pub fn warmth(&self) -> usize {
        2 * self.rounds.len() + usize::from(self.tail.is_some())
    }

    /// Deepest-wins merge: keeps whichever of the two caches serves deeper prefixes
    /// (ties favour `self`), folding the other's reuse counters into the survivor so
    /// no hits are lost when concurrently warmed caches race back to a shared slot.
    ///
    /// The two caches' checkpoints are never spliced together — they may describe
    /// different angle trajectories, and a mixed stack could violate the invariant
    /// that rounds `0..k` were applied with one consistent angle prefix.  Keeping the
    /// deeper cache whole is always safe and loses at most the shallower warm-up.
    pub fn merge_deeper(self, other: PrefixCache) -> PrefixCache {
        let (mut keep, discard) = if other.warmth() > self.warmth() {
            (other, self)
        } else {
            (self, other)
        };
        keep.stats.absorb(discard.stats);
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(dim: usize, fill: f64) -> Vec<Complex64> {
        vec![Complex64::new(fill, -fill); dim]
    }

    #[test]
    fn binding_a_different_token_clears_checkpoints() {
        let mut cache = PrefixCache::with_budget(1 << 20);
        cache.bind(1, 8);
        cache.plan_writes(&Angles::new(vec![0.1], vec![0.2]), 0);
        cache.push_checkpoint(0.2, 0.1, &state(8, 1.0));
        assert_eq!(cache.checkpoints(), 1);
        cache.bind(2, 8);
        assert_eq!(cache.checkpoints(), 0);
        // Re-binding the same token is a no-op.
        cache.push_checkpoint(0.2, 0.1, &state(8, 2.0));
        cache.bind(2, 8);
        assert_eq!(cache.checkpoints(), 1);
    }

    #[test]
    fn matching_stops_at_the_first_differing_round() {
        let mut cache = PrefixCache::with_budget(1 << 20);
        cache.bind(1, 4);
        cache.push_checkpoint(0.5, 0.25, &state(4, 1.0));
        cache.push_checkpoint(0.75, 0.125, &state(4, 2.0));
        let same = Angles::new(vec![0.25, 0.125, 0.9], vec![0.5, 0.75, 0.9]);
        assert_eq!(cache.matching_rounds(&same), 2);
        let diverges = Angles::new(vec![0.25, 0.99], vec![0.5, 0.75]);
        assert_eq!(cache.matching_rounds(&diverges), 1);
        let shallow = Angles::new(vec![0.25], vec![0.5]);
        assert_eq!(cache.matching_rounds(&shallow), 1);
        let cold = Angles::new(vec![0.0, 0.125], vec![0.5, 0.75]);
        assert_eq!(cache.matching_rounds(&cold), 0);
    }

    #[test]
    fn zero_budget_cache_is_inert() {
        let mut cache = PrefixCache::with_budget(0);
        cache.bind(1, 8);
        let angles = Angles::new(vec![0.1, 0.2], vec![0.3, 0.4]);
        assert!(!cache.plan_writes(&angles, 0));
        cache.push_checkpoint(0.3, 0.1, &state(8, 1.0));
        assert_eq!(cache.checkpoints(), 0);
        cache.store_tail(1, 0.4, TailKind::Eigenbasis, &state(8, 1.0));
        assert!(cache.matching_tail(1, 0.4).is_none());
    }

    #[test]
    fn write_policy_waits_for_a_repeated_prefix() {
        let mut cache = PrefixCache::with_budget(1 << 20);
        cache.bind(1, 8);
        let a = Angles::new(vec![0.1, 0.2], vec![0.3, 0.4]);
        let b = Angles::new(vec![0.1, 0.9], vec![0.3, 0.8]);
        let c = Angles::new(vec![0.5, 0.6], vec![0.7, 0.8]);
        // First evaluation: empty stack counts as "extending", so it may write.
        assert!(cache.plan_writes(&a, 0));
        cache.push_checkpoint(0.3, 0.1, &state(8, 1.0));
        // A full miss with no shared prefix against the last evaluation: no writes,
        // and the stored checkpoint survives.
        assert!(!cache.plan_writes(&c, 0));
        assert_eq!(cache.checkpoints(), 1);
        // Sharing round 0 with the previous evaluation beyond what the (stale) store
        // can serve triggers a rewrite... here the store already serves round 0.
        assert!(cache.plan_writes(&a, 1));
        // A sweep step sharing the stored round-0 prefix keeps extending.
        assert!(cache.plan_writes(&b, 1));
    }

    #[test]
    fn truncation_recycles_buffers() {
        let mut cache = PrefixCache::with_budget(1 << 20);
        cache.bind(1, 16);
        cache.push_checkpoint(0.1, 0.2, &state(16, 1.0));
        cache.push_checkpoint(0.3, 0.4, &state(16, 2.0));
        let bytes_before = cache.bytes();
        cache.truncate_to(0);
        assert_eq!(cache.checkpoints(), 0);
        // Buffers moved to the spare pool, not freed.
        assert_eq!(cache.bytes(), bytes_before);
        cache.push_checkpoint(0.5, 0.6, &state(16, 3.0));
        assert_eq!(cache.bytes(), bytes_before);
    }

    #[test]
    fn warmth_orders_caches_by_checkpoint_depth() {
        let mut shallow = PrefixCache::with_budget(1 << 20);
        shallow.bind(1, 8);
        shallow.push_checkpoint(0.1, 0.2, &state(8, 1.0));
        let mut deep = PrefixCache::with_budget(1 << 20);
        deep.bind(1, 8);
        deep.push_checkpoint(0.1, 0.2, &state(8, 1.0));
        deep.push_checkpoint(0.3, 0.4, &state(8, 2.0));
        assert!(deep.warmth() > shallow.warmth());
        // A tail breaks ties between equally deep caches but never outranks a full
        // round.
        let mut tailed = PrefixCache::with_budget(1 << 20);
        tailed.bind(1, 8);
        tailed.push_checkpoint(0.1, 0.2, &state(8, 1.0));
        tailed.store_tail(1, 0.5, TailKind::Eigenbasis, &state(8, 3.0));
        assert!(tailed.warmth() > shallow.warmth());
        assert!(deep.warmth() > tailed.warmth());
        assert_eq!(PrefixCache::with_budget(1 << 20).warmth(), 0);
    }

    #[test]
    fn merge_deeper_keeps_the_warmer_cache_and_both_counter_sets() {
        let mut a = PrefixCache::with_budget(1 << 20);
        a.bind(1, 8);
        a.push_checkpoint(0.1, 0.2, &state(8, 1.0));
        a.record_hit(1, false);
        let mut b = PrefixCache::with_budget(1 << 20);
        b.bind(1, 8);
        b.push_checkpoint(0.5, 0.6, &state(8, 4.0));
        b.push_checkpoint(0.7, 0.8, &state(8, 5.0));
        b.record_miss();
        // b is deeper: it survives, carrying a's counters.
        let merged = a.merge_deeper(b);
        assert_eq!(merged.checkpoints(), 2);
        assert_eq!(
            merged.matching_rounds(&Angles::new(vec![0.6], vec![0.5])),
            1
        );
        assert_eq!(merged.stats().hits, 1);
        assert_eq!(merged.stats().misses, 1);
        // Ties keep self (no churn when both are equally warm).
        let mut c = PrefixCache::with_budget(1 << 20);
        c.bind(1, 8);
        c.push_checkpoint(0.9, 0.1, &state(8, 6.0));
        let mut d = PrefixCache::with_budget(1 << 20);
        d.bind(1, 8);
        d.push_checkpoint(0.2, 0.3, &state(8, 7.0));
        let tied = c.merge_deeper(d);
        assert_eq!(tied.matching_rounds(&Angles::new(vec![0.1], vec![0.9])), 1);
    }

    #[test]
    fn stats_take_resets() {
        let mut cache = PrefixCache::new();
        cache.record_hit(3, true);
        cache.record_miss();
        let s = cache.take_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.rounds_saved, 3);
        assert_eq!(s.tail_hits, 1);
        assert_eq!(cache.stats(), PrefixStats::default());
        cache.absorb_stats(s);
        assert_eq!(cache.stats().hits, 1);
    }
}
