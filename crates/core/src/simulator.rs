//! The QAOA statevector simulator.
//!
//! A [`Simulator`] is assembled from the two pre-computed ingredients of Figure 1 —
//! the objective values `C(x)` over the feasible set and a [`Mixer`] — plus an initial
//! state.  Evaluating the ansatz at a set of [`Angles`] then alternates two cheap
//! kernels per round:
//!
//! 1. the phase separator `e^{-iγ H_C}`: an element-wise phase multiplication by the
//!    pre-computed objective values;
//! 2. the mixer `e^{-iβ H_M}`: Walsh–Hadamard-diagonalised for Pauli-X mixers, a rank-1
//!    update for the Grover mixer, or two subspace mat-vecs for Clique/Ring mixers.
//!
//! Nothing in the hot loop allocates; all buffers live in a caller-held [`Workspace`].

use crate::angles::Angles;
use crate::error::QaoaError;
use crate::result::SimulationResult;
use crate::workspace::Workspace;
use juliqaoa_linalg::{vector, Complex64};
use juliqaoa_mixers::Mixer;
use juliqaoa_problems::PhaseClasses;

/// The state the QAOA starts from.
#[derive(Clone, Debug)]
pub enum InitialState {
    /// The uniform superposition over the feasible set (the default: `|+⟩^{⊗n}` for
    /// unconstrained problems, the Dicke state `|D^n_k⟩` for weight-k problems).
    Uniform,
    /// A single feasible basis state, given by its dense index.
    Basis(usize),
    /// An arbitrary caller-supplied state (e.g. a warm start); normalised on use.
    Custom(Vec<Complex64>),
}

/// An exact QAOA statevector simulator over a pre-computed problem.
#[derive(Clone, Debug)]
pub struct Simulator {
    obj_vals: Vec<f64>,
    /// Phase-class compression of `obj_vals`, built once at construction.  `Some` for
    /// the paper's objectives (which take `O(m)` distinct values over `2ⁿ` states);
    /// `None` for effectively-injective objectives, which keep the dense `cis` path.
    phase_classes: Option<PhaseClasses>,
    mixers: Vec<Mixer>,
    initial_state: InitialState,
    dim: usize,
}

impl Simulator {
    /// Creates a simulator with a single mixer shared by every round — the common case
    /// of Listing 1 (`simulate(angles, mixer, obj_vals)`).
    pub fn new(obj_vals: Vec<f64>, mixer: Mixer) -> Result<Self, QaoaError> {
        Self::with_mixers(obj_vals, vec![mixer])
    }

    /// Creates a simulator with one mixer per round (the `mixers` array option of §3);
    /// the number of rounds simulated must then equal the number of mixers.
    pub fn with_mixers(obj_vals: Vec<f64>, mixers: Vec<Mixer>) -> Result<Self, QaoaError> {
        let phase_classes = PhaseClasses::build(&obj_vals);
        Self::from_parts(obj_vals, phase_classes, mixers)
    }

    /// Assembles a simulator from an objective vector whose [`PhaseClasses`]
    /// compression was already computed (or found non-compressible) elsewhere.
    ///
    /// This is the constructor behind instance caching: a job service that runs many
    /// jobs over the same problem instance builds the compression once, keeps it with
    /// the cached objective vector, and hands clones to each simulator instead of
    /// re-scanning the `2ⁿ` values per job.  The classes must describe exactly
    /// `obj_vals` — the per-state index table has to have the same length.
    pub fn from_parts(
        obj_vals: Vec<f64>,
        phase_classes: Option<PhaseClasses>,
        mixers: Vec<Mixer>,
    ) -> Result<Self, QaoaError> {
        if obj_vals.is_empty() {
            return Err(QaoaError::EmptyObjective);
        }
        assert!(!mixers.is_empty(), "at least one mixer is required");
        let dim = obj_vals.len();
        if let Some(classes) = &phase_classes {
            assert_eq!(
                classes.len(),
                dim,
                "phase classes describe a different objective vector"
            );
        }
        for m in &mixers {
            if m.dim() != dim {
                return Err(QaoaError::DimensionMismatch {
                    objective_len: dim,
                    mixer_dim: m.dim(),
                });
            }
        }
        Ok(Simulator {
            obj_vals,
            phase_classes,
            mixers,
            initial_state: InitialState::Uniform,
            dim,
        })
    }

    /// Disables phase-class compression, forcing the dense per-amplitude `cis` kernel.
    ///
    /// The table-driven path is equivalent to within machine precision (the same
    /// `cis(-γ·value)` factors are applied, computed once per distinct value); this
    /// toggle exists for benchmarking the two paths against each other and as an
    /// escape hatch.
    pub fn with_dense_phases(mut self) -> Self {
        self.phase_classes = None;
        self
    }

    /// The phase-class compression in use, if the objective was compressible.
    pub fn phase_classes(&self) -> Option<&PhaseClasses> {
        self.phase_classes.as_ref()
    }

    /// Replaces the initial state (the `initial_state` keyword of `simulate()`); used for
    /// warm starts and for starting constrained problems in specific feasible states.
    pub fn with_initial_state(mut self, init: InitialState) -> Result<Self, QaoaError> {
        match &init {
            InitialState::Uniform => {}
            InitialState::Basis(i) => {
                if *i >= self.dim {
                    return Err(QaoaError::InvalidInitialState(format!(
                        "basis index {i} out of range for dimension {}",
                        self.dim
                    )));
                }
            }
            InitialState::Custom(v) => {
                if v.len() != self.dim {
                    return Err(QaoaError::InvalidInitialState(format!(
                        "custom state has length {} but the feasible set has {} states",
                        v.len(),
                        self.dim
                    )));
                }
                if vector::norm(v) == 0.0 {
                    return Err(QaoaError::InvalidInitialState(
                        "custom state has zero norm".into(),
                    ));
                }
            }
        }
        self.initial_state = init;
        Ok(self)
    }

    /// Dimension of the feasible set (and of every statevector involved).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pre-computed objective values.
    pub fn objective_values(&self) -> &[f64] {
        &self.obj_vals
    }

    /// The mixer used at a given round.
    pub fn mixers(&self) -> &[Mixer] {
        &self.mixers
    }

    /// Largest objective value (the optimum for maximization problems).
    pub fn max_objective(&self) -> f64 {
        self.obj_vals
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest objective value.
    pub fn min_objective(&self) -> f64 {
        self.obj_vals.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Allocates a workspace matched to this simulator's dimension.
    pub fn workspace(&self) -> Workspace {
        Workspace::new(self.dim)
    }

    /// Writes the initial state into `state`.
    pub fn prepare_initial(&self, state: &mut [Complex64]) {
        assert_eq!(state.len(), self.dim);
        match &self.initial_state {
            InitialState::Uniform => vector::fill_uniform(state),
            InitialState::Basis(i) => {
                state.iter_mut().for_each(|z| *z = Complex64::ZERO);
                state[*i] = Complex64::ONE;
            }
            InitialState::Custom(v) => {
                state.copy_from_slice(v);
                vector::normalize(state);
            }
        }
    }

    /// Returns the mixer to use for `round` out of `p`, validating the schedule.
    pub(crate) fn mixer_for_round(&self, round: usize, p: usize) -> Result<&Mixer, QaoaError> {
        if self.mixers.len() == 1 {
            Ok(&self.mixers[0])
        } else if self.mixers.len() == p {
            Ok(&self.mixers[round])
        } else {
            Err(QaoaError::MixerScheduleMismatch {
                mixers: self.mixers.len(),
                rounds: p,
            })
        }
    }

    /// Evolves the initial state through all `p` rounds, leaving `|β,γ⟩` in `ws.state`.
    ///
    /// With a compressible objective each round's phase separator is table-driven
    /// (`O(#distinct)` trigonometry plus one gather-multiply sweep), and Grover-mixer
    /// rounds fuse the separator with the mixer's overlap reduction so a full GM-QAOA
    /// round costs two passes over the state instead of three.  The dense per-amplitude
    /// `cis` path remains for non-compressible objectives; both paths agree to within
    /// `1e-12` (the phase factors are bit-identical, only reduction order can differ).
    pub fn evolve_into(&self, angles: &Angles, ws: &mut Workspace) -> Result<(), QaoaError> {
        ws.resize(self.dim);
        self.prepare_initial(&mut ws.state);
        let p = angles.p();
        match &self.phase_classes {
            Some(classes) => {
                let class_idx = classes.class_indices();
                for round in 0..p {
                    let (gamma, beta) = angles.round(round);
                    let mixer = self.mixer_for_round(round, p)?;
                    // One cis per distinct objective value, into the reusable table.
                    vector::build_phase_table(
                        classes.distinct_values(),
                        gamma,
                        &mut ws.phase_table,
                    );
                    if let Mixer::Grover(grover) = mixer {
                        // Fused GM-QAOA round: the phase sweep also accumulates the
                        // amplitude sum the Grover rank-1 update needs.
                        let sum = vector::apply_phases_indexed_sum(
                            &mut ws.state,
                            class_idx,
                            &ws.phase_table,
                        );
                        grover.apply_evolution_with_sum(beta, &mut ws.state, sum);
                    } else {
                        vector::apply_phases_indexed(&mut ws.state, class_idx, &ws.phase_table);
                        mixer.apply_evolution(beta, &mut ws.state, &mut ws.scratch);
                    }
                }
            }
            None => {
                for round in 0..p {
                    let (gamma, beta) = angles.round(round);
                    let mixer = self.mixer_for_round(round, p)?;
                    // Phase separator e^{-iγ H_C}.
                    vector::apply_phases(&mut ws.state, &self.obj_vals, gamma);
                    // Mixer e^{-iβ H_M}.
                    mixer.apply_evolution(beta, &mut ws.state, &mut ws.scratch);
                }
            }
        }
        Ok(())
    }

    /// The expectation value `⟨β,γ|C|β,γ⟩` using a caller-held workspace (the zero
    /// allocation path used inside the angle-finding loop).
    pub fn expectation_with(&self, angles: &Angles, ws: &mut Workspace) -> Result<f64, QaoaError> {
        self.evolve_into(angles, ws)?;
        Ok(vector::diagonal_expectation(&ws.state, &self.obj_vals))
    }

    /// Convenience wrapper allocating a fresh workspace.
    pub fn expectation(&self, angles: &Angles) -> Result<f64, QaoaError> {
        let mut ws = self.workspace();
        self.expectation_with(angles, &mut ws)
    }

    /// Full simulation returning a [`SimulationResult`] (Listing 1's `simulate`).
    pub fn simulate(&self, angles: &Angles) -> Result<SimulationResult, QaoaError> {
        let mut ws = self.workspace();
        self.simulate_with(angles, &mut ws)
    }

    /// Full simulation re-using a workspace; the statevector is copied into the result.
    pub fn simulate_with(
        &self,
        angles: &Angles,
        ws: &mut Workspace,
    ) -> Result<SimulationResult, QaoaError> {
        self.evolve_into(angles, ws)?;
        Ok(SimulationResult::from_state(
            ws.state.clone(),
            &self.obj_vals,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::{cycle_graph, erdos_renyi};
    use juliqaoa_problems::{precompute_full, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn maxcut_simulator(n: usize) -> (Simulator, f64) {
        let graph = cycle_graph(n);
        let cost = MaxCut::new(graph);
        let optimum = cost.optimal_value();
        let obj = precompute_full(&cost);
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        (sim, optimum)
    }

    #[test]
    fn construction_validates_dimensions() {
        let obj = vec![0.0; 8];
        assert!(Simulator::new(obj.clone(), Mixer::transverse_field(3)).is_ok());
        let err = Simulator::new(obj, Mixer::transverse_field(2)).unwrap_err();
        assert!(matches!(err, QaoaError::DimensionMismatch { .. }));
        assert!(matches!(
            Simulator::new(vec![], Mixer::transverse_field(2)),
            Err(QaoaError::EmptyObjective)
        ));
    }

    #[test]
    fn from_parts_with_shared_classes_matches_direct_construction() {
        let (direct, _) = maxcut_simulator(6);
        let classes = PhaseClasses::build(direct.objective_values());
        assert!(classes.is_some());
        let shared = Simulator::from_parts(
            direct.objective_values().to_vec(),
            classes,
            vec![Mixer::transverse_field(6)],
        )
        .unwrap();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(5));
        let a = direct.expectation(&angles).unwrap();
        let b = shared.expectation(&angles).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_mismatched_classes() {
        let (sim, _) = maxcut_simulator(6);
        let wrong = PhaseClasses::build(&[0.0, 1.0, 0.0, 1.0]);
        let _ = Simulator::from_parts(
            sim.objective_values().to_vec(),
            wrong,
            vec![Mixer::transverse_field(6)],
        );
    }

    #[test]
    fn zero_rounds_reproduces_initial_expectation() {
        let (sim, _) = maxcut_simulator(6);
        // p = 0: expectation is the mean objective value over the uniform superposition.
        let mean: f64 = sim.objective_values().iter().sum::<f64>() / sim.dim() as f64;
        let e = sim.expectation(&Angles::zeros(0)).unwrap();
        assert!((e - mean).abs() < 1e-12);
    }

    #[test]
    fn zero_angles_leave_expectation_at_mean() {
        let (sim, _) = maxcut_simulator(6);
        let mean: f64 = sim.objective_values().iter().sum::<f64>() / sim.dim() as f64;
        let e = sim.expectation(&Angles::zeros(3)).unwrap();
        assert!((e - mean).abs() < 1e-10);
    }

    #[test]
    fn simulation_preserves_norm() {
        let (sim, _) = maxcut_simulator(6);
        let angles = Angles::random(4, &mut StdRng::seed_from_u64(7));
        let res = sim.simulate(&angles).unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn single_round_qaoa_improves_over_random_guessing() {
        // A modest p=1 QAOA with reasonable angles should beat the uniform-superposition
        // mean for MaxCut on a cycle.
        let (sim, optimum) = maxcut_simulator(8);
        let mean: f64 = sim.objective_values().iter().sum::<f64>() / sim.dim() as f64;
        let mut best = f64::NEG_INFINITY;
        // Coarse grid over (β, γ) — the point is existence of an improving angle pair.
        for ib in 0..12 {
            for ig in 0..12 {
                let beta = ib as f64 * std::f64::consts::PI / 12.0;
                let gamma = ig as f64 * std::f64::consts::PI / 12.0;
                let e = sim
                    .expectation(&Angles::new(vec![beta], vec![gamma]))
                    .unwrap();
                best = best.max(e);
            }
        }
        assert!(best > mean + 0.3, "best {best} should exceed mean {mean}");
        assert!(best <= optimum + 1e-9);
    }

    #[test]
    fn expectation_bounded_by_objective_range() {
        let graph = erdos_renyi(7, 0.5, &mut StdRng::seed_from_u64(3));
        let cost = MaxCut::new(graph);
        let obj = precompute_full(&cost);
        let sim = Simulator::new(obj, Mixer::transverse_field(7)).unwrap();
        for seed in 0..5 {
            let angles = Angles::random(3, &mut StdRng::seed_from_u64(seed));
            let e = sim.expectation(&angles).unwrap();
            assert!(e <= sim.max_objective() + 1e-9);
            assert!(e >= sim.min_objective() - 1e-9);
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_allocation() {
        let (sim, _) = maxcut_simulator(6);
        let mut ws = sim.workspace();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(11));
        let with_ws = sim.expectation_with(&angles, &mut ws).unwrap();
        let fresh = sim.expectation(&angles).unwrap();
        assert!((with_ws - fresh).abs() < 1e-12);
        // Re-using the same workspace again gives the same answer (state fully reset).
        let again = sim.expectation_with(&angles, &mut ws).unwrap();
        assert!((again - fresh).abs() < 1e-12);
    }

    #[test]
    fn per_round_mixers_schedule_is_validated() {
        let n = 4;
        let obj = vec![1.0; 1 << n];
        let sim =
            Simulator::with_mixers(obj, vec![Mixer::transverse_field(n), Mixer::grover_full(n)])
                .unwrap();
        // Two mixers, two rounds: fine.
        assert!(sim.expectation(&Angles::zeros(2)).is_ok());
        // Two mixers, three rounds: schedule mismatch.
        let err = sim.expectation(&Angles::zeros(3)).unwrap_err();
        assert!(matches!(err, QaoaError::MixerScheduleMismatch { .. }));
    }

    #[test]
    fn basis_initial_state() {
        let (sim, _) = maxcut_simulator(5);
        let sim = sim.with_initial_state(InitialState::Basis(3)).unwrap();
        let res = sim.simulate(&Angles::zeros(0)).unwrap();
        assert!((res.amplitude(3) - Complex64::ONE).abs() < 1e-12);
        assert!((res.total_probability() - 1.0).abs() < 1e-12);
        // Out-of-range index is rejected.
        let (sim2, _) = maxcut_simulator(5);
        assert!(sim2
            .with_initial_state(InitialState::Basis(1 << 5))
            .is_err());
    }

    #[test]
    fn custom_initial_state_is_normalised() {
        let (sim, _) = maxcut_simulator(4);
        let mut custom = vec![Complex64::ZERO; 16];
        custom[0] = Complex64::new(3.0, 0.0);
        custom[1] = Complex64::new(0.0, 4.0);
        let sim = sim
            .with_initial_state(InitialState::Custom(custom))
            .unwrap();
        let res = sim.simulate(&Angles::zeros(0)).unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-12);
        assert!((res.amplitude(0).abs() - 0.6).abs() < 1e-12);
        assert!((res.amplitude(1).abs() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn custom_initial_state_validation() {
        let (sim, _) = maxcut_simulator(4);
        assert!(sim
            .clone()
            .with_initial_state(InitialState::Custom(vec![Complex64::ZERO; 5]))
            .is_err());
        assert!(sim
            .with_initial_state(InitialState::Custom(vec![Complex64::ZERO; 16]))
            .is_err());
    }

    #[test]
    fn table_driven_path_matches_dense_path() {
        // MaxCut on a cycle is heavily compressible; the two phase-separator paths
        // must agree to machine precision for every mixer family.
        for mixer in [Mixer::transverse_field(6), Mixer::grover_full(6)] {
            let (base, _) = maxcut_simulator(6);
            let table_sim =
                Simulator::new(base.objective_values().to_vec(), mixer.clone()).unwrap();
            assert!(
                table_sim.phase_classes().is_some(),
                "cycle MaxCut compresses"
            );
            let dense_sim = table_sim.clone().with_dense_phases();
            assert!(dense_sim.phase_classes().is_none());
            for seed in 0..4 {
                let angles = Angles::random(3, &mut StdRng::seed_from_u64(seed));
                let mut ws_t = table_sim.workspace();
                let mut ws_d = dense_sim.workspace();
                table_sim.evolve_into(&angles, &mut ws_t).unwrap();
                dense_sim.evolve_into(&angles, &mut ws_d).unwrap();
                let diff = juliqaoa_linalg::vector::max_abs_diff(&ws_t.state, &ws_d.state);
                assert!(diff < 1e-12, "{}: diff {diff}", mixer.name());
            }
        }
    }

    #[test]
    fn incompressible_objective_falls_back_to_dense() {
        // An injective objective cannot be phase-class compressed; the simulator must
        // still work through the dense kernel.
        let n = 5;
        let obj: Vec<f64> = (0..(1usize << n)).map(|x| x as f64 * 0.618).collect();
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        assert!(sim.phase_classes().is_none());
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(2));
        let res = sim.simulate(&angles).unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fused_grover_round_matches_unfused() {
        // The fused GM-QAOA round (phase+sum sweep, then rank-1 update) must agree
        // with the dense three-sweep evolution.
        let n = 7;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(17));
        let obj = precompute_full(&MaxCut::new(graph));
        let fused = Simulator::new(obj.clone(), Mixer::grover_full(n)).unwrap();
        assert!(fused.phase_classes().is_some());
        let unfused = fused.clone().with_dense_phases();
        for seed in 0..5 {
            let angles = Angles::random(4, &mut StdRng::seed_from_u64(100 + seed));
            let mut ws_f = fused.workspace();
            let mut ws_u = unfused.workspace();
            fused.evolve_into(&angles, &mut ws_f).unwrap();
            unfused.evolve_into(&angles, &mut ws_u).unwrap();
            assert!(juliqaoa_linalg::vector::max_abs_diff(&ws_f.state, &ws_u.state) < 1e-12);
        }
    }

    #[test]
    fn grover_and_transverse_field_agree_at_p0() {
        let n = 5;
        let cost = MaxCut::new(cycle_graph(n));
        let obj = precompute_full(&cost);
        let sim_x = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
        let sim_g = Simulator::new(obj, Mixer::grover_full(n)).unwrap();
        let a = sim_x.expectation(&Angles::zeros(0)).unwrap();
        let b = sim_g.expectation(&Angles::zeros(0)).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
