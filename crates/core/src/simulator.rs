//! The QAOA statevector simulator.
//!
//! A [`Simulator`] is assembled from the two pre-computed ingredients of Figure 1 —
//! the objective values `C(x)` over the feasible set and a [`Mixer`] — plus an initial
//! state.  Evaluating the ansatz at a set of [`Angles`] then alternates two cheap
//! kernels per round:
//!
//! 1. the phase separator `e^{-iγ H_C}`: an element-wise phase multiplication by the
//!    pre-computed objective values;
//! 2. the mixer `e^{-iβ H_M}`: Walsh–Hadamard-diagonalised for Pauli-X mixers, a rank-1
//!    update for the Grover mixer, or two subspace mat-vecs for Clique/Ring mixers.
//!
//! Nothing in the hot loop allocates; all buffers live in a caller-held [`Workspace`].

use crate::angles::Angles;
use crate::error::QaoaError;
use crate::prefix::PrefixCache;
use crate::result::SimulationResult;
use crate::workspace::Workspace;
use juliqaoa_linalg::{vector, Complex64};
use juliqaoa_mixers::Mixer;
use juliqaoa_problems::PhaseClasses;
use juliqaoa_telemetry::kernels::KERNELS;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of simulator identity tokens (see [`Simulator::identity_token`]); 0 is the
/// "unbound" sentinel of [`PrefixCache`], so tokens start at 1.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

fn fresh_token() -> u64 {
    // relaxed: uniqueness counter; fetch_add is atomic regardless of ordering and the
    // token value synchronizes with nothing.
    NEXT_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// The state the QAOA starts from.
#[derive(Clone, Debug)]
pub enum InitialState {
    /// The uniform superposition over the feasible set (the default: `|+⟩^{⊗n}` for
    /// unconstrained problems, the Dicke state `|D^n_k⟩` for weight-k problems).
    Uniform,
    /// A single feasible basis state, given by its dense index.
    Basis(usize),
    /// An arbitrary caller-supplied state (e.g. a warm start); normalised on use.
    Custom(Vec<Complex64>),
}

/// An exact QAOA statevector simulator over a pre-computed problem.
#[derive(Clone, Debug)]
pub struct Simulator {
    obj_vals: Vec<f64>,
    /// Phase-class compression of `obj_vals`, built once at construction.  `Some` for
    /// the paper's objectives (which take `O(m)` distinct values over `2ⁿ` states);
    /// `None` for effectively-injective objectives, which keep the dense `cis` path.
    phase_classes: Option<PhaseClasses>,
    mixers: Vec<Mixer>,
    initial_state: InitialState,
    dim: usize,
    /// Identity token for prefix caching; refreshed by every construction and by every
    /// mutation that changes what an evolution produces (kernel path, initial state).
    /// Clones keep the token — they are bit-identical evaluators.
    token: u64,
}

impl Simulator {
    /// Creates a simulator with a single mixer shared by every round — the common case
    /// of Listing 1 (`simulate(angles, mixer, obj_vals)`).
    pub fn new(obj_vals: Vec<f64>, mixer: Mixer) -> Result<Self, QaoaError> {
        Self::with_mixers(obj_vals, vec![mixer])
    }

    /// Creates a simulator with one mixer per round (the `mixers` array option of §3);
    /// the number of rounds simulated must then equal the number of mixers.
    pub fn with_mixers(obj_vals: Vec<f64>, mixers: Vec<Mixer>) -> Result<Self, QaoaError> {
        let phase_classes = PhaseClasses::build(&obj_vals);
        Self::from_parts(obj_vals, phase_classes, mixers)
    }

    /// Assembles a simulator from an objective vector whose [`PhaseClasses`]
    /// compression was already computed (or found non-compressible) elsewhere.
    ///
    /// This is the constructor behind instance caching: a job service that runs many
    /// jobs over the same problem instance builds the compression once, keeps it with
    /// the cached objective vector, and hands clones to each simulator instead of
    /// re-scanning the `2ⁿ` values per job.  The classes must describe exactly
    /// `obj_vals` — the per-state index table has to have the same length.
    pub fn from_parts(
        obj_vals: Vec<f64>,
        phase_classes: Option<PhaseClasses>,
        mixers: Vec<Mixer>,
    ) -> Result<Self, QaoaError> {
        if obj_vals.is_empty() {
            return Err(QaoaError::EmptyObjective);
        }
        assert!(!mixers.is_empty(), "at least one mixer is required");
        let dim = obj_vals.len();
        if let Some(classes) = &phase_classes {
            assert_eq!(
                classes.len(),
                dim,
                "phase classes describe a different objective vector"
            );
        }
        for m in &mixers {
            if m.dim() != dim {
                return Err(QaoaError::DimensionMismatch {
                    objective_len: dim,
                    mixer_dim: m.dim(),
                });
            }
        }
        Ok(Simulator {
            obj_vals,
            phase_classes,
            mixers,
            initial_state: InitialState::Uniform,
            dim,
            token: fresh_token(),
        })
    }

    /// An opaque id identifying this simulator's exact evaluation behaviour, used by
    /// [`PrefixCache`] to detect when stored checkpoints belong to a different circuit.
    /// Clones share the token; [`Simulator::with_dense_phases`] and
    /// [`Simulator::with_initial_state`] refresh it because they change the produced
    /// states (or their bit patterns).
    pub fn identity_token(&self) -> u64 {
        self.token
    }

    /// Disables phase-class compression, forcing the dense per-amplitude `cis` kernel.
    ///
    /// The table-driven path is equivalent to within machine precision (the same
    /// `cis(-γ·value)` factors are applied, computed once per distinct value); this
    /// toggle exists for benchmarking the two paths against each other and as an
    /// escape hatch.
    pub fn with_dense_phases(mut self) -> Self {
        self.phase_classes = None;
        self.token = fresh_token();
        self
    }

    /// The phase-class compression in use, if the objective was compressible.
    pub fn phase_classes(&self) -> Option<&PhaseClasses> {
        self.phase_classes.as_ref()
    }

    /// Replaces the initial state (the `initial_state` keyword of `simulate()`); used for
    /// warm starts and for starting constrained problems in specific feasible states.
    pub fn with_initial_state(mut self, init: InitialState) -> Result<Self, QaoaError> {
        match &init {
            InitialState::Uniform => {}
            InitialState::Basis(i) => {
                if *i >= self.dim {
                    return Err(QaoaError::InvalidInitialState(format!(
                        "basis index {i} out of range for dimension {}",
                        self.dim
                    )));
                }
            }
            InitialState::Custom(v) => {
                if v.len() != self.dim {
                    return Err(QaoaError::InvalidInitialState(format!(
                        "custom state has length {} but the feasible set has {} states",
                        v.len(),
                        self.dim
                    )));
                }
                if vector::norm(v) == 0.0 {
                    return Err(QaoaError::InvalidInitialState(
                        "custom state has zero norm".into(),
                    ));
                }
            }
        }
        self.initial_state = init;
        self.token = fresh_token();
        Ok(self)
    }

    /// Dimension of the feasible set (and of every statevector involved).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The pre-computed objective values.
    pub fn objective_values(&self) -> &[f64] {
        &self.obj_vals
    }

    /// The mixer used at a given round.
    pub fn mixers(&self) -> &[Mixer] {
        &self.mixers
    }

    /// Largest objective value (the optimum for maximization problems).
    pub fn max_objective(&self) -> f64 {
        self.obj_vals
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest objective value.
    pub fn min_objective(&self) -> f64 {
        self.obj_vals.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Allocates a workspace matched to this simulator's dimension.
    pub fn workspace(&self) -> Workspace {
        Workspace::new(self.dim)
    }

    /// Allocates a default-budget [`PrefixCache`] for [`Simulator::evolve_cached`].
    pub fn prefix_cache(&self) -> PrefixCache {
        PrefixCache::new()
    }

    /// Writes the initial state into `state`.
    pub fn prepare_initial(&self, state: &mut [Complex64]) {
        assert_eq!(state.len(), self.dim);
        match &self.initial_state {
            InitialState::Uniform => vector::fill_uniform(state),
            InitialState::Basis(i) => {
                state.iter_mut().for_each(|z| *z = Complex64::ZERO);
                state[*i] = Complex64::ONE;
            }
            InitialState::Custom(v) => {
                state.copy_from_slice(v);
                vector::normalize(state);
            }
        }
    }

    /// Returns the mixer to use for `round` out of `p`, validating the schedule.
    pub(crate) fn mixer_for_round(&self, round: usize, p: usize) -> Result<&Mixer, QaoaError> {
        if self.mixers.len() == 1 {
            Ok(&self.mixers[0])
        } else if self.mixers.len() == p {
            Ok(&self.mixers[round])
        } else {
            Err(QaoaError::MixerScheduleMismatch {
                mixers: self.mixers.len(),
                rounds: p,
            })
        }
    }

    /// Applies the phase separator `e^{-iγ H_C}` to `ws.state` (table-driven when the
    /// objective compresses, dense `cis` otherwise).
    fn apply_phase_separator(&self, gamma: f64, ws: &mut Workspace) {
        match &self.phase_classes {
            Some(classes) => {
                KERNELS.phase_table_applies.inc();
                vector::build_phase_table(classes.distinct_values(), gamma, &mut ws.phase_table);
                vector::apply_phases_indexed(
                    &mut ws.state,
                    classes.class_indices(),
                    &ws.phase_table,
                );
            }
            None => {
                KERNELS.dense_phase_applies.inc();
                vector::apply_phases(&mut ws.state, &self.obj_vals, gamma);
            }
        }
    }

    /// Applies one full QAOA round (phase separator, then mixer) to `ws.state`.
    ///
    /// This is the single round kernel shared by the cold and the prefix-cached
    /// evolution paths, which is what makes the two bit-identical: a resumed
    /// evaluation runs exactly these operations on a byte copy of the state a cold
    /// evaluation would have reached.
    fn apply_round_kernels(&self, gamma: f64, beta: f64, mixer: &Mixer, ws: &mut Workspace) {
        if let (Some(classes), Mixer::Grover(grover)) = (&self.phase_classes, mixer) {
            // Fused GM-QAOA round: one cis per distinct objective value, and the
            // phase sweep also accumulates the amplitude sum the Grover rank-1
            // update needs — two passes over the state instead of three.
            KERNELS.fused_grover_rounds.inc();
            KERNELS.phase_table_applies.inc();
            vector::build_phase_table(classes.distinct_values(), gamma, &mut ws.phase_table);
            let sum = vector::apply_phases_indexed_sum(
                &mut ws.state,
                classes.class_indices(),
                &ws.phase_table,
            );
            grover.apply_evolution_with_sum(beta, &mut ws.state, sum);
        } else {
            self.apply_phase_separator(gamma, ws);
            mixer.apply_evolution(beta, &mut ws.state, &mut ws.scratch);
        }
    }

    /// Evolves the initial state through all `p` rounds, leaving `|β,γ⟩` in `ws.state`.
    ///
    /// With a compressible objective each round's phase separator is table-driven
    /// (`O(#distinct)` trigonometry plus one gather-multiply sweep), and Grover-mixer
    /// rounds fuse the separator with the mixer's overlap reduction so a full GM-QAOA
    /// round costs two passes over the state instead of three.  The dense per-amplitude
    /// `cis` path remains for non-compressible objectives; both paths agree to within
    /// `1e-12` (the phase factors are bit-identical, only reduction order can differ).
    pub fn evolve_into(&self, angles: &Angles, ws: &mut Workspace) -> Result<(), QaoaError> {
        ws.resize(self.dim);
        self.prepare_initial(&mut ws.state);
        let p = angles.p();
        for round in 0..p {
            let (gamma, beta) = angles.round(round);
            let mixer = self.mixer_for_round(round, p)?;
            self.apply_round_kernels(gamma, beta, mixer, ws);
        }
        Ok(())
    }

    /// [`Simulator::evolve_into`] with prefix-state reuse: when the leading rounds of
    /// `angles` agree bit-for-bit with what `cache` recorded from earlier evaluations
    /// of this simulator, the evolution resumes from the deepest matching checkpoint
    /// instead of round 0.
    ///
    /// The result in `ws.state` is **bit-identical** to a cold [`Simulator::evolve_into`]
    /// — same kernels, same reduction order, just skipped rounds (see
    /// [`PrefixCache`] for the invalidation rule).  The cache is bound to this
    /// simulator's [`Simulator::identity_token`]; handing it a cache last used with a
    /// different simulator clears it rather than replaying foreign checkpoints.
    pub fn evolve_cached(
        &self,
        angles: &Angles,
        ws: &mut Workspace,
        cache: &mut PrefixCache,
    ) -> Result<(), QaoaError> {
        cache.bind(self.token, self.dim);
        let k = cache.matching_rounds(angles);
        self.evolve_from_round(k, angles, ws, cache)
    }

    /// Resumes the evolution from the checkpoint holding the state after
    /// `start_round` rounds and replays rounds `start_round..p`, recording new
    /// checkpoints per the cache's write policy.
    ///
    /// Most callers want [`Simulator::evolve_cached`], which picks the deepest usable
    /// `start_round` automatically.
    ///
    /// # Panics
    /// Panics if `start_round` exceeds `angles.p()` or the cache's bit-matching
    /// checkpoint prefix for these angles ([`PrefixCache`] docs).
    pub fn evolve_from_round(
        &self,
        start_round: usize,
        angles: &Angles,
        ws: &mut Workspace,
        cache: &mut PrefixCache,
    ) -> Result<(), QaoaError> {
        let p = angles.p();
        assert!(start_round <= p, "cannot resume beyond the final round");
        cache.bind(self.token, self.dim);
        assert!(
            start_round <= cache.matching_rounds(angles),
            "no matching checkpoint for a resume at round {start_round}"
        );
        // Validate the mixer schedule up front: a resumed evaluation must fail
        // exactly when the cold one would, even if every round is skipped.
        if p > 0 {
            self.mixer_for_round(p - 1, p)?;
        }
        ws.resize(self.dim);
        let k = start_round;

        if k == p {
            // Full hit: the stored prefix covers every round.
            if p == 0 {
                self.prepare_initial(&mut ws.state);
            } else {
                ws.state.copy_from_slice(cache.state_after(p));
                cache.record_hit(p, false);
            }
            cache.note_eval(angles);
            return Ok(());
        }

        // Tail fast path: all but the final round match and the stored final-round
        // sub-checkpoint matches the final γ — only the mixer's tail end replays.
        if p > 0 && k == p - 1 {
            let (gamma, beta) = angles.round(p - 1);
            let mixer = self.mixer_for_round(p - 1, p)?;
            let mut served = false;
            if let Some((kind, tail_state)) = cache.matching_tail(p - 1, gamma) {
                match (kind, mixer) {
                    (crate::prefix::TailKind::Eigenbasis, m) if m.eigenbasis_supported() => {
                        ws.state.copy_from_slice(tail_state);
                        m.evolve_from_eigenbasis(beta, &mut ws.state);
                        served = true;
                    }
                    (crate::prefix::TailKind::PostPhase { fused_sum }, Mixer::Grover(grover)) => {
                        ws.state.copy_from_slice(tail_state);
                        match fused_sum {
                            // The fused table round already summed the amplitudes.
                            Some(sum) => grover.apply_evolution_with_sum(beta, &mut ws.state, sum),
                            // Dense path: the rank-1 update recomputes its sum with
                            // the same kernel the cold evolution uses.
                            None => grover.apply_evolution(beta, &mut ws.state),
                        }
                        served = true;
                    }
                    _ => {}
                }
            }
            if served {
                cache.record_hit(p - 1, true);
                cache.note_eval(angles);
                return Ok(());
            }
        }

        let write = cache.plan_writes(angles, k);
        if write {
            cache.truncate_to(k);
        }
        if k > 0 {
            ws.state.copy_from_slice(cache.state_after(k));
            cache.record_hit(k, false);
        } else {
            self.prepare_initial(&mut ws.state);
            cache.record_miss();
        }
        for round in k..p {
            let (gamma, beta) = angles.round(round);
            let mixer = self.mixer_for_round(round, p)?;
            let is_final = round + 1 == p;
            if is_final && write && mixer.eigenbasis_supported() {
                // Split the final round at the mixer eigenbasis so a β-only sweep
                // can replay just the diagonal phase and the rotation back.
                self.apply_phase_separator(gamma, ws);
                mixer.to_eigenbasis(&mut ws.state);
                cache.store_tail(round, gamma, crate::prefix::TailKind::Eigenbasis, &ws.state);
                mixer.evolve_from_eigenbasis(beta, &mut ws.state);
            } else if let (true, true, Mixer::Grover(grover)) = (is_final, write, mixer) {
                // Grover final round: checkpoint straight after the phase separator
                // so a β-only sweep replays just the rank-1 update.
                let fused_sum = match &self.phase_classes {
                    Some(classes) => {
                        KERNELS.phase_table_applies.inc();
                        vector::build_phase_table(
                            classes.distinct_values(),
                            gamma,
                            &mut ws.phase_table,
                        );
                        Some(vector::apply_phases_indexed_sum(
                            &mut ws.state,
                            classes.class_indices(),
                            &ws.phase_table,
                        ))
                    }
                    None => {
                        KERNELS.dense_phase_applies.inc();
                        vector::apply_phases(&mut ws.state, &self.obj_vals, gamma);
                        None
                    }
                };
                cache.store_tail(
                    round,
                    gamma,
                    crate::prefix::TailKind::PostPhase { fused_sum },
                    &ws.state,
                );
                match fused_sum {
                    Some(sum) => grover.apply_evolution_with_sum(beta, &mut ws.state, sum),
                    None => grover.apply_evolution(beta, &mut ws.state),
                }
            } else {
                self.apply_round_kernels(gamma, beta, mixer, ws);
                if write && !is_final {
                    cache.push_checkpoint(gamma, beta, &ws.state);
                }
            }
        }
        Ok(())
    }

    /// The expectation value with prefix-state reuse; bit-identical to
    /// [`Simulator::expectation_with`] (see [`Simulator::evolve_cached`]).
    pub fn expectation_cached(
        &self,
        angles: &Angles,
        ws: &mut Workspace,
        cache: &mut PrefixCache,
    ) -> Result<f64, QaoaError> {
        self.evolve_cached(angles, ws, cache)?;
        Ok(vector::diagonal_expectation(&ws.state, &self.obj_vals))
    }

    /// The expectation value `⟨β,γ|C|β,γ⟩` using a caller-held workspace (the zero
    /// allocation path used inside the angle-finding loop).
    pub fn expectation_with(&self, angles: &Angles, ws: &mut Workspace) -> Result<f64, QaoaError> {
        self.evolve_into(angles, ws)?;
        Ok(vector::diagonal_expectation(&ws.state, &self.obj_vals))
    }

    /// Convenience wrapper allocating a fresh workspace.
    pub fn expectation(&self, angles: &Angles) -> Result<f64, QaoaError> {
        let mut ws = self.workspace();
        self.expectation_with(angles, &mut ws)
    }

    /// Full simulation returning a [`SimulationResult`] (Listing 1's `simulate`).
    pub fn simulate(&self, angles: &Angles) -> Result<SimulationResult, QaoaError> {
        let mut ws = self.workspace();
        self.simulate_with(angles, &mut ws)
    }

    /// Full simulation re-using a workspace; the statevector is copied into the result.
    pub fn simulate_with(
        &self,
        angles: &Angles,
        ws: &mut Workspace,
    ) -> Result<SimulationResult, QaoaError> {
        self.evolve_into(angles, ws)?;
        Ok(SimulationResult::from_state(
            ws.state.clone(),
            &self.obj_vals,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_graphs::{cycle_graph, erdos_renyi};
    use juliqaoa_problems::{precompute_full, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn maxcut_simulator(n: usize) -> (Simulator, f64) {
        let graph = cycle_graph(n);
        let cost = MaxCut::new(graph);
        let optimum = cost.optimal_value();
        let obj = precompute_full(&cost);
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        (sim, optimum)
    }

    #[test]
    fn construction_validates_dimensions() {
        let obj = vec![0.0; 8];
        assert!(Simulator::new(obj.clone(), Mixer::transverse_field(3)).is_ok());
        let err = Simulator::new(obj, Mixer::transverse_field(2)).unwrap_err();
        assert!(matches!(err, QaoaError::DimensionMismatch { .. }));
        assert!(matches!(
            Simulator::new(vec![], Mixer::transverse_field(2)),
            Err(QaoaError::EmptyObjective)
        ));
    }

    #[test]
    fn from_parts_with_shared_classes_matches_direct_construction() {
        let (direct, _) = maxcut_simulator(6);
        let classes = PhaseClasses::build(direct.objective_values());
        assert!(classes.is_some());
        let shared = Simulator::from_parts(
            direct.objective_values().to_vec(),
            classes,
            vec![Mixer::transverse_field(6)],
        )
        .unwrap();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(5));
        let a = direct.expectation(&angles).unwrap();
        let b = shared.expectation(&angles).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_mismatched_classes() {
        let (sim, _) = maxcut_simulator(6);
        let wrong = PhaseClasses::build(&[0.0, 1.0, 0.0, 1.0]);
        let _ = Simulator::from_parts(
            sim.objective_values().to_vec(),
            wrong,
            vec![Mixer::transverse_field(6)],
        );
    }

    #[test]
    fn zero_rounds_reproduces_initial_expectation() {
        let (sim, _) = maxcut_simulator(6);
        // p = 0: expectation is the mean objective value over the uniform superposition.
        let mean: f64 = sim.objective_values().iter().sum::<f64>() / sim.dim() as f64;
        let e = sim.expectation(&Angles::zeros(0)).unwrap();
        assert!((e - mean).abs() < 1e-12);
    }

    #[test]
    fn zero_angles_leave_expectation_at_mean() {
        let (sim, _) = maxcut_simulator(6);
        let mean: f64 = sim.objective_values().iter().sum::<f64>() / sim.dim() as f64;
        let e = sim.expectation(&Angles::zeros(3)).unwrap();
        assert!((e - mean).abs() < 1e-10);
    }

    #[test]
    fn simulation_preserves_norm() {
        let (sim, _) = maxcut_simulator(6);
        let angles = Angles::random(4, &mut StdRng::seed_from_u64(7));
        let res = sim.simulate(&angles).unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn single_round_qaoa_improves_over_random_guessing() {
        // A modest p=1 QAOA with reasonable angles should beat the uniform-superposition
        // mean for MaxCut on a cycle.
        let (sim, optimum) = maxcut_simulator(8);
        let mean: f64 = sim.objective_values().iter().sum::<f64>() / sim.dim() as f64;
        let mut best = f64::NEG_INFINITY;
        // Coarse grid over (β, γ) — the point is existence of an improving angle pair.
        for ib in 0..12 {
            for ig in 0..12 {
                let beta = ib as f64 * std::f64::consts::PI / 12.0;
                let gamma = ig as f64 * std::f64::consts::PI / 12.0;
                let e = sim
                    .expectation(&Angles::new(vec![beta], vec![gamma]))
                    .unwrap();
                best = best.max(e);
            }
        }
        assert!(best > mean + 0.3, "best {best} should exceed mean {mean}");
        assert!(best <= optimum + 1e-9);
    }

    #[test]
    fn expectation_bounded_by_objective_range() {
        let graph = erdos_renyi(7, 0.5, &mut StdRng::seed_from_u64(3));
        let cost = MaxCut::new(graph);
        let obj = precompute_full(&cost);
        let sim = Simulator::new(obj, Mixer::transverse_field(7)).unwrap();
        for seed in 0..5 {
            let angles = Angles::random(3, &mut StdRng::seed_from_u64(seed));
            let e = sim.expectation(&angles).unwrap();
            assert!(e <= sim.max_objective() + 1e-9);
            assert!(e >= sim.min_objective() - 1e-9);
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_allocation() {
        let (sim, _) = maxcut_simulator(6);
        let mut ws = sim.workspace();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(11));
        let with_ws = sim.expectation_with(&angles, &mut ws).unwrap();
        let fresh = sim.expectation(&angles).unwrap();
        assert!((with_ws - fresh).abs() < 1e-12);
        // Re-using the same workspace again gives the same answer (state fully reset).
        let again = sim.expectation_with(&angles, &mut ws).unwrap();
        assert!((again - fresh).abs() < 1e-12);
    }

    #[test]
    fn per_round_mixers_schedule_is_validated() {
        let n = 4;
        let obj = vec![1.0; 1 << n];
        let sim =
            Simulator::with_mixers(obj, vec![Mixer::transverse_field(n), Mixer::grover_full(n)])
                .unwrap();
        // Two mixers, two rounds: fine.
        assert!(sim.expectation(&Angles::zeros(2)).is_ok());
        // Two mixers, three rounds: schedule mismatch.
        let err = sim.expectation(&Angles::zeros(3)).unwrap_err();
        assert!(matches!(err, QaoaError::MixerScheduleMismatch { .. }));
    }

    #[test]
    fn basis_initial_state() {
        let (sim, _) = maxcut_simulator(5);
        let sim = sim.with_initial_state(InitialState::Basis(3)).unwrap();
        let res = sim.simulate(&Angles::zeros(0)).unwrap();
        assert!((res.amplitude(3) - Complex64::ONE).abs() < 1e-12);
        assert!((res.total_probability() - 1.0).abs() < 1e-12);
        // Out-of-range index is rejected.
        let (sim2, _) = maxcut_simulator(5);
        assert!(sim2
            .with_initial_state(InitialState::Basis(1 << 5))
            .is_err());
    }

    #[test]
    fn custom_initial_state_is_normalised() {
        let (sim, _) = maxcut_simulator(4);
        let mut custom = vec![Complex64::ZERO; 16];
        custom[0] = Complex64::new(3.0, 0.0);
        custom[1] = Complex64::new(0.0, 4.0);
        let sim = sim
            .with_initial_state(InitialState::Custom(custom))
            .unwrap();
        let res = sim.simulate(&Angles::zeros(0)).unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-12);
        assert!((res.amplitude(0).abs() - 0.6).abs() < 1e-12);
        assert!((res.amplitude(1).abs() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn custom_initial_state_validation() {
        let (sim, _) = maxcut_simulator(4);
        assert!(sim
            .clone()
            .with_initial_state(InitialState::Custom(vec![Complex64::ZERO; 5]))
            .is_err());
        assert!(sim
            .with_initial_state(InitialState::Custom(vec![Complex64::ZERO; 16]))
            .is_err());
    }

    #[test]
    fn table_driven_path_matches_dense_path() {
        // MaxCut on a cycle is heavily compressible; the two phase-separator paths
        // must agree to machine precision for every mixer family.
        for mixer in [Mixer::transverse_field(6), Mixer::grover_full(6)] {
            let (base, _) = maxcut_simulator(6);
            let table_sim =
                Simulator::new(base.objective_values().to_vec(), mixer.clone()).unwrap();
            assert!(
                table_sim.phase_classes().is_some(),
                "cycle MaxCut compresses"
            );
            let dense_sim = table_sim.clone().with_dense_phases();
            assert!(dense_sim.phase_classes().is_none());
            for seed in 0..4 {
                let angles = Angles::random(3, &mut StdRng::seed_from_u64(seed));
                let mut ws_t = table_sim.workspace();
                let mut ws_d = dense_sim.workspace();
                table_sim.evolve_into(&angles, &mut ws_t).unwrap();
                dense_sim.evolve_into(&angles, &mut ws_d).unwrap();
                let diff = juliqaoa_linalg::vector::max_abs_diff(&ws_t.state, &ws_d.state);
                assert!(diff < 1e-12, "{}: diff {diff}", mixer.name());
            }
        }
    }

    #[test]
    fn incompressible_objective_falls_back_to_dense() {
        // An injective objective cannot be phase-class compressed; the simulator must
        // still work through the dense kernel.
        let n = 5;
        let obj: Vec<f64> = (0..(1usize << n)).map(|x| x as f64 * 0.618).collect();
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        assert!(sim.phase_classes().is_none());
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(2));
        let res = sim.simulate(&angles).unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fused_grover_round_matches_unfused() {
        // The fused GM-QAOA round (phase+sum sweep, then rank-1 update) must agree
        // with the dense three-sweep evolution.
        let n = 7;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(17));
        let obj = precompute_full(&MaxCut::new(graph));
        let fused = Simulator::new(obj.clone(), Mixer::grover_full(n)).unwrap();
        assert!(fused.phase_classes().is_some());
        let unfused = fused.clone().with_dense_phases();
        for seed in 0..5 {
            let angles = Angles::random(4, &mut StdRng::seed_from_u64(100 + seed));
            let mut ws_f = fused.workspace();
            let mut ws_u = unfused.workspace();
            fused.evolve_into(&angles, &mut ws_f).unwrap();
            unfused.evolve_into(&angles, &mut ws_u).unwrap();
            assert!(juliqaoa_linalg::vector::max_abs_diff(&ws_f.state, &ws_u.state) < 1e-12);
        }
    }

    fn assert_states_bit_equal(a: &[Complex64], b: &[Complex64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn cached_sweep_is_bit_identical_to_cold_evolution() {
        // A suffix sweep over the deepest round's angles: after the first two
        // evaluations the cache serves every point from checkpoints, and every state
        // must still match a cold evolution bit-for-bit.
        for mixer in [
            Mixer::transverse_field(6),
            Mixer::grover_full(6),
            Mixer::PauliX(juliqaoa_mixers::PauliXMixer::uniform_products(6, &[1, 2])),
        ] {
            let (base, _) = maxcut_simulator(6);
            let sim = Simulator::new(base.objective_values().to_vec(), mixer.clone()).unwrap();
            let mut cache = sim.prefix_cache();
            let mut ws_c = sim.workspace();
            let mut ws_cold = sim.workspace();
            let base_angles = Angles::random(3, &mut StdRng::seed_from_u64(31));
            for step in 0..12 {
                let mut flat = base_angles.to_flat();
                // Vary β_3 fastest, γ_3 every 4 steps — the suffix-major sweep shape.
                flat[2] += 0.1 * (step % 4) as f64;
                flat[5] += 0.2 * (step / 4) as f64;
                let angles = Angles::from_flat(&flat);
                sim.evolve_cached(&angles, &mut ws_c, &mut cache).unwrap();
                sim.evolve_into(&angles, &mut ws_cold).unwrap();
                assert_states_bit_equal(&ws_c.state, &ws_cold.state);
            }
            let stats = cache.stats();
            assert!(stats.hits >= 9, "{}: hits {}", mixer.name(), stats.hits);
            if mixer.eigenbasis_supported() {
                assert!(stats.tail_hits > 0, "{}: no tail hits", mixer.name());
            }
        }
    }

    #[test]
    fn cached_full_repeat_and_divergence_match_cold() {
        let (sim, _) = maxcut_simulator(6);
        let mut cache = sim.prefix_cache();
        let mut ws_c = sim.workspace();
        let mut ws_cold = sim.workspace();
        let a = Angles::random(4, &mut StdRng::seed_from_u64(5));
        let mut b_flat = a.to_flat();
        b_flat[0] += 0.5; // diverge at round 0: a complete miss
        let b = Angles::from_flat(&b_flat);
        for angles in [&a, &a, &b, &a, &b, &b] {
            sim.evolve_cached(angles, &mut ws_c, &mut cache).unwrap();
            sim.evolve_into(angles, &mut ws_cold).unwrap();
            assert_states_bit_equal(&ws_c.state, &ws_cold.state);
        }
        // Expectations ride on the same state, so they are bit-identical too.
        let e_c = sim.expectation_cached(&a, &mut ws_c, &mut cache).unwrap();
        let e = sim.expectation_with(&a, &mut ws_cold).unwrap();
        assert_eq!(e_c.to_bits(), e.to_bits());
    }

    #[test]
    fn cache_bound_to_another_simulator_is_cleared_not_replayed() {
        let (sim_a, _) = maxcut_simulator(6);
        let graph = erdos_renyi(6, 0.5, &mut StdRng::seed_from_u64(77));
        let sim_b = Simulator::new(
            precompute_full(&MaxCut::new(graph)),
            Mixer::transverse_field(6),
        )
        .unwrap();
        assert_ne!(sim_a.identity_token(), sim_b.identity_token());
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(9));
        let mut cache = sim_a.prefix_cache();
        let mut ws = sim_a.workspace();
        // Warm the cache on sim_a with two identical evaluations.
        sim_a.evolve_cached(&angles, &mut ws, &mut cache).unwrap();
        sim_a.evolve_cached(&angles, &mut ws, &mut cache).unwrap();
        assert!(cache.stats().hits > 0);
        // The same angles on sim_b must not reuse sim_a's checkpoints.
        let mut ws_b = sim_b.workspace();
        sim_b.evolve_cached(&angles, &mut ws_b, &mut cache).unwrap();
        let mut ws_cold = sim_b.workspace();
        sim_b.evolve_into(&angles, &mut ws_cold).unwrap();
        assert_states_bit_equal(&ws_b.state, &ws_cold.state);
        // Clones, by contrast, share the identity and may reuse.
        let clone = sim_a.clone();
        assert_eq!(clone.identity_token(), sim_a.identity_token());
    }

    #[test]
    fn zero_budget_cache_still_gives_identical_results() {
        let (sim, _) = maxcut_simulator(5);
        let mut cache = PrefixCache::with_budget(0);
        let mut ws_c = sim.workspace();
        let mut ws_cold = sim.workspace();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(3));
        for _ in 0..3 {
            sim.evolve_cached(&angles, &mut ws_c, &mut cache).unwrap();
            sim.evolve_into(&angles, &mut ws_cold).unwrap();
            assert_states_bit_equal(&ws_c.state, &ws_cold.state);
        }
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.checkpoints(), 0);
    }

    #[test]
    fn cached_schedule_mismatch_errors_like_cold() {
        let n = 4;
        let obj = vec![1.0; 1 << n];
        let sim =
            Simulator::with_mixers(obj, vec![Mixer::transverse_field(n), Mixer::grover_full(n)])
                .unwrap();
        let mut cache = sim.prefix_cache();
        let mut ws = sim.workspace();
        // Valid two-round evaluation warms the cache.
        sim.evolve_cached(&Angles::zeros(2), &mut ws, &mut cache)
            .unwrap();
        // Three rounds is a schedule mismatch on the cached path too.
        let err = sim
            .evolve_cached(&Angles::zeros(3), &mut ws, &mut cache)
            .unwrap_err();
        assert!(matches!(err, QaoaError::MixerScheduleMismatch { .. }));
    }

    #[test]
    fn grover_and_transverse_field_agree_at_p0() {
        let n = 5;
        let cost = MaxCut::new(cycle_graph(n));
        let obj = precompute_full(&cost);
        let sim_x = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
        let sim_g = Simulator::new(obj, Mixer::grover_full(n)).unwrap();
        let a = sim_x.expectation(&Angles::zeros(0)).unwrap();
        let b = sim_g.expectation(&Angles::zeros(0)).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
