//! Adjoint-mode analytic gradients of the QAOA expectation value.
//!
//! The paper leans on Enzyme automatic differentiation to get the full gradient of
//! `⟨β,γ|C|β,γ⟩` at the cost of a single expectation evaluation plus constant overhead,
//! versus the `O(p)` evaluations finite differences need (§2.3, Figure 5).  Enzyme is a
//! Julia/LLVM tool, so this crate substitutes the *adjoint-state method*: a reverse sweep
//! over the circuit that re-uses the forward statevector and costs roughly three forward
//! passes regardless of `p` — the same cost profile, and exact to machine precision.
//!
//! Derivation: with `|ψ_t⟩` the state after the `t`-th unitary and
//! `|λ_t⟩ = (V_{2p}⋯V_{t+1})† C |ψ_{2p}⟩`, each parameter `θ_t` of `V_t = e^{-iθ_t A_t}`
//! contributes `∂E/∂θ_t = 2·Im⟨λ_t|A_t|ψ_t⟩`.  Sweeping `t` from `2p` down to `1`, the
//! pair `(ψ, λ)` is rolled back with inverse evolutions, so only four state-sized
//! buffers are ever needed (all held by the caller's [`Workspace`]).

use crate::angles::Angles;
use crate::error::QaoaError;
use crate::prefix::PrefixCache;
use crate::simulator::Simulator;
use crate::workspace::Workspace;
use juliqaoa_linalg::vector;

/// The expectation value and its gradient with respect to all `2p` angles.
#[derive(Clone, Debug, PartialEq)]
pub struct AdjointGradient {
    /// The expectation value `⟨β,γ|C|β,γ⟩` at the evaluation point.
    pub expectation: f64,
    /// `∂E/∂β_i` for each round.
    pub grad_betas: Vec<f64>,
    /// `∂E/∂γ_i` for each round.
    pub grad_gammas: Vec<f64>,
}

impl AdjointGradient {
    /// Gradient in the flat layout `[∂β_1…∂β_p, ∂γ_1…∂γ_p]` matching
    /// [`Angles::to_flat`].
    pub fn to_flat(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 * self.grad_betas.len());
        v.extend_from_slice(&self.grad_betas);
        v.extend_from_slice(&self.grad_gammas);
        v
    }

    /// Euclidean norm of the full gradient.
    pub fn norm(&self) -> f64 {
        self.to_flat().iter().map(|g| g * g).sum::<f64>().sqrt()
    }
}

/// Computes the expectation value and its full gradient in a single reverse sweep.
///
/// The workspace provides all scratch storage; no allocation happens beyond the two
/// small output vectors.
pub fn adjoint_gradient(
    sim: &Simulator,
    angles: &Angles,
    ws: &mut Workspace,
) -> Result<AdjointGradient, QaoaError> {
    // Forward pass: ws.state = |β,γ⟩ (also validates the mixer schedule).
    sim.evolve_into(angles, ws)?;
    adjoint_reverse_sweep(sim, angles, ws)
}

/// [`adjoint_gradient`] with a prefix-cached forward pass.
///
/// The common optimizer pattern evaluates the objective at a point and then asks for
/// the gradient at the *same* point; routing the forward pass through the
/// [`PrefixCache`] turns that second full evolution into a checkpoint restore.  The
/// reverse sweep is untouched (it rolls the state back in place and never consults the
/// cache), so the result is bit-identical to [`adjoint_gradient`].
pub fn adjoint_gradient_cached(
    sim: &Simulator,
    angles: &Angles,
    ws: &mut Workspace,
    cache: &mut PrefixCache,
) -> Result<AdjointGradient, QaoaError> {
    sim.evolve_cached(angles, ws, cache)?;
    adjoint_reverse_sweep(sim, angles, ws)
}

/// The shared reverse sweep: consumes `ws.state = |β,γ⟩` and produces the gradient.
fn adjoint_reverse_sweep(
    sim: &Simulator,
    angles: &Angles,
    ws: &mut Workspace,
) -> Result<AdjointGradient, QaoaError> {
    let p = angles.p();
    let obj = sim.objective_values();

    // λ = C·ψ  and  E = ⟨ψ|C|ψ⟩.
    ws.lambda.copy_from_slice(&ws.state);
    for (z, &c) in ws.lambda.iter_mut().zip(obj.iter()) {
        *z = z.scale(c);
    }
    let expectation = vector::inner(&ws.state, &ws.lambda).re;

    let mut grad_betas = vec![0.0; p];
    let mut grad_gammas = vec![0.0; p];

    // Reverse sweep: undo each unitary on both ψ and λ, harvesting the gradient of its
    // parameter just before undoing it.
    for round in (0..p).rev() {
        let (gamma, beta) = angles.round(round);
        let mixer = sim.mixer_for_round(round, p)?;

        // --- β of this round: A = H_M ------------------------------------------------
        ws.tmp.copy_from_slice(&ws.state);
        mixer.apply_hamiltonian(&mut ws.tmp, &mut ws.scratch);
        grad_betas[round] = 2.0 * vector::inner(&ws.lambda, &ws.tmp).im;
        // Roll both vectors back through the mixer.
        mixer.apply_inverse_evolution(beta, &mut ws.state, &mut ws.scratch);
        mixer.apply_inverse_evolution(beta, &mut ws.lambda, &mut ws.scratch);

        // --- γ of this round: A = H_C = diag(C) ---------------------------------------
        ws.tmp.copy_from_slice(&ws.state);
        for (z, &c) in ws.tmp.iter_mut().zip(obj.iter()) {
            *z = z.scale(c);
        }
        grad_gammas[round] = 2.0 * vector::inner(&ws.lambda, &ws.tmp).im;
        // Roll both vectors back through the phase separator, table-driven when the
        // objective is compressible (the table is built once and applied twice).
        match sim.phase_classes() {
            Some(classes) => {
                vector::build_phase_table(classes.distinct_values(), -gamma, &mut ws.phase_table);
                vector::apply_phases_indexed(
                    &mut ws.state,
                    classes.class_indices(),
                    &ws.phase_table,
                );
                vector::apply_phases_indexed(
                    &mut ws.lambda,
                    classes.class_indices(),
                    &ws.phase_table,
                );
            }
            None => {
                vector::apply_phases(&mut ws.state, obj, -gamma);
                vector::apply_phases(&mut ws.lambda, obj, -gamma);
            }
        }
    }

    Ok(AdjointGradient {
        expectation,
        grad_betas,
        grad_gammas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use juliqaoa_combinatorics::DickeSubspace;
    use juliqaoa_graphs::erdos_renyi;
    use juliqaoa_mixers::Mixer;
    use juliqaoa_problems::{precompute_dicke, precompute_full, DensestKSubgraph, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite differences of the expectation value, the O(p) reference.
    fn finite_difference(sim: &Simulator, angles: &Angles, eps: f64) -> Vec<f64> {
        let flat = angles.to_flat();
        let mut grad = vec![0.0; flat.len()];
        let mut ws = sim.workspace();
        for i in 0..flat.len() {
            let mut plus = flat.clone();
            plus[i] += eps;
            let mut minus = flat.clone();
            minus[i] -= eps;
            let ep = sim
                .expectation_with(&Angles::from_flat(&plus), &mut ws)
                .unwrap();
            let em = sim
                .expectation_with(&Angles::from_flat(&minus), &mut ws)
                .unwrap();
            grad[i] = (ep - em) / (2.0 * eps);
        }
        grad
    }

    fn assert_gradients_close(analytic: &[f64], numeric: &[f64], tol: f64) {
        assert_eq!(analytic.len(), numeric.len());
        for (i, (a, n)) in analytic.iter().zip(numeric.iter()).enumerate() {
            assert!(
                (a - n).abs() < tol,
                "component {i}: adjoint {a} vs finite difference {n}"
            );
        }
    }

    #[test]
    fn matches_finite_difference_for_maxcut_transverse_field() {
        let n = 6;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(21));
        let obj = precompute_full(&MaxCut::new(graph));
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(5));
        let mut ws = sim.workspace();
        let grad = adjoint_gradient(&sim, &angles, &mut ws).unwrap();
        let fd = finite_difference(&sim, &angles, 1e-5);
        assert_gradients_close(&grad.to_flat(), &fd, 1e-5);
        // Expectation agrees with a direct evaluation.
        let direct = sim.expectation(&angles).unwrap();
        assert!((grad.expectation - direct).abs() < 1e-10);
    }

    #[test]
    fn matches_finite_difference_for_grover_mixer() {
        let n = 5;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(33));
        let obj = precompute_full(&MaxCut::new(graph));
        let sim = Simulator::new(obj, Mixer::grover_full(n)).unwrap();
        let angles = Angles::random(4, &mut StdRng::seed_from_u64(6));
        let mut ws = sim.workspace();
        let grad = adjoint_gradient(&sim, &angles, &mut ws).unwrap();
        let fd = finite_difference(&sim, &angles, 1e-5);
        assert_gradients_close(&grad.to_flat(), &fd, 1e-5);
    }

    #[test]
    fn matches_finite_difference_for_constrained_clique_mixer() {
        let n = 6;
        let k = 3;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(44));
        let sub = DickeSubspace::new(n, k);
        let obj = precompute_dicke(&DensestKSubgraph::new(graph, k), &sub);
        let sim = Simulator::new(obj, Mixer::clique(n, k)).unwrap();
        let angles = Angles::random(2, &mut StdRng::seed_from_u64(8));
        let mut ws = sim.workspace();
        let grad = adjoint_gradient(&sim, &angles, &mut ws).unwrap();
        let fd = finite_difference(&sim, &angles, 1e-5);
        assert_gradients_close(&grad.to_flat(), &fd, 1e-5);
    }

    #[test]
    fn gradient_is_zero_at_zero_angles_for_symmetric_problems() {
        // At β = γ = 0 the state stays uniform; the γ-derivative need not vanish in
        // general, but the β-derivative must (the mixer acts on an eigenstate).
        let n = 5;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(55));
        let obj = precompute_full(&MaxCut::new(graph));
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        let mut ws = sim.workspace();
        let grad = adjoint_gradient(&sim, &Angles::zeros(2), &mut ws).unwrap();
        for g in &grad.grad_betas {
            assert!(g.abs() < 1e-10);
        }
    }

    #[test]
    fn flat_layout_and_norm() {
        let g = AdjointGradient {
            expectation: 1.0,
            grad_betas: vec![3.0, 0.0],
            grad_gammas: vec![0.0, 4.0],
        };
        assert_eq!(g.to_flat(), vec![3.0, 0.0, 0.0, 4.0]);
        assert!((g.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn workspace_state_still_holds_final_state_before_sweep_consistency() {
        // After the gradient call the workspace has been rolled back to the initial
        // state; a fresh forward call must still give the same expectation.
        let n = 5;
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(66));
        let obj = precompute_full(&MaxCut::new(graph));
        let sim = Simulator::new(obj, Mixer::transverse_field(n)).unwrap();
        let angles = Angles::random(3, &mut StdRng::seed_from_u64(9));
        let mut ws = sim.workspace();
        let g1 = adjoint_gradient(&sim, &angles, &mut ws).unwrap();
        let g2 = adjoint_gradient(&sim, &angles, &mut ws).unwrap();
        assert!((g1.expectation - g2.expectation).abs() < 1e-12);
        assert_gradients_close(&g1.to_flat(), &g2.to_flat(), 1e-12);
    }
}
