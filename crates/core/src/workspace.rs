//! Pre-allocated simulation workspaces.
//!
//! §2.2: "we pre-allocate and re-use memory, allowing for functionally zero overhead."
//! A [`Workspace`] owns every buffer a simulation (and its gradient) needs; the
//! angle-finding outer loop creates one workspace and hands it to every expectation /
//! gradient evaluation, so the hot loop performs no heap allocation at all.

use juliqaoa_linalg::Complex64;

/// Scratch buffers for repeated simulations of a fixed problem size.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// The evolving statevector (over the feasible set).
    pub state: Vec<Complex64>,
    /// Scratch for subspace mat-vecs.
    pub scratch: Vec<Complex64>,
    /// The adjoint (co-state) vector used by the gradient sweep.
    pub lambda: Vec<Complex64>,
    /// Temporary used to hold `H·ψ` during the gradient sweep.
    pub tmp: Vec<Complex64>,
    /// Per-round phase factors `e^{-iγ·value}` for the table-driven phase separator —
    /// one entry per *distinct* objective value, so it is tiny compared to the state
    /// buffers and its allocation is reused across rounds and simulations.
    pub phase_table: Vec<Complex64>,
}

impl Workspace {
    /// Allocates a workspace for statevectors of length `dim`.
    pub fn new(dim: usize) -> Self {
        Workspace {
            state: vec![Complex64::ZERO; dim],
            scratch: vec![Complex64::ZERO; dim],
            lambda: vec![Complex64::ZERO; dim],
            tmp: vec![Complex64::ZERO; dim],
            phase_table: Vec::new(),
        }
    }

    /// The statevector dimension this workspace serves.
    pub fn dim(&self) -> usize {
        self.state.len()
    }

    /// Resizes all buffers (only reallocating when the dimension actually changes).
    pub fn resize(&mut self, dim: usize) {
        if dim != self.dim() {
            self.state.resize(dim, Complex64::ZERO);
            self.scratch.resize(dim, Complex64::ZERO);
            self.lambda.resize(dim, Complex64::ZERO);
            self.tmp.resize(dim, Complex64::ZERO);
        }
    }

    /// Approximate heap footprint in bytes (used by the memory-scaling benchmark).
    pub fn bytes(&self) -> usize {
        (4 * self.state.capacity() + self.phase_table.capacity()) * std::mem::size_of::<Complex64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_resize() {
        let mut ws = Workspace::new(8);
        assert_eq!(ws.dim(), 8);
        assert_eq!(ws.scratch.len(), 8);
        ws.resize(16);
        assert_eq!(ws.dim(), 16);
        assert_eq!(ws.lambda.len(), 16);
        assert_eq!(ws.tmp.len(), 16);
        // Resizing to the same size is a no-op.
        let ptr = ws.state.as_ptr();
        ws.resize(16);
        assert_eq!(ws.state.as_ptr(), ptr);
    }

    #[test]
    fn bytes_accounts_for_all_buffers() {
        let ws = Workspace::new(100);
        assert!(ws.bytes() >= 4 * 100 * 16);
    }
}
