//! QAOA angle vectors.
//!
//! A `p`-round QAOA has `2p` parameters: the mixer angles `β_1…β_p` and the phase
//! separator angles `γ_1…γ_p`.  The flat layout follows the paper's Listing 1
//! (`angles[1:p] = betas, angles[p+1:2p] = gammas`), which is also the layout the
//! optimizers in `juliqaoa-optim` work with.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The angles `{β_i, γ_i}` of a `p`-round QAOA.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Angles {
    betas: Vec<f64>,
    gammas: Vec<f64>,
}

impl Angles {
    /// Creates an angle set from separate beta and gamma vectors.
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths.
    pub fn new(betas: Vec<f64>, gammas: Vec<f64>) -> Self {
        assert_eq!(
            betas.len(),
            gammas.len(),
            "βs and γs must have the same length"
        );
        Angles { betas, gammas }
    }

    /// Parses the flat layout `[β_1…β_p, γ_1…γ_p]` used by Listing 1 and the optimizers.
    ///
    /// # Panics
    /// Panics if the slice has odd length.
    pub fn from_flat(flat: &[f64]) -> Self {
        assert!(
            flat.len().is_multiple_of(2),
            "flat angle vector must have even length"
        );
        let p = flat.len() / 2;
        Angles {
            betas: flat[..p].to_vec(),
            gammas: flat[p..].to_vec(),
        }
    }

    /// Serialises to the flat layout `[β_1…β_p, γ_1…γ_p]`.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut flat = Vec::with_capacity(2 * self.p());
        flat.extend_from_slice(&self.betas);
        flat.extend_from_slice(&self.gammas);
        flat
    }

    /// All-zero angles for `p` rounds (the identity circuit).
    pub fn zeros(p: usize) -> Self {
        Angles {
            betas: vec![0.0; p],
            gammas: vec![0.0; p],
        }
    }

    /// Uniform random angles in `[0, 2π)`, the usual starting point for random local
    /// minima searches (Listing 3's `2π·rand(2p)`).
    pub fn random<R: Rng + ?Sized>(p: usize, rng: &mut R) -> Self {
        let tau = 2.0 * std::f64::consts::PI;
        Angles {
            betas: (0..p).map(|_| rng.gen::<f64>() * tau).collect(),
            gammas: (0..p).map(|_| rng.gen::<f64>() * tau).collect(),
        }
    }

    /// Linear-ramp (Trotterized-annealing) initial angles: `γ_i` ramps up from ~0 to
    /// `dt·p` while `β_i` ramps down — the standard annealing-inspired initialisation
    /// used as a QAOA warm start in the literature the paper cites.
    pub fn linear_ramp(p: usize, dt: f64) -> Self {
        let betas = (0..p)
            .map(|i| (1.0 - (i as f64 + 0.5) / p as f64) * dt)
            .collect();
        let gammas = (0..p).map(|i| ((i as f64 + 0.5) / p as f64) * dt).collect();
        Angles { betas, gammas }
    }

    /// Number of rounds `p`.
    pub fn p(&self) -> usize {
        self.betas.len()
    }

    /// The mixer angles `β_1…β_p`.
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// The phase-separator angles `γ_1…γ_p`.
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// The `(γ_i, β_i)` pair of round `i` (0-based).
    pub fn round(&self, i: usize) -> (f64, f64) {
        (self.gammas[i], self.betas[i])
    }

    /// Extends a good `(p−1)`-round angle set to a `p`-round starting guess by linear
    /// extrapolation of the angle schedules — the seeding step of the iterative
    /// angle-finding strategy (§2.3).
    ///
    /// For `p = 1` inputs the last angles are simply repeated.
    pub fn extrapolate(&self) -> Self {
        let p = self.p();
        assert!(p >= 1, "cannot extrapolate an empty angle set");
        let extend = |v: &[f64]| -> Vec<f64> {
            let mut out = v.to_vec();
            let next = if p >= 2 {
                2.0 * v[p - 1] - v[p - 2]
            } else {
                v[p - 1]
            };
            out.push(next);
            out
        };
        Angles {
            betas: extend(&self.betas),
            gammas: extend(&self.gammas),
        }
    }

    /// Re-interpolates the angle schedule onto `new_p` rounds (INTERP strategy); useful
    /// when jumping more than one round at a time.
    pub fn interpolate_to(&self, new_p: usize) -> Self {
        assert!(new_p >= 1);
        let p = self.p();
        if p == new_p {
            return self.clone();
        }
        let resample = |v: &[f64]| -> Vec<f64> {
            (0..new_p)
                .map(|i| {
                    if p == 1 {
                        return v[0];
                    }
                    // Map position i in the new schedule onto the old schedule.
                    let t = i as f64 * (p as f64 - 1.0) / (new_p as f64 - 1.0).max(1.0);
                    let lo = t.floor() as usize;
                    let hi = (lo + 1).min(p - 1);
                    let frac = t - lo as f64;
                    v[lo] * (1.0 - frac) + v[hi] * frac
                })
                .collect()
        };
        Angles {
            betas: resample(&self.betas),
            gammas: resample(&self.gammas),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flat_round_trip() {
        let flat = vec![0.1, 0.2, 0.3, 1.1, 1.2, 1.3];
        let a = Angles::from_flat(&flat);
        assert_eq!(a.p(), 3);
        assert_eq!(a.betas(), &[0.1, 0.2, 0.3]);
        assert_eq!(a.gammas(), &[1.1, 1.2, 1.3]);
        assert_eq!(a.to_flat(), flat);
        assert_eq!(a.round(1), (1.2, 0.2));
    }

    #[test]
    fn zeros_and_random() {
        let z = Angles::zeros(4);
        assert_eq!(z.p(), 4);
        assert!(z.to_flat().iter().all(|&x| x == 0.0));

        let r = Angles::random(5, &mut StdRng::seed_from_u64(1));
        assert_eq!(r.p(), 5);
        assert!(r
            .to_flat()
            .iter()
            .all(|&x| (0.0..2.0 * std::f64::consts::PI).contains(&x)));
        // Deterministic given the seed.
        let r2 = Angles::random(5, &mut StdRng::seed_from_u64(1));
        assert_eq!(r, r2);
    }

    #[test]
    fn linear_ramp_is_monotone() {
        let a = Angles::linear_ramp(6, 0.8);
        for w in a.gammas().windows(2) {
            assert!(w[0] < w[1]);
        }
        for w in a.betas().windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(a.gammas().iter().all(|&g| g > 0.0 && g < 0.8));
    }

    #[test]
    fn extrapolation_extends_by_one_round() {
        let a = Angles::new(vec![0.5, 0.4], vec![0.2, 0.6]);
        let b = a.extrapolate();
        assert_eq!(b.p(), 3);
        // Linear extrapolation of the schedules.
        assert!((b.betas()[2] - 0.3).abs() < 1e-12);
        assert!((b.gammas()[2] - 1.0).abs() < 1e-12);
        // Existing rounds untouched.
        assert_eq!(&b.betas()[..2], a.betas());
    }

    #[test]
    fn extrapolating_single_round_repeats() {
        let a = Angles::new(vec![0.7], vec![0.3]);
        let b = a.extrapolate();
        assert_eq!(b.betas(), &[0.7, 0.7]);
        assert_eq!(b.gammas(), &[0.3, 0.3]);
    }

    #[test]
    fn interpolation_preserves_endpoints() {
        let a = Angles::new(vec![0.0, 1.0], vec![1.0, 3.0]);
        let b = a.interpolate_to(5);
        assert_eq!(b.p(), 5);
        assert!((b.betas()[0] - 0.0).abs() < 1e-12);
        assert!((b.betas()[4] - 1.0).abs() < 1e-12);
        assert!((b.gammas()[0] - 1.0).abs() < 1e-12);
        assert!((b.gammas()[4] - 3.0).abs() < 1e-12);
        // Midpoint lands halfway.
        assert!((b.betas()[2] - 0.5).abs() < 1e-12);
        // Same p returns a copy.
        assert_eq!(a.interpolate_to(2), a);
    }

    #[test]
    #[should_panic]
    fn odd_flat_length_panics() {
        let _ = Angles::from_flat(&[0.1, 0.2, 0.3]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = Angles::new(vec![0.1], vec![0.1, 0.2]);
    }
}
