//! Error types for simulator construction and use.

use std::fmt;

/// Errors raised when assembling a QAOA simulation from mismatched pieces.
#[derive(Debug, Clone, PartialEq)]
pub enum QaoaError {
    /// The objective-value vector and the mixer act on spaces of different dimension.
    DimensionMismatch {
        /// Length of the objective-value vector.
        objective_len: usize,
        /// Dimension the mixer acts on.
        mixer_dim: usize,
    },
    /// The objective-value vector is empty.
    EmptyObjective,
    /// The number of per-layer mixers does not divide the requested rounds.
    MixerScheduleMismatch {
        /// Number of mixers supplied.
        mixers: usize,
        /// Number of rounds implied by the angles.
        rounds: usize,
    },
    /// A custom initial state has the wrong dimension or zero norm.
    InvalidInitialState(String),
    /// The angle vector has an odd length or is empty.
    InvalidAngles(String),
    /// A saved-progress or result file could not be read, parsed or written.
    ///
    /// Carries the path and the underlying message as strings (rather than an
    /// `io::Error`) so the error stays `Clone + PartialEq` like every other variant.
    Persistence {
        /// The file involved.
        path: String,
        /// What went wrong (I/O or parse message).
        message: String,
    },
}

impl fmt::Display for QaoaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QaoaError::DimensionMismatch {
                objective_len,
                mixer_dim,
            } => write!(
                f,
                "objective vector has {objective_len} entries but the mixer acts on a \
                 {mixer_dim}-dimensional space"
            ),
            QaoaError::EmptyObjective => write!(f, "objective-value vector is empty"),
            QaoaError::MixerScheduleMismatch { mixers, rounds } => write!(
                f,
                "{mixers} per-layer mixers were supplied but the angles describe {rounds} rounds"
            ),
            QaoaError::InvalidInitialState(msg) => write!(f, "invalid initial state: {msg}"),
            QaoaError::InvalidAngles(msg) => write!(f, "invalid angles: {msg}"),
            QaoaError::Persistence { path, message } => {
                write!(f, "persistence error on {path}: {message}")
            }
        }
    }
}

impl std::error::Error for QaoaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_numbers() {
        let e = QaoaError::DimensionMismatch {
            objective_len: 10,
            mixer_dim: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains("16"));

        let e = QaoaError::MixerScheduleMismatch {
            mixers: 3,
            rounds: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));

        assert!(QaoaError::EmptyObjective.to_string().contains("empty"));
        assert!(QaoaError::InvalidInitialState("bad norm".into())
            .to_string()
            .contains("bad norm"));
        assert!(QaoaError::InvalidAngles("odd length".into())
            .to_string()
            .contains("odd length"));
        let e = QaoaError::Persistence {
            path: "/tmp/progress.json".into(),
            message: "disk full".into(),
        };
        assert!(
            e.to_string().contains("/tmp/progress.json") && e.to_string().contains("disk full")
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(QaoaError::EmptyObjective, QaoaError::EmptyObjective);
        assert_ne!(
            QaoaError::EmptyObjective,
            QaoaError::InvalidAngles("x".into())
        );
    }
}
