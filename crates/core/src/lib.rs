//! Exact statevector simulation of the Quantum Alternating Operator Ansatz (QAOA).
//!
//! This crate is the Rust counterpart of the JuliQAOA simulator core: it consumes a
//! pre-computed objective-value vector (from `juliqaoa-problems`) and a pre-computed
//! mixer (from `juliqaoa-mixers`) and evaluates the p-round QAOA state
//!
//! ```text
//! |β,γ⟩ = e^{-iβ_p H_M} e^{-iγ_p H_C} ⋯ e^{-iβ_1 H_M} e^{-iγ_1 H_C} |ψ₀⟩
//! ```
//!
//! entirely with element-wise phase kernels, Walsh–Hadamard transforms and subspace
//! mat-vecs — no circuits and no matrix exponentials at simulation time.
//!
//! The main types are:
//!
//! * [`Simulator`] — owns the objective values, mixer(s) and initial state; produces
//!   [`SimulationResult`]s and expectation values, re-using a caller-held [`Workspace`]
//!   so the hot loop never allocates.
//! * [`Angles`] — the `2p` QAOA parameters `{β_i, γ_i}` with the flat layout used by the
//!   angle-finding outer loop.
//! * [`gradient`] — the adjoint-mode analytic gradient of `⟨β,γ|C|β,γ⟩`, the stand-in
//!   for the paper's Enzyme automatic differentiation (same `O(1)`-evaluations cost).
//! * [`prefix::PrefixCache`] — per-round checkpoint statevectors for incremental
//!   re-evolution: an angle sweep that only changes the deepest rounds resumes from
//!   the shared prefix instead of replaying the whole circuit, bit-identically.
//! * [`grover::CompressedGroverSimulator`] — the §2.4 fast path: Grover-mixer QAOA in the
//!   compressed space of distinct objective values and degeneracies, enabling very large
//!   `n`.
//! * [`multiangle::MultiAngleSimulator`] — multiple mixers (each with its own angle) per
//!   layer, the "multi-angle QAOA" variation.

pub mod angles;
pub mod error;
pub mod gradient;
pub mod grover;
pub mod multiangle;
pub mod prefix;
pub mod result;
pub mod simulator;
pub mod workspace;

pub use angles::Angles;
pub use error::QaoaError;
pub use gradient::{adjoint_gradient, adjoint_gradient_cached, AdjointGradient};
pub use grover::CompressedGroverSimulator;
pub use prefix::{PrefixCache, PrefixStats};
pub use result::SimulationResult;
pub use simulator::{InitialState, Simulator};
pub use workspace::Workspace;
