//! Simulation results.
//!
//! The Julia package's `simulate()` returns "a special object, which stores the
//! statevector as well as objective values, and can be used to extract the expectation
//! value, amplitudes for each state, and ground state probability".
//! [`SimulationResult`] is that object.

use juliqaoa_linalg::{vector, Complex64};

/// The outcome of simulating a QAOA at a fixed set of angles.
#[derive(Clone, Debug)]
pub struct SimulationResult {
    statevector: Vec<Complex64>,
    expectation: f64,
    min_value: f64,
    max_value: f64,
    optimal_probability: f64,
}

impl SimulationResult {
    /// Builds a result by measuring a final state against its objective values.
    ///
    /// # Panics
    /// Panics if the state and objective vectors have different lengths or are empty.
    pub fn from_state(statevector: Vec<Complex64>, obj_vals: &[f64]) -> Self {
        assert_eq!(statevector.len(), obj_vals.len());
        assert!(!obj_vals.is_empty());
        let expectation = vector::diagonal_expectation(&statevector, obj_vals);
        let max_value = obj_vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min_value = obj_vals.iter().copied().fold(f64::INFINITY, f64::min);
        let mut result = SimulationResult {
            statevector,
            expectation,
            min_value,
            max_value,
            optimal_probability: 0.0,
        };
        // Probability mass on the optimal (maximum objective) states, read through the
        // same `probabilities()` path samplers and metrics use.
        result.optimal_probability = result
            .probabilities()
            .zip(obj_vals.iter())
            .filter(|(_, &v)| v == max_value)
            .map(|(p, _)| p)
            .sum();
        result
    }

    /// The expectation value `⟨β,γ|C(x)|β,γ⟩` (the quantity the outer loop optimizes).
    pub fn expectation_value(&self) -> f64 {
        self.expectation
    }

    /// The final statevector over the feasible set.
    pub fn statevector(&self) -> &[Complex64] {
        &self.statevector
    }

    /// The amplitude of feasible state `i`.
    pub fn amplitude(&self, i: usize) -> Complex64 {
        self.statevector[i]
    }

    /// Measurement probabilities `|ψ_x|²` over the feasible set, in dense-index order.
    ///
    /// Returned as an iterator so consumers that only stream the distribution — the
    /// alias-table builder in `juliqaoa-sampling`, the optimal-probability and
    /// total-probability reductions below — share one code path without materialising
    /// a second `dim`-length vector.  `collect()` when a `Vec` is needed.
    pub fn probabilities(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.statevector.iter().map(|z| z.norm_sqr())
    }

    /// Probability of measuring a state that attains the maximum objective value
    /// ("ground state probability" in the paper's convention of maximizing `C`).
    pub fn ground_state_probability(&self) -> f64 {
        self.optimal_probability
    }

    /// The largest objective value over the feasible set.
    pub fn optimal_value(&self) -> f64 {
        self.max_value
    }

    /// The smallest objective value over the feasible set.
    pub fn worst_value(&self) -> f64 {
        self.min_value
    }

    /// Approximation ratio `⟨C⟩ / C_max`, the quantity plotted in Figures 2 and 3.
    ///
    /// Callers with mixed-sign objectives should prefer
    /// [`SimulationResult::normalized_expectation`].
    pub fn approximation_ratio(&self) -> f64 {
        self.expectation / self.max_value
    }

    /// The shifted/normalised quality `(⟨C⟩ − C_min)/(C_max − C_min)`, which is 0 for
    /// the worst possible state and 1 for the optimum regardless of sign conventions.
    pub fn normalized_expectation(&self) -> f64 {
        if self.max_value == self.min_value {
            1.0
        } else {
            (self.expectation - self.min_value) / (self.max_value - self.min_value)
        }
    }

    /// Total probability mass (should be 1 for a unitary simulation; exposed for tests
    /// and sanity checks).
    pub fn total_probability(&self) -> f64 {
        self.probabilities().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_uniform_result() -> SimulationResult {
        let dim = 4;
        let amp = 0.5;
        let state = vec![Complex64::new(amp, 0.0); dim];
        let obj = vec![0.0, 1.0, 2.0, 3.0];
        SimulationResult::from_state(state, &obj)
    }

    #[test]
    fn uniform_state_statistics() {
        let r = make_uniform_result();
        assert!((r.expectation_value() - 1.5).abs() < 1e-12);
        assert!((r.ground_state_probability() - 0.25).abs() < 1e-12);
        assert_eq!(r.optimal_value(), 3.0);
        assert_eq!(r.worst_value(), 0.0);
        assert!((r.approximation_ratio() - 0.5).abs() < 1e-12);
        assert!((r.normalized_expectation() - 0.5).abs() < 1e-12);
        assert!((r.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_state_finds_optimum() {
        let mut state = vec![Complex64::ZERO; 4];
        state[3] = Complex64::ONE;
        let obj = vec![0.0, 1.0, 2.0, 3.0];
        let r = SimulationResult::from_state(state, &obj);
        assert!((r.expectation_value() - 3.0).abs() < 1e-12);
        assert!((r.ground_state_probability() - 1.0).abs() < 1e-12);
        assert!((r.approximation_ratio() - 1.0).abs() < 1e-12);
        assert!((r.normalized_expectation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_optimum_sums_probability() {
        let amp = (0.5f64).sqrt();
        let mut state = vec![Complex64::ZERO; 4];
        state[1] = Complex64::new(amp, 0.0);
        state[2] = Complex64::new(0.0, amp);
        let obj = vec![0.0, 5.0, 5.0, 1.0];
        let r = SimulationResult::from_state(state, &obj);
        assert!((r.ground_state_probability() - 1.0).abs() < 1e-12);
        assert!((r.expectation_value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_and_amplitudes() {
        let r = make_uniform_result();
        let probs: Vec<f64> = r.probabilities().collect();
        assert_eq!(r.probabilities().len(), 4);
        assert!(probs.iter().all(|&p| (p - 0.25).abs() < 1e-12));
        assert!((r.amplitude(2) - Complex64::new(0.5, 0.0)).abs() < 1e-12);
        assert_eq!(r.statevector().len(), 4);
    }

    #[test]
    fn constant_objective_normalization() {
        let state = vec![Complex64::new(0.5, 0.0); 4];
        let obj = vec![2.0; 4];
        let r = SimulationResult::from_state(state, &obj);
        assert_eq!(r.normalized_expectation(), 1.0);
        assert!((r.approximation_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = SimulationResult::from_state(vec![Complex64::ONE; 3], &[1.0, 2.0]);
    }
}
