//! Multi-angle QAOA: several mixers, each with its own angle, at every layer.
//!
//! Section 3: "to test multi-angle QAOA, one can even pass an array of arrays of mixers,
//! along with a nested array of angles, which allows for multiple mixers at each layer."
//! [`MultiAngleSimulator`] implements exactly that generalisation: layer `ℓ` applies the
//! phase separator with angle `γ_ℓ`, followed by every mixer of the layer in order, each
//! with its own `β`.

use crate::error::QaoaError;
use crate::result::SimulationResult;
use crate::workspace::Workspace;
use juliqaoa_linalg::{vector, Complex64};
use juliqaoa_mixers::Mixer;

/// Angles for a multi-angle QAOA: one `γ` per layer plus one `β` per mixer per layer.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiAngles {
    /// Phase-separator angle of each layer.
    pub gammas: Vec<f64>,
    /// `betas[ℓ][m]` is the angle of mixer `m` in layer `ℓ`.
    pub betas: Vec<Vec<f64>>,
}

impl MultiAngles {
    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.gammas.len()
    }
}

/// A QAOA simulator with an arbitrary per-layer mixer schedule.
pub struct MultiAngleSimulator {
    obj_vals: Vec<f64>,
    /// `layers[ℓ]` is the ordered list of mixers applied in layer `ℓ`.
    layers: Vec<Vec<Mixer>>,
    dim: usize,
}

impl MultiAngleSimulator {
    /// Creates a multi-angle simulator.
    ///
    /// # Errors
    /// Returns an error if the objective vector is empty or any mixer's dimension
    /// disagrees with it.
    pub fn new(obj_vals: Vec<f64>, layers: Vec<Vec<Mixer>>) -> Result<Self, QaoaError> {
        if obj_vals.is_empty() {
            return Err(QaoaError::EmptyObjective);
        }
        let dim = obj_vals.len();
        for layer in &layers {
            for m in layer {
                if m.dim() != dim {
                    return Err(QaoaError::DimensionMismatch {
                        objective_len: dim,
                        mixer_dim: m.dim(),
                    });
                }
            }
        }
        Ok(MultiAngleSimulator {
            obj_vals,
            layers,
            dim,
        })
    }

    /// Dimension of the feasible set.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of layers in the schedule.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Runs the simulation from the uniform superposition.
    ///
    /// # Errors
    /// Returns [`QaoaError::InvalidAngles`] if the angle structure does not match the
    /// mixer schedule.
    pub fn simulate(&self, angles: &MultiAngles) -> Result<SimulationResult, QaoaError> {
        if angles.layers() != self.layers.len() {
            return Err(QaoaError::InvalidAngles(format!(
                "{} layers of angles supplied for {} layers of mixers",
                angles.layers(),
                self.layers.len()
            )));
        }
        for (l, (betas, mixers)) in angles.betas.iter().zip(self.layers.iter()).enumerate() {
            if betas.len() != mixers.len() {
                return Err(QaoaError::InvalidAngles(format!(
                    "layer {l} has {} mixers but {} β angles",
                    mixers.len(),
                    betas.len()
                )));
            }
        }
        let mut ws = Workspace::new(self.dim);
        vector::fill_uniform(&mut ws.state);
        for (l, mixers) in self.layers.iter().enumerate() {
            vector::apply_phases(&mut ws.state, &self.obj_vals, angles.gammas[l]);
            for (m, mixer) in mixers.iter().enumerate() {
                mixer.apply_evolution(angles.betas[l][m], &mut ws.state, &mut ws.scratch);
            }
        }
        Ok(SimulationResult::from_state(ws.state, &self.obj_vals))
    }

    /// Expectation value at the given multi-angles.
    pub fn expectation(&self, angles: &MultiAngles) -> Result<f64, QaoaError> {
        Ok(self.simulate(angles)?.expectation_value())
    }

    /// The uniform-superposition state the simulation starts in, exposed for tests.
    pub fn initial_state(&self) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; self.dim];
        vector::fill_uniform(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::angles::Angles;
    use crate::simulator::Simulator;
    use juliqaoa_graphs::erdos_renyi;
    use juliqaoa_problems::{precompute_full, MaxCut};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn maxcut_obj(n: usize, seed: u64) -> Vec<f64> {
        let graph = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        precompute_full(&MaxCut::new(graph))
    }

    #[test]
    fn single_mixer_per_layer_matches_standard_simulator() {
        let n = 5;
        let obj = maxcut_obj(n, 3);
        let standard = Simulator::new(obj.clone(), Mixer::transverse_field(n)).unwrap();
        let multi = MultiAngleSimulator::new(
            obj,
            vec![
                vec![Mixer::transverse_field(n)],
                vec![Mixer::transverse_field(n)],
            ],
        )
        .unwrap();
        let angles = Angles::random(2, &mut StdRng::seed_from_u64(4));
        let ma = MultiAngles {
            gammas: angles.gammas().to_vec(),
            betas: angles.betas().iter().map(|&b| vec![b]).collect(),
        };
        let e_standard = standard.expectation(&angles).unwrap();
        let e_multi = multi.expectation(&ma).unwrap();
        assert!((e_standard - e_multi).abs() < 1e-10);
    }

    #[test]
    fn two_mixers_per_layer_run_and_preserve_norm() {
        let n = 5;
        let obj = maxcut_obj(n, 9);
        let multi = MultiAngleSimulator::new(
            obj,
            vec![vec![Mixer::transverse_field(n), Mixer::grover_full(n)]],
        )
        .unwrap();
        let res = multi
            .simulate(&MultiAngles {
                gammas: vec![0.4],
                betas: vec![vec![0.3, 0.7]],
            })
            .unwrap();
        assert!((res.total_probability() - 1.0).abs() < 1e-10);
        assert_eq!(multi.num_layers(), 1);
        assert_eq!(multi.dim(), 32);
    }

    #[test]
    fn angle_structure_is_validated() {
        let n = 4;
        let obj = maxcut_obj(n, 1);
        let multi = MultiAngleSimulator::new(obj, vec![vec![Mixer::transverse_field(n)]]).unwrap();
        // Wrong number of layers.
        assert!(matches!(
            multi.simulate(&MultiAngles {
                gammas: vec![0.1, 0.2],
                betas: vec![vec![0.1], vec![0.2]],
            }),
            Err(QaoaError::InvalidAngles(_))
        ));
        // Wrong number of betas within the layer.
        assert!(matches!(
            multi.simulate(&MultiAngles {
                gammas: vec![0.1],
                betas: vec![vec![0.1, 0.2]],
            }),
            Err(QaoaError::InvalidAngles(_))
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let obj = maxcut_obj(4, 5);
        assert!(matches!(
            MultiAngleSimulator::new(obj, vec![vec![Mixer::transverse_field(3)]]),
            Err(QaoaError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            MultiAngleSimulator::new(vec![], vec![]),
            Err(QaoaError::EmptyObjective)
        ));
    }

    #[test]
    fn zero_layers_is_the_uniform_state() {
        let obj = maxcut_obj(4, 6);
        let mean: f64 = obj.iter().sum::<f64>() / obj.len() as f64;
        let multi = MultiAngleSimulator::new(obj, vec![]).unwrap();
        let e = multi
            .expectation(&MultiAngles {
                gammas: vec![],
                betas: vec![],
            })
            .unwrap();
        assert!((e - mean).abs() < 1e-12);
        assert_eq!(multi.initial_state().len(), 16);
    }
}
