//! Dense row-major matrices.
//!
//! Constrained-mixer simulation multiplies a complex statevector (restricted to the
//! feasible subspace) by the real orthogonal eigenvector matrix `V` and its transpose.
//! [`RealMatrix`] stores such matrices row-major and offers rayon-parallel
//! matrix–vector products against complex vectors.  [`ComplexMatrix`] supports custom
//! user-supplied unitary mixers that are not real symmetric.

use crate::{parallel_kernels_enabled, Complex64};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense real matrix stored row-major.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RealMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl RealMatrix {
    /// Creates an all-zeros matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        RealMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates an identity matrix of size `n×n`.
    pub fn identity(n: usize) -> Self {
        let mut m = RealMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of the (row, column) index.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        RealMatrix { nrows, ncols, data }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "row-major data length mismatch");
        RealMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// A borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// A mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> RealMatrix {
        RealMatrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// True when the matrix is square and symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Dense real matrix–matrix product `self * other`.
    ///
    /// Only used in tests and pre-computation sanity checks, so a straightforward
    /// triple loop (parallel over rows) is sufficient.
    pub fn matmul(&self, other: &RealMatrix) -> RealMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let nrows = self.nrows;
        let ncols = other.ncols;
        let inner = self.ncols;
        let mut out = vec![0.0; nrows * ncols];
        out.par_chunks_mut(ncols)
            .zip(self.data.par_chunks(inner))
            .for_each(|(orow, arow)| {
                for (k, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = other.row(k);
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += aik * brow[j];
                    }
                }
            });
        RealMatrix {
            nrows,
            ncols,
            data: out,
        }
    }

    /// Real matrix × complex vector: `out = self · x`.
    ///
    /// This is the hot kernel when applying the eigendecomposition of a constrained
    /// mixer (`V e^{-iβD} Vᵀ ψ`), so it is parallelised over output rows.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_complex(&self, x: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(x.len(), self.ncols, "matvec input length mismatch");
        assert_eq!(out.len(), self.nrows, "matvec output length mismatch");
        let work = self.nrows * self.ncols;
        if parallel_kernels_enabled(work) {
            out.par_iter_mut()
                .zip(self.data.par_chunks(self.ncols))
                .for_each(|(o, row)| {
                    *o = dot_row_complex(row, x);
                });
        } else {
            for (o, row) in out.iter_mut().zip(self.data.chunks(self.ncols)) {
                *o = dot_row_complex(row, x);
            }
        }
    }

    /// Real matrix-transpose × complex vector: `out = selfᵀ · x`.
    ///
    /// Implemented by accumulating over rows of `self` so the memory access stays
    /// row-contiguous; parallelised by splitting the output into column blocks.
    pub fn matvec_transpose_complex(&self, x: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(x.len(), self.nrows, "matvecᵀ input length mismatch");
        assert_eq!(out.len(), self.ncols, "matvecᵀ output length mismatch");
        let work = self.nrows * self.ncols;
        if parallel_kernels_enabled(work) {
            // Parallelise over output entries: out[j] = Σ_i self[i][j] * x[i].
            // Column access strides, but each task is independent and allocation-free.
            out.par_iter_mut().enumerate().for_each(|(j, o)| {
                let mut acc = Complex64::ZERO;
                for (i, &xi) in x.iter().enumerate() {
                    acc += xi * self.data[i * self.ncols + j];
                }
                *o = acc;
            });
        } else {
            out.iter_mut().for_each(|o| *o = Complex64::ZERO);
            for (i, &xi) in x.iter().enumerate() {
                let row = self.row(i);
                for (j, &r) in row.iter().enumerate() {
                    out[j] += xi * r;
                }
            }
        }
    }

    /// Frobenius norm of the difference between two matrices.
    pub fn frobenius_diff(&self, other: &RealMatrix) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[inline]
fn dot_row_complex(row: &[f64], x: &[Complex64]) -> Complex64 {
    let mut re = 0.0;
    let mut im = 0.0;
    for (&r, z) in row.iter().zip(x.iter()) {
        re += r * z.re;
        im += r * z.im;
    }
    Complex64::new(re, im)
}

impl std::ops::Index<(usize, usize)> for RealMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for RealMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.ncols + j]
    }
}

/// A dense complex matrix stored row-major.
///
/// Used for custom user-supplied mixer unitaries and for the naive dense baseline
/// simulator; the purpose-built simulation paths never materialise complex matrices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComplexMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<Complex64>,
}

impl ComplexMatrix {
    /// Creates an all-zeros complex matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        ComplexMatrix {
            nrows,
            ncols,
            data: vec![Complex64::ZERO; nrows * ncols],
        }
    }

    /// Creates an identity matrix of size `n×n`.
    pub fn identity(n: usize) -> Self {
        let mut m = ComplexMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a function of the (row, column) index.
    pub fn from_fn(
        nrows: usize,
        ncols: usize,
        mut f: impl FnMut(usize, usize) -> Complex64,
    ) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        ComplexMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// A borrow of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Conjugate transpose (adjoint).
    pub fn adjoint(&self) -> ComplexMatrix {
        ComplexMatrix::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)].conj())
    }

    /// Complex matrix × complex vector, parallel over rows for large matrices.
    pub fn matvec(&self, x: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(out.len(), self.nrows);
        let work = self.nrows * self.ncols;
        if parallel_kernels_enabled(work) {
            out.par_iter_mut()
                .zip(self.data.par_chunks(self.ncols))
                .for_each(|(o, row)| {
                    let mut acc = Complex64::ZERO;
                    for (&r, z) in row.iter().zip(x.iter()) {
                        acc += r * *z;
                    }
                    *o = acc;
                });
        } else {
            for (o, row) in out.iter_mut().zip(self.data.chunks(self.ncols)) {
                let mut acc = Complex64::ZERO;
                for (&r, z) in row.iter().zip(x.iter()) {
                    acc += r * *z;
                }
                *o = acc;
            }
        }
    }

    /// Dense complex matrix–matrix product `self * other`.
    pub fn matmul(&self, other: &ComplexMatrix) -> ComplexMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let nrows = self.nrows;
        let ncols = other.ncols;
        let inner = self.ncols;
        let mut out = vec![Complex64::ZERO; nrows * ncols];
        out.par_chunks_mut(ncols)
            .zip(self.data.par_chunks(inner))
            .for_each(|(orow, arow)| {
                for (k, &aik) in arow.iter().enumerate() {
                    let brow = other.row(k);
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += aik * brow[j];
                    }
                }
            });
        ComplexMatrix {
            nrows,
            ncols,
            data: out,
        }
    }

    /// Maximum elementwise distance from the identity of `self·self†`; a unitarity check.
    pub fn unitarity_defect(&self) -> f64 {
        let prod = self.matmul(&self.adjoint());
        let mut max = 0.0f64;
        for i in 0..prod.nrows {
            for j in 0..prod.ncols {
                let expected = if i == j {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                max = max.max((prod[(i, j)] - expected).abs());
            }
        }
        max
    }
}

impl std::ops::Index<(usize, usize)> for ComplexMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for ComplexMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity_map() {
        let id = RealMatrix::identity(5);
        let x: Vec<Complex64> = (0..5).map(|i| Complex64::new(i as f64, -1.0)).collect();
        let mut out = vec![Complex64::ZERO; 5];
        id.matvec_complex(&x, &mut out);
        assert_eq!(out, x);
        id.matvec_transpose_complex(&x, &mut out);
        assert_eq!(out, x);
    }

    #[test]
    fn indexing_and_rows() {
        let mut m = RealMatrix::zeros(2, 3);
        m[(0, 0)] = 1.0;
        m[(0, 2)] = 3.0;
        m[(1, 1)] = -2.0;
        assert_eq!(m.row(0), &[1.0, 0.0, 3.0]);
        assert_eq!(m.row(1), &[0.0, -2.0, 0.0]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
    }

    #[test]
    fn transpose_matches_indices() {
        let m = RealMatrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn symmetry_check() {
        let sym = RealMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        assert!(sym.is_symmetric(1e-12));
        let mut asym = sym.clone();
        asym[(0, 1)] += 0.5;
        assert!(!asym.is_symmetric(1e-12));
        let rect = RealMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = RealMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn matvec_and_transpose_matvec_agree_with_matmul() {
        let m = RealMatrix::from_fn(6, 6, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let x: Vec<Complex64> = (0..6)
            .map(|i| Complex64::new(0.3 * i as f64, 1.0 - 0.1 * i as f64))
            .collect();
        let mut y = vec![Complex64::ZERO; 6];
        m.matvec_complex(&x, &mut y);
        // Compare against explicit sums.
        for i in 0..6 {
            let mut acc = Complex64::ZERO;
            for j in 0..6 {
                acc += x[j] * m[(i, j)];
            }
            assert!((y[i] - acc).abs() < 1e-12);
        }
        let mut yt = vec![Complex64::ZERO; 6];
        m.matvec_transpose_complex(&x, &mut yt);
        let t = m.transpose();
        let mut expected = vec![Complex64::ZERO; 6];
        t.matvec_complex(&x, &mut expected);
        for i in 0..6 {
            assert!((yt[i] - expected[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn large_parallel_matvec_matches_serial() {
        // 256×256 ⇒ work = 65536 ≥ the default par_threshold, so this drives the
        // rayon branch of matvec (and the transpose matvec); the serial branch is
        // forced on the same inputs via the outer-parallelism guard.
        let n = 256;
        assert!(
            n * n >= crate::par_threshold(),
            "must reach the parallel branch"
        );
        let m = RealMatrix::from_fn(n, n, |i, j| ((i + 2 * j) % 7) as f64 * 0.25 - 0.5);
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i % 5) as f64, (i % 3) as f64 - 1.0))
            .collect();
        let mut y = vec![Complex64::ZERO; n];
        m.matvec_complex(&x, &mut y);
        let mut yt = vec![Complex64::ZERO; n];
        m.matvec_transpose_complex(&x, &mut yt);

        let (mut y_serial, mut yt_serial) = (vec![Complex64::ZERO; n], vec![Complex64::ZERO; n]);
        {
            let _guard = crate::enter_outer_parallelism();
            m.matvec_complex(&x, &mut y_serial);
            m.matvec_transpose_complex(&x, &mut yt_serial);
        }
        for i in 0..n {
            let mut acc = Complex64::ZERO;
            for j in 0..n {
                acc += x[j] * m[(i, j)];
            }
            assert!((y[i] - acc).abs() < 1e-9);
            assert!((y[i] - y_serial[i]).abs() < 1e-9);
            assert!((yt[i] - yt_serial[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn frobenius_diff_zero_for_equal() {
        let m = RealMatrix::from_fn(3, 3, |i, j| (i * j) as f64);
        assert_eq!(m.frobenius_diff(&m), 0.0);
        let mut m2 = m.clone();
        m2[(2, 2)] += 3.0;
        assert!((m.frobenius_diff(&m2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn complex_identity_and_adjoint() {
        let id = ComplexMatrix::identity(4);
        assert!(id.unitarity_defect() < 1e-12);
        let m = ComplexMatrix::from_fn(3, 2, |i, j| Complex64::new(i as f64, j as f64));
        let a = m.adjoint();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 3);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(a[(j, i)], m[(i, j)].conj());
            }
        }
    }

    #[test]
    fn complex_matvec_matches_explicit_sum() {
        let m = ComplexMatrix::from_fn(5, 5, |i, j| Complex64::new(i as f64 - j as f64, 0.5));
        let x: Vec<Complex64> = (0..5).map(|i| Complex64::new(1.0, i as f64)).collect();
        let mut y = vec![Complex64::ZERO; 5];
        m.matvec(&x, &mut y);
        for i in 0..5 {
            let mut acc = Complex64::ZERO;
            for j in 0..5 {
                acc += m[(i, j)] * x[j];
            }
            assert!((y[i] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn unitarity_defect_detects_nonunitary() {
        let mut m = ComplexMatrix::identity(3);
        m[(0, 0)] = Complex64::new(2.0, 0.0);
        assert!(m.unitarity_defect() > 1.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = RealMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
