//! Runtime control of kernel parallelism.
//!
//! Two mechanisms decide whether a vector kernel takes its rayon path:
//!
//! 1. **The size threshold** ([`par_threshold`]): below this many elements the
//!    scheduling overhead of data parallelism outweighs the work.  The default suits
//!    the vendored scoped-thread rayon shim; it can be overridden *once at startup*
//!    with the `JULIQAOA_PAR_THRESHOLD` environment variable, so small-core CI boxes
//!    and large servers can both be tuned without recompiling.
//! 2. **The outer-parallelism guard** ([`enter_outer_parallelism`]): when the
//!    angle-finding outer loop is already fanning candidates out across cores, the
//!    tiny inner kernels must *not* also go parallel — nested data parallelism just
//!    multiplies scheduling overhead while the cores are already busy.  Outer loops
//!    hold a guard in each worker thread; [`parallel_kernels_enabled`] then reports
//!    `false` on that thread regardless of size.

use std::cell::Cell;
use std::sync::OnceLock;

/// Default element count below which vector kernels stay serial.
///
/// The vendored rayon shim spawns scoped threads per call instead of keeping a
/// work-stealing pool, so the crossover sits higher than the `n ≈ 12` of a pooled
/// rayon: `2^16` elements (`n = 16` qubits) amortises thread spawn comfortably.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 16;

static PAR_THRESHOLD: OnceLock<usize> = OnceLock::new();

/// The active parallelism threshold: `JULIQAOA_PAR_THRESHOLD` if set to a valid
/// positive integer at first use, [`DEFAULT_PAR_THRESHOLD`] otherwise.  Read once into
/// a `OnceLock`; later changes to the environment have no effect.
pub fn par_threshold() -> usize {
    *PAR_THRESHOLD.get_or_init(|| {
        std::env::var("JULIQAOA_PAR_THRESHOLD")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_PAR_THRESHOLD)
    })
}

thread_local! {
    static OUTER_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard marking the current thread as a worker of an outer parallel loop; see
/// [`enter_outer_parallelism`].
#[must_use = "the guard disables inner-kernel parallelism only while it is alive"]
pub struct OuterParallelGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Marks the current thread as running inside an outer parallel region (e.g. one
/// candidate of a parallel angle-finding loop).  While the returned guard lives,
/// [`parallel_kernels_enabled`] reports `false` on this thread, keeping the inner
/// kernels serial.  Re-entrant: nested guards stack.
pub fn enter_outer_parallelism() -> OuterParallelGuard {
    OUTER_DEPTH.with(|depth| depth.set(depth.get() + 1));
    OuterParallelGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for OuterParallelGuard {
    fn drop(&mut self) {
        OUTER_DEPTH.with(|depth| depth.set(depth.get().saturating_sub(1)));
    }
}

/// Whether the current thread is inside an outer parallel region.
pub fn in_outer_parallelism() -> bool {
    OUTER_DEPTH.with(|depth| depth.get() > 0)
}

/// Whether a kernel over `len` elements should take its rayon path on this thread.
#[inline]
pub fn parallel_kernels_enabled(len: usize) -> bool {
    len >= par_threshold() && !in_outer_parallelism()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_positive_and_stable() {
        let first = par_threshold();
        assert!(first > 0);
        assert_eq!(par_threshold(), first);
    }

    #[test]
    fn guard_disables_and_restores() {
        assert!(!in_outer_parallelism());
        {
            let _g = enter_outer_parallelism();
            assert!(in_outer_parallelism());
            assert!(!parallel_kernels_enabled(usize::MAX));
            {
                let _g2 = enter_outer_parallelism();
                assert!(in_outer_parallelism());
            }
            assert!(in_outer_parallelism(), "guards must stack");
        }
        assert!(!in_outer_parallelism());
        assert!(parallel_kernels_enabled(usize::MAX));
    }

    #[test]
    fn small_lengths_stay_serial() {
        assert!(!parallel_kernels_enabled(0));
        assert!(!parallel_kernels_enabled(1));
    }
}
