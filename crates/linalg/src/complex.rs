//! A minimal, `Copy`, double-precision complex number.
//!
//! The simulator only needs a handful of operations (add/sub/mul, conjugate, modulus,
//! `e^{iθ}`), so rather than pulling in an external crate we define them here.  The type
//! is `#[repr(C)]` with the real part first so a `&[Complex64]` can be reinterpreted by
//! downstream FFI or GPU backends if one is ever added.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// This is the workhorse of the phase-separator kernel: the QAOA cost unitary
    /// multiplies each amplitude by `cis(-γ·C(x))`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 { re: c, im: s }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64 {
            re: r * c,
            im: r * s,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex64::from_polar(r, self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64 {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex64::new(1.0, 2.0).im, 2.0);
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE, Complex64::new(1.0, 0.0));
        assert_eq!(Complex64::I, Complex64::new(0.0, 1.0));
        assert_eq!(Complex64::from(3.5), Complex64::new(3.5, 0.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 4.0);
        assert!(close(a + b, Complex64::new(0.5, 6.0)));
        assert!(close(a - b, Complex64::new(1.5, -2.0)));
        let mut c = a;
        c += b;
        assert!(close(c, a + b));
        c -= b;
        assert!(close(c, a));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert!(close(a * b, Complex64::new(5.0, 5.0)));
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn division_and_inverse() {
        let a = Complex64::new(2.0, -3.0);
        assert!(close(a * a.inv(), Complex64::ONE));
        let b = Complex64::new(0.5, 0.25);
        assert!(close((a / b) * b, a));
        let mut c = a;
        c /= b;
        assert!(close(c * b, a));
    }

    #[test]
    fn scalar_ops() {
        let a = Complex64::new(1.0, -2.0);
        assert!(close(a * 2.0, Complex64::new(2.0, -4.0)));
        assert!(close(2.0 * a, Complex64::new(2.0, -4.0)));
        assert!(close(a / 2.0, Complex64::new(0.5, -1.0)));
        assert!(close(-a, Complex64::new(-1.0, 2.0)));
    }

    #[test]
    fn conjugate_and_modulus() {
        let a = Complex64::new(3.0, 4.0);
        assert!(close(a.conj(), Complex64::new(3.0, -4.0)));
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        assert!((a.abs() - 5.0).abs() < EPS);
        assert!((a * a.conj()).im.abs() < EPS);
    }

    #[test]
    fn cis_and_polar() {
        let theta = 0.73;
        let z = Complex64::cis(theta);
        assert!((z.abs() - 1.0).abs() < EPS);
        assert!((z.arg() - theta).abs() < EPS);
        let w = Complex64::from_polar(2.0, -1.1);
        assert!((w.abs() - 2.0).abs() < EPS);
        assert!((w.arg() + 1.1).abs() < EPS);
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.3, 1.2);
        let e = z.exp();
        let expected = Complex64::from_polar(0.3f64.exp(), 1.2);
        assert!(close(e, expected));
        // e^{iπ} = -1
        assert!(close(
            Complex64::new(0.0, std::f64::consts::PI).exp(),
            -Complex64::ONE
        ));
    }

    #[test]
    fn cis_is_group_homomorphism() {
        let a = 0.4;
        let b = -1.3;
        assert!(close(
            Complex64::cis(a) * Complex64::cis(b),
            Complex64::cis(a + b)
        ));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [
            Complex64::new(1.0, 1.0),
            Complex64::new(2.0, -0.5),
            Complex64::new(-3.0, 0.25),
        ];
        let by_val: Complex64 = v.iter().copied().sum();
        let by_ref: Complex64 = v.iter().sum();
        assert!(close(by_val, Complex64::new(0.0, 0.75)));
        assert!(close(by_ref, by_val));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
    }

    #[test]
    fn finiteness_check() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }
}
