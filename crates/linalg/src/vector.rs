//! Vector kernels over complex statevectors.
//!
//! These are the inner loops of the simulator: phase multiplications (the cost unitary),
//! inner products (expectation values, Grover-mixer overlaps) and axpy updates.  Every
//! kernel has a serial and a rayon-parallel path chosen by [`crate::PAR_THRESHOLD`], and
//! none of them allocate.

use crate::{Complex64, PAR_THRESHOLD};
use rayon::prelude::*;

/// Squared 2-norm `Σ |ψ_x|²` of a complex vector.
pub fn norm_sqr(v: &[Complex64]) -> f64 {
    if v.len() >= PAR_THRESHOLD {
        v.par_iter().map(|z| z.norm_sqr()).sum()
    } else {
        v.iter().map(|z| z.norm_sqr()).sum()
    }
}

/// 2-norm of a complex vector.
pub fn norm(v: &[Complex64]) -> f64 {
    norm_sqr(v).sqrt()
}

/// Normalises `v` to unit 2-norm in place. Returns the original norm.
///
/// A zero vector is left untouched and `0.0` is returned.
pub fn normalize(v: &mut [Complex64]) -> f64 {
    let n = norm(v);
    if n > 0.0 {
        let inv = 1.0 / n;
        scale(v, inv);
    }
    n
}

/// Scales every element of `v` by the real factor `s` in place.
pub fn scale(v: &mut [Complex64], s: f64) {
    if v.len() >= PAR_THRESHOLD {
        v.par_iter_mut().for_each(|z| *z = z.scale(s));
    } else {
        v.iter_mut().for_each(|z| *z = z.scale(s));
    }
}

/// Hermitian inner product `⟨a|b⟩ = Σ conj(a_x)·b_x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn inner(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "inner product of mismatched lengths");
    if a.len() >= PAR_THRESHOLD {
        a.par_iter()
            .zip(b.par_iter())
            .map(|(x, y)| x.conj() * *y)
            .sum()
    } else {
        a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
    }
}

/// `y += alpha * x` (complex axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    if x.len() >= PAR_THRESHOLD {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yi, xi)| *yi += alpha * *xi);
    } else {
        y.iter_mut()
            .zip(x.iter())
            .for_each(|(yi, xi)| *yi += alpha * *xi);
    }
}

/// Multiplies each amplitude by the phase `e^{-i·angle·values[x]}`.
///
/// This is the QAOA phase separator `e^{-iγ H_C}` (with `values = C(x)`), and is also
/// used for diagonalised mixers `e^{-iβ D}` where `values` holds the mixer eigenvalues.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn apply_phases(state: &mut [Complex64], values: &[f64], angle: f64) {
    assert_eq!(
        state.len(),
        values.len(),
        "phase kernel: state and value vectors must match"
    );
    if state.len() >= PAR_THRESHOLD {
        state
            .par_iter_mut()
            .zip(values.par_iter())
            .for_each(|(z, &c)| *z *= Complex64::cis(-angle * c));
    } else {
        state
            .iter_mut()
            .zip(values.iter())
            .for_each(|(z, &c)| *z *= Complex64::cis(-angle * c));
    }
}

/// Multiplies each amplitude by `-i·values[x]`, i.e. applies `-i·diag(values)`.
///
/// Used by the adjoint-gradient sweep, where differentiating `e^{-iγ H_C}` with respect
/// to `γ` brings down a factor `-i H_C`.
pub fn apply_neg_i_diag(state: &mut [Complex64], values: &[f64]) {
    assert_eq!(state.len(), values.len());
    let mul = |z: &mut Complex64, c: f64| {
        // (-i·c)·z = c·(im, -re)
        let w = Complex64::new(z.im * c, -z.re * c);
        *z = w;
    };
    if state.len() >= PAR_THRESHOLD {
        state
            .par_iter_mut()
            .zip(values.par_iter())
            .for_each(|(z, &c)| mul(z, c));
    } else {
        state.iter_mut().zip(values.iter()).for_each(|(z, &c)| mul(z, c));
    }
}

/// Weighted expectation `Σ values[x]·|ψ_x|²` of a diagonal observable.
///
/// For a normalised state this is `⟨ψ|diag(values)|ψ⟩`, i.e. the QAOA objective
/// `⟨β,γ|C(x)|β,γ⟩`.
pub fn diagonal_expectation(state: &[Complex64], values: &[f64]) -> f64 {
    assert_eq!(state.len(), values.len());
    if state.len() >= PAR_THRESHOLD {
        state
            .par_iter()
            .zip(values.par_iter())
            .map(|(z, &c)| z.norm_sqr() * c)
            .sum()
    } else {
        state
            .iter()
            .zip(values.iter())
            .map(|(z, &c)| z.norm_sqr() * c)
            .sum()
    }
}

/// Sum of all amplitudes `Σ ψ_x` (the un-normalised overlap with the uniform state).
pub fn amplitude_sum(state: &[Complex64]) -> Complex64 {
    if state.len() >= PAR_THRESHOLD {
        state.par_iter().copied().sum()
    } else {
        state.iter().copied().sum()
    }
}

/// Elementwise copy `dst ← src`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy_from(dst: &mut [Complex64], src: &[Complex64]) {
    assert_eq!(dst.len(), src.len());
    dst.copy_from_slice(src);
}

/// Fills the vector with the uniform superposition `1/√len`.
pub fn fill_uniform(state: &mut [Complex64]) {
    let amp = 1.0 / (state.len() as f64).sqrt();
    let val = Complex64::from_real(amp);
    if state.len() >= PAR_THRESHOLD {
        state.par_iter_mut().for_each(|z| *z = val);
    } else {
        state.iter_mut().for_each(|z| *z = val);
    }
}

/// Maximum absolute difference between two complex vectors.
pub fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(n: usize, f: impl Fn(usize) -> Complex64) -> Vec<Complex64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn norm_of_unit_basis_vector() {
        let mut v = vec![Complex64::ZERO; 8];
        v[3] = Complex64::ONE;
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        assert!((norm_sqr(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec_of(16, |i| Complex64::new(i as f64, -(i as f64) * 0.5));
        let old = normalize(&mut v);
        assert!(old > 0.0);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![Complex64::ZERO; 4];
        assert_eq!(normalize(&mut v), 0.0);
        assert!(v.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn inner_product_hermitian_symmetry() {
        let a = vec_of(10, |i| Complex64::new(i as f64 * 0.1, 1.0 - i as f64 * 0.2));
        let b = vec_of(10, |i| Complex64::new(-(i as f64) * 0.3, i as f64 * 0.05));
        let ab = inner(&a, &b);
        let ba = inner(&b, &a);
        assert!((ab - ba.conj()).abs() < 1e-12);
        assert!((inner(&a, &a).im).abs() < 1e-12);
    }

    #[test]
    fn axpy_matches_manual() {
        let x = vec_of(5, |i| Complex64::new(i as f64, 1.0));
        let mut y = vec_of(5, |i| Complex64::new(1.0, -(i as f64)));
        let y0 = y.clone();
        let alpha = Complex64::new(0.5, -2.0);
        axpy(alpha, &x, &mut y);
        for i in 0..5 {
            assert!((y[i] - (y0[i] + alpha * x[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_phases_preserves_norm_and_sets_phase() {
        let mut v = vec_of(8, |i| Complex64::new(1.0 + i as f64, -0.25 * i as f64));
        let before = norm(&v);
        let costs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let gamma = 0.7;
        let orig = v.clone();
        apply_phases(&mut v, &costs, gamma);
        assert!((norm(&v) - before).abs() < 1e-12);
        for i in 0..8 {
            let expected = orig[i] * Complex64::cis(-gamma * costs[i]);
            assert!((v[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn neg_i_diag_matches_multiplication() {
        let mut v = vec_of(6, |i| Complex64::new(i as f64, 2.0 - i as f64));
        let vals: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let orig = v.clone();
        apply_neg_i_diag(&mut v, &vals);
        for i in 0..6 {
            let expected = Complex64::new(0.0, -vals[i]) * orig[i];
            assert!((v[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_expectation_uniform_state_is_mean() {
        let n = 16;
        let mut v = vec![Complex64::ZERO; n];
        fill_uniform(&mut v);
        let costs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mean = costs.iter().sum::<f64>() / n as f64;
        assert!((diagonal_expectation(&v, &costs) - mean).abs() < 1e-12);
    }

    #[test]
    fn amplitude_sum_counts_uniform() {
        let n = 32;
        let mut v = vec![Complex64::ZERO; n];
        fill_uniform(&mut v);
        let s = amplitude_sum(&v);
        assert!((s.re - (n as f64).sqrt()).abs() < 1e-12);
        assert!(s.im.abs() < 1e-12);
    }

    #[test]
    fn parallel_path_matches_serial_path() {
        // Force the parallel branch with a large vector and compare against a serial fold.
        let n = PAR_THRESHOLD * 2;
        let v = vec_of(n, |i| {
            Complex64::new((i % 17) as f64 * 0.01, ((i * 7) % 13) as f64 * 0.02)
        });
        let serial: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm_sqr(&v) - serial).abs() < 1e-9 * serial.max(1.0));

        let costs: Vec<f64> = (0..n).map(|i| ((i * 31) % 23) as f64).collect();
        let serial_exp: f64 = v
            .iter()
            .zip(costs.iter())
            .map(|(z, &c)| z.norm_sqr() * c)
            .sum();
        let par_exp = diagonal_expectation(&v, &costs);
        assert!((par_exp - serial_exp).abs() < 1e-6 * serial_exp.abs().max(1.0));
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = vec_of(10, |i| Complex64::new(i as f64, 0.0));
        let mut b = a.clone();
        assert_eq!(max_abs_diff(&a, &b), 0.0);
        b[7] += Complex64::new(0.0, 1e-3);
        assert!((max_abs_diff(&a, &b) - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn inner_mismatched_lengths_panics() {
        let a = vec![Complex64::ONE; 3];
        let b = vec![Complex64::ONE; 4];
        let _ = inner(&a, &b);
    }
}
