//! Vector kernels over complex statevectors.
//!
//! These are the inner loops of the simulator: phase multiplications (the cost unitary),
//! inner products (expectation values, Grover-mixer overlaps) and axpy updates.  Every
//! kernel has a serial and a rayon-parallel path chosen by
//! [`crate::parallel_kernels_enabled`] (size threshold plus the outer-parallelism
//! guard), and none of them allocate.
//!
//! The *indexed* phase kernels ([`build_phase_table`], [`apply_phases_indexed`],
//! [`apply_phases_indexed_sum`]) are the table-driven fast path for objectives with few
//! distinct values: one `cis` evaluation per distinct value instead of one per
//! amplitude, with the per-amplitude sweep reduced to a gather-and-multiply.

use crate::{parallel_kernels_enabled, Complex64};
use rayon::prelude::*;

/// Squared 2-norm `Σ |ψ_x|²` of a complex vector.
pub fn norm_sqr(v: &[Complex64]) -> f64 {
    if parallel_kernels_enabled(v.len()) {
        v.par_iter().map(|z| z.norm_sqr()).sum()
    } else {
        v.iter().map(|z| z.norm_sqr()).sum()
    }
}

/// 2-norm of a complex vector.
pub fn norm(v: &[Complex64]) -> f64 {
    norm_sqr(v).sqrt()
}

/// Normalises `v` to unit 2-norm in place. Returns the original norm.
///
/// A zero vector is left untouched and `0.0` is returned.
pub fn normalize(v: &mut [Complex64]) -> f64 {
    let n = norm(v);
    if n > 0.0 {
        let inv = 1.0 / n;
        scale(v, inv);
    }
    n
}

/// Scales every element of `v` by the real factor `s` in place.
pub fn scale(v: &mut [Complex64], s: f64) {
    if parallel_kernels_enabled(v.len()) {
        v.par_iter_mut().for_each(|z| *z = z.scale(s));
    } else {
        v.iter_mut().for_each(|z| *z = z.scale(s));
    }
}

/// Hermitian inner product `⟨a|b⟩ = Σ conj(a_x)·b_x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn inner(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "inner product of mismatched lengths");
    if parallel_kernels_enabled(a.len()) {
        a.par_iter()
            .zip(b.par_iter())
            .map(|(x, y)| x.conj() * *y)
            .sum()
    } else {
        a.iter().zip(b.iter()).map(|(x, y)| x.conj() * *y).sum()
    }
}

/// `y += alpha * x` (complex axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    if parallel_kernels_enabled(x.len()) {
        y.par_iter_mut()
            .zip(x.par_iter())
            .for_each(|(yi, xi)| *yi += alpha * *xi);
    } else {
        y.iter_mut()
            .zip(x.iter())
            .for_each(|(yi, xi)| *yi += alpha * *xi);
    }
}

/// Multiplies each amplitude by the phase `e^{-i·angle·values[x]}`.
///
/// This is the QAOA phase separator `e^{-iγ H_C}` (with `values = C(x)`), and is also
/// used for diagonalised mixers `e^{-iβ D}` where `values` holds the mixer eigenvalues.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn apply_phases(state: &mut [Complex64], values: &[f64], angle: f64) {
    assert_eq!(
        state.len(),
        values.len(),
        "phase kernel: state and value vectors must match"
    );
    if parallel_kernels_enabled(state.len()) {
        state
            .par_iter_mut()
            .zip(values.par_iter())
            .for_each(|(z, &c)| *z *= Complex64::cis(-angle * c));
    } else {
        state
            .iter_mut()
            .zip(values.iter())
            .for_each(|(z, &c)| *z *= Complex64::cis(-angle * c));
    }
}

/// Fills `table` with the phase factors `e^{-i·angle·distinct[k]}`.
///
/// This is the per-round trigonometry of the table-driven phase separator: one `cis`
/// per *distinct* objective value, instead of one per amplitude.  `table` is resized to
/// `distinct.len()`, reusing its allocation across rounds.
pub fn build_phase_table(distinct: &[f64], angle: f64, table: &mut Vec<Complex64>) {
    table.clear();
    table.extend(distinct.iter().map(|&c| Complex64::cis(-angle * c)));
}

/// Multiplies each amplitude by its class's phase factor: `ψ_x *= table[class_idx[x]]`.
///
/// Together with [`build_phase_table`] this is the table-driven phase separator
/// `e^{-iγ H_C}`: the per-amplitude work is a gather and a complex multiply, with no
/// trigonometry in the sweep.  Produces bit-identical results to [`apply_phases`] for
/// the same `(value, angle)` pairs, because each factor is computed by the same
/// `cis(-angle·value)` expression.
///
/// # Panics
/// Panics if `state` and `class_idx` lengths differ, or if an index is out of range
/// for `table` (debug builds; release builds bound-check via the slice index).
pub fn apply_phases_indexed(state: &mut [Complex64], class_idx: &[u16], table: &[Complex64]) {
    assert_eq!(
        state.len(),
        class_idx.len(),
        "phase kernel: state and class-index vectors must match"
    );
    if parallel_kernels_enabled(state.len()) {
        state
            .par_iter_mut()
            .zip(class_idx.par_iter())
            .for_each(|(z, &k)| *z *= table[k as usize]);
    } else {
        state
            .iter_mut()
            .zip(class_idx.iter())
            .for_each(|(z, &k)| *z *= table[k as usize]);
    }
}

/// Applies the phase table and accumulates `Σ_x ψ_x` in the same memory sweep.
///
/// This fuses the phase separator with the Grover mixer's overlap reduction: a
/// GM-QAOA round needs `⟨ψ₀|e^{-iγ H_C}ψ⟩ ∝ Σ_x (e^{-iγ C(x)}ψ_x)`, and computing the
/// sum while the amplitudes are already in registers saves one full pass over the
/// statevector per round.
///
/// # Panics
/// Panics if `state` and `class_idx` lengths differ.
pub fn apply_phases_indexed_sum(
    state: &mut [Complex64],
    class_idx: &[u16],
    table: &[Complex64],
) -> Complex64 {
    assert_eq!(
        state.len(),
        class_idx.len(),
        "phase kernel: state and class-index vectors must match"
    );
    if parallel_kernels_enabled(state.len()) {
        state
            .par_iter_mut()
            .zip(class_idx.par_iter())
            .map(|(z, &k)| {
                *z *= table[k as usize];
                *z
            })
            .sum()
    } else {
        let mut sum = Complex64::ZERO;
        for (z, &k) in state.iter_mut().zip(class_idx.iter()) {
            *z *= table[k as usize];
            sum += *z;
        }
        sum
    }
}

/// Multiplies each amplitude by `-i·values[x]`, i.e. applies `-i·diag(values)`.
///
/// Used by the adjoint-gradient sweep, where differentiating `e^{-iγ H_C}` with respect
/// to `γ` brings down a factor `-i H_C`.
pub fn apply_neg_i_diag(state: &mut [Complex64], values: &[f64]) {
    assert_eq!(state.len(), values.len());
    let mul = |z: &mut Complex64, c: f64| {
        // (-i·c)·z = c·(im, -re)
        let w = Complex64::new(z.im * c, -z.re * c);
        *z = w;
    };
    if parallel_kernels_enabled(state.len()) {
        state
            .par_iter_mut()
            .zip(values.par_iter())
            .for_each(|(z, &c)| mul(z, c));
    } else {
        state
            .iter_mut()
            .zip(values.iter())
            .for_each(|(z, &c)| mul(z, c));
    }
}

/// Weighted expectation `Σ values[x]·|ψ_x|²` of a diagonal observable.
///
/// For a normalised state this is `⟨ψ|diag(values)|ψ⟩`, i.e. the QAOA objective
/// `⟨β,γ|C(x)|β,γ⟩`.
pub fn diagonal_expectation(state: &[Complex64], values: &[f64]) -> f64 {
    assert_eq!(state.len(), values.len());
    if parallel_kernels_enabled(state.len()) {
        state
            .par_iter()
            .zip(values.par_iter())
            .map(|(z, &c)| z.norm_sqr() * c)
            .sum()
    } else {
        state
            .iter()
            .zip(values.iter())
            .map(|(z, &c)| z.norm_sqr() * c)
            .sum()
    }
}

/// Sum of all amplitudes `Σ ψ_x` (the un-normalised overlap with the uniform state).
pub fn amplitude_sum(state: &[Complex64]) -> Complex64 {
    if parallel_kernels_enabled(state.len()) {
        state.par_iter().copied().sum()
    } else {
        state.iter().copied().sum()
    }
}

/// Elementwise copy `dst ← src`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn copy_from(dst: &mut [Complex64], src: &[Complex64]) {
    assert_eq!(dst.len(), src.len());
    dst.copy_from_slice(src);
}

/// Fills the vector with the uniform superposition `1/√len`.
pub fn fill_uniform(state: &mut [Complex64]) {
    let amp = 1.0 / (state.len() as f64).sqrt();
    let val = Complex64::from_real(amp);
    if parallel_kernels_enabled(state.len()) {
        state.par_iter_mut().for_each(|z| *z = val);
    } else {
        state.iter_mut().for_each(|z| *z = val);
    }
}

/// Maximum absolute difference between two complex vectors.
pub fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(n: usize, f: impl Fn(usize) -> Complex64) -> Vec<Complex64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn norm_of_unit_basis_vector() {
        let mut v = vec![Complex64::ZERO; 8];
        v[3] = Complex64::ONE;
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        assert!((norm_sqr(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec_of(16, |i| Complex64::new(i as f64, -(i as f64) * 0.5));
        let old = normalize(&mut v);
        assert!(old > 0.0);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![Complex64::ZERO; 4];
        assert_eq!(normalize(&mut v), 0.0);
        assert!(v.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn inner_product_hermitian_symmetry() {
        let a = vec_of(10, |i| Complex64::new(i as f64 * 0.1, 1.0 - i as f64 * 0.2));
        let b = vec_of(10, |i| Complex64::new(-(i as f64) * 0.3, i as f64 * 0.05));
        let ab = inner(&a, &b);
        let ba = inner(&b, &a);
        assert!((ab - ba.conj()).abs() < 1e-12);
        assert!((inner(&a, &a).im).abs() < 1e-12);
    }

    #[test]
    fn axpy_matches_manual() {
        let x = vec_of(5, |i| Complex64::new(i as f64, 1.0));
        let mut y = vec_of(5, |i| Complex64::new(1.0, -(i as f64)));
        let y0 = y.clone();
        let alpha = Complex64::new(0.5, -2.0);
        axpy(alpha, &x, &mut y);
        for i in 0..5 {
            assert!((y[i] - (y0[i] + alpha * x[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_phases_preserves_norm_and_sets_phase() {
        let mut v = vec_of(8, |i| Complex64::new(1.0 + i as f64, -0.25 * i as f64));
        let before = norm(&v);
        let costs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let gamma = 0.7;
        let orig = v.clone();
        apply_phases(&mut v, &costs, gamma);
        assert!((norm(&v) - before).abs() < 1e-12);
        for i in 0..8 {
            let expected = orig[i] * Complex64::cis(-gamma * costs[i]);
            assert!((v[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn indexed_phases_match_dense_phases_exactly() {
        // 64 amplitudes over only 5 distinct objective values.
        let distinct = [-2.0, -0.5, 0.0, 1.25, 3.0];
        let class_idx: Vec<u16> = (0..64).map(|i| ((i * 7) % 5) as u16).collect();
        let values: Vec<f64> = class_idx.iter().map(|&k| distinct[k as usize]).collect();
        let gamma = 0.9137;

        let mut dense = vec_of(64, |i| {
            Complex64::new(0.1 * i as f64, 1.0 - 0.05 * i as f64)
        });
        let mut indexed = dense.clone();
        apply_phases(&mut dense, &values, gamma);

        let mut table = Vec::new();
        build_phase_table(&distinct, gamma, &mut table);
        assert_eq!(table.len(), distinct.len());
        apply_phases_indexed(&mut indexed, &class_idx, &table);

        // Same cis(-γ·value) expression on both paths: bit-identical, not just close.
        for (a, b) in dense.iter().zip(indexed.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn indexed_sum_fusion_matches_separate_sweeps() {
        let distinct = [0.0, 1.0, 4.0];
        let class_idx: Vec<u16> = (0..48).map(|i| (i % 3) as u16).collect();
        let beta = -1.234;
        let mut table = Vec::new();
        build_phase_table(&distinct, beta, &mut table);

        let mut fused = vec_of(48, |i| Complex64::new((i as f64).cos(), (i as f64).sin()));
        let mut unfused = fused.clone();

        let sum_fused = apply_phases_indexed_sum(&mut fused, &class_idx, &table);
        apply_phases_indexed(&mut unfused, &class_idx, &table);
        let sum_unfused = amplitude_sum(&unfused);

        assert!(max_abs_diff(&fused, &unfused) == 0.0);
        assert!((sum_fused - sum_unfused).abs() < 1e-12);
    }

    #[test]
    fn phase_table_reuses_allocation() {
        let mut table = Vec::with_capacity(8);
        build_phase_table(&[1.0, 2.0], 0.5, &mut table);
        let ptr = table.as_ptr();
        build_phase_table(&[3.0, 4.0], 0.25, &mut table);
        assert_eq!(table.as_ptr(), ptr);
        assert!((table[0] - Complex64::cis(-0.25 * 3.0)).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn indexed_phases_mismatched_lengths_panic() {
        let mut state = vec![Complex64::ONE; 4];
        let idx = vec![0u16; 5];
        apply_phases_indexed(&mut state, &idx, &[Complex64::ONE]);
    }

    #[test]
    fn neg_i_diag_matches_multiplication() {
        let mut v = vec_of(6, |i| Complex64::new(i as f64, 2.0 - i as f64));
        let vals: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let orig = v.clone();
        apply_neg_i_diag(&mut v, &vals);
        for i in 0..6 {
            let expected = Complex64::new(0.0, -vals[i]) * orig[i];
            assert!((v[i] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_expectation_uniform_state_is_mean() {
        let n = 16;
        let mut v = vec![Complex64::ZERO; n];
        fill_uniform(&mut v);
        let costs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mean = costs.iter().sum::<f64>() / n as f64;
        assert!((diagonal_expectation(&v, &costs) - mean).abs() < 1e-12);
    }

    #[test]
    fn amplitude_sum_counts_uniform() {
        let n = 32;
        let mut v = vec![Complex64::ZERO; n];
        fill_uniform(&mut v);
        let s = amplitude_sum(&v);
        assert!((s.re - (n as f64).sqrt()).abs() < 1e-12);
        assert!(s.im.abs() < 1e-12);
    }

    #[test]
    fn parallel_path_matches_serial_path() {
        // Force the parallel branch with a large vector and compare against a serial fold.
        let n = crate::par_threshold() * 2;
        let v = vec_of(n, |i| {
            Complex64::new((i % 17) as f64 * 0.01, ((i * 7) % 13) as f64 * 0.02)
        });
        let serial: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm_sqr(&v) - serial).abs() < 1e-9 * serial.max(1.0));

        let costs: Vec<f64> = (0..n).map(|i| ((i * 31) % 23) as f64).collect();
        let serial_exp: f64 = v
            .iter()
            .zip(costs.iter())
            .map(|(z, &c)| z.norm_sqr() * c)
            .sum();
        let par_exp = diagonal_expectation(&v, &costs);
        assert!((par_exp - serial_exp).abs() < 1e-6 * serial_exp.abs().max(1.0));
    }

    #[test]
    fn max_abs_diff_detects_perturbation() {
        let a = vec_of(10, |i| Complex64::new(i as f64, 0.0));
        let mut b = a.clone();
        assert_eq!(max_abs_diff(&a, &b), 0.0);
        b[7] += Complex64::new(0.0, 1e-3);
        assert!((max_abs_diff(&a, &b) - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn inner_mismatched_lengths_panics() {
        let a = vec![Complex64::ONE; 3];
        let b = vec![Complex64::ONE; 4];
        let _ = inner(&a, &b);
    }
}
