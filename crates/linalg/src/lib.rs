//! Dense linear-algebra kernels used by the `juliqaoa` QAOA simulator.
//!
//! This crate is the substrate that replaces Julia's `LinearAlgebra`/BLAS stack in the
//! original JuliQAOA package.  It provides exactly the operations the simulator needs,
//! written so the hot paths are allocation-free and data-parallel (via [`rayon`]):
//!
//! * [`Complex64`] — a `Copy` double-precision complex number with the arithmetic the
//!   statevector kernels need (no external `num-complex` dependency).
//! * [`vector`] — norms, inner products, axpy and phase-multiplication kernels over
//!   complex slices, with parallel variants for large statevectors.
//! * [`matrix::RealMatrix`] / [`matrix::ComplexMatrix`] — dense row-major matrices with
//!   (parallel) matrix–vector products against complex vectors; used to apply the
//!   eigendecomposition `V e^{-iβD} Vᵀ` of constrained mixers.
//! * [`eigen`] — a self-contained symmetric eigensolver (Householder tridiagonalisation
//!   followed by the implicit-shift QL algorithm), used to pre-compute Clique/Ring mixer
//!   diagonalisations.
//! * [`walsh`] — in-place fast Walsh–Hadamard transforms (`H^{⊗n}`), the diagonalising
//!   change of basis for every Pauli-X product mixer.
//!
//! All kernels choose between a serial and a rayon-parallel implementation based on the
//! problem size so that small-n simulations keep their "functionally zero overhead"
//! property from the paper while large-n simulations saturate the available cores.

pub mod complex;
pub mod eigen;
pub mod matrix;
pub mod parallel;
pub mod vector;
pub mod walsh;

pub use complex::Complex64;
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use matrix::{ComplexMatrix, RealMatrix};
pub use parallel::{
    enter_outer_parallelism, in_outer_parallelism, par_threshold, parallel_kernels_enabled,
    OuterParallelGuard, DEFAULT_PAR_THRESHOLD,
};
