//! Fast Walsh–Hadamard transforms (`H^{⊗n}`).
//!
//! Every Pauli-X product mixer Hamiltonian `f(X_i)` is diagonalised by the uniform
//! Hadamard rotation: `e^{-iβ f(X_i)} = H^{⊗n} e^{-iβ f(Z_i)} H^{⊗n}` (Eq. 2 in the
//! paper).  Applying `H^{⊗n}` to a statevector is the butterfly-structured fast
//! Walsh–Hadamard transform, costing `O(n·2ⁿ)` — the "appropriate tensor contractions"
//! of §2.2.  This module provides an in-place, normalised (unitary) transform with a
//! rayon-parallel path for large states.

use crate::{parallel_kernels_enabled, Complex64};
use juliqaoa_telemetry::kernels::KERNELS;
use rayon::prelude::*;

/// Applies the unitary transform `H^{⊗n}` to `state` in place.
///
/// `state.len()` must be a power of two; `n = log2(len)`.  The transform is normalised
/// (an overall `2^{-n/2}` factor), so applying it twice returns the original state.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn walsh_hadamard(state: &mut [Complex64]) {
    let len = state.len();
    assert!(
        len.is_power_of_two(),
        "statevector length must be a power of two"
    );
    KERNELS.wht_passes.inc();
    if parallel_kernels_enabled(len) {
        walsh_hadamard_butterflies_parallel(state);
    } else {
        walsh_hadamard_butterflies_serial(state);
    }
    let scale = 1.0 / (len as f64).sqrt();
    if parallel_kernels_enabled(len) {
        state.par_iter_mut().for_each(|z| *z = z.scale(scale));
    } else {
        state.iter_mut().for_each(|z| *z = z.scale(scale));
    }
}

/// Applies the *unnormalised* Walsh–Hadamard transform (all butterflies, no `2^{-n/2}`).
///
/// Useful when the caller folds the normalisation into another constant; applying it
/// twice multiplies the state by `2ⁿ`.
pub fn walsh_hadamard_unnormalized(state: &mut [Complex64]) {
    let len = state.len();
    assert!(
        len.is_power_of_two(),
        "statevector length must be a power of two"
    );
    KERNELS.wht_passes.inc();
    if parallel_kernels_enabled(len) {
        walsh_hadamard_butterflies_parallel(state);
    } else {
        walsh_hadamard_butterflies_serial(state);
    }
}

fn walsh_hadamard_butterflies_serial(state: &mut [Complex64]) {
    let len = state.len();
    let mut h = 1;
    while h < len {
        let step = h * 2;
        let mut start = 0;
        while start < len {
            for i in start..start + h {
                let a = state[i];
                let b = state[i + h];
                state[i] = a + b;
                state[i + h] = a - b;
            }
            start += step;
        }
        h = step;
    }
}

fn walsh_hadamard_butterflies_parallel(state: &mut [Complex64]) {
    let len = state.len();
    let mut h = 1;
    while h < len {
        let step = h * 2;
        let num_blocks = len / step;
        if num_blocks >= rayon::current_num_threads() {
            // Many independent blocks: parallelise across blocks.
            state.par_chunks_mut(step).for_each(|block| {
                let (lo, hi) = block.split_at_mut(h);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let x = *a;
                    let y = *b;
                    *a = x + y;
                    *b = x - y;
                }
            });
        } else {
            // Few large blocks: parallelise the pair loop inside each block.
            for block in state.chunks_mut(step) {
                let (lo, hi) = block.split_at_mut(h);
                lo.par_iter_mut().zip(hi.par_iter_mut()).for_each(|(a, b)| {
                    let x = *a;
                    let y = *b;
                    *a = x + y;
                    *b = x - y;
                });
            }
        }
        h = step;
    }
}

/// Evaluates the Walsh character `(-1)^{popcount(x & y)}`, i.e. the `(x, y)` entry of the
/// unnormalised Hadamard matrix `H^{⊗n}·2^{n/2}`.  Used for spot-checking the transform.
pub fn walsh_character(x: usize, y: usize) -> f64 {
    if (x & y).count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn basis_state(len: usize, idx: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; len];
        v[idx] = Complex64::ONE;
        v
    }

    #[test]
    fn hadamard_of_basis_zero_is_uniform() {
        let n = 4;
        let len = 1 << n;
        let mut v = basis_state(len, 0);
        walsh_hadamard(&mut v);
        let amp = 1.0 / (len as f64).sqrt();
        for z in &v {
            assert!((z.re - amp).abs() < 1e-12);
            assert!(z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn transform_is_self_inverse() {
        let len = 1 << 6;
        let orig: Vec<Complex64> = (0..len)
            .map(|i| Complex64::new((i % 7) as f64 * 0.3 - 1.0, (i % 5) as f64 * 0.2))
            .collect();
        let mut v = orig.clone();
        walsh_hadamard(&mut v);
        walsh_hadamard(&mut v);
        assert!(vector::max_abs_diff(&v, &orig) < 1e-12);
    }

    #[test]
    fn transform_preserves_norm() {
        let len = 1 << 7;
        let mut v: Vec<Complex64> = (0..len)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let before = vector::norm(&v);
        walsh_hadamard(&mut v);
        assert!((vector::norm(&v) - before).abs() < 1e-10);
    }

    #[test]
    fn matches_walsh_character_matrix() {
        // H^{⊗n}|y⟩ should have amplitude 2^{-n/2}·(-1)^{x·y} at position x.
        let n = 5;
        let len = 1 << n;
        let scale = 1.0 / (len as f64).sqrt();
        for y in [0usize, 1, 7, 19, 31] {
            let mut v = basis_state(len, y);
            walsh_hadamard(&mut v);
            for (x, amp) in v.iter().enumerate() {
                let expected = scale * walsh_character(x, y);
                assert!((amp.re - expected).abs() < 1e-12, "x={x} y={y}");
                assert!(amp.im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unnormalized_twice_scales_by_length() {
        let len = 1 << 5;
        let orig: Vec<Complex64> = (0..len)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut v = orig.clone();
        walsh_hadamard_unnormalized(&mut v);
        walsh_hadamard_unnormalized(&mut v);
        for i in 0..len {
            assert!((v[i] - orig[i].scale(len as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_path_matches_serial_path() {
        let len = crate::par_threshold() * 4; // force the parallel branch
        let orig: Vec<Complex64> = (0..len)
            .map(|i| {
                Complex64::new(
                    ((i * 37) % 101) as f64 * 0.01,
                    ((i * 13) % 17) as f64 * 0.05,
                )
            })
            .collect();
        let mut par = orig.clone();
        walsh_hadamard(&mut par);
        let mut ser = orig;
        walsh_hadamard_butterflies_serial(&mut ser);
        let scale = 1.0 / (len as f64).sqrt();
        ser.iter_mut().for_each(|z| *z = z.scale(scale));
        assert!(vector::max_abs_diff(&par, &ser) < 1e-9);
    }

    #[test]
    fn single_element_transform_is_identity() {
        let mut v = vec![Complex64::new(0.3, -0.4)];
        walsh_hadamard(&mut v);
        assert!((v[0] - Complex64::new(0.3, -0.4)).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let mut v = vec![Complex64::ZERO; 6];
        walsh_hadamard(&mut v);
    }

    #[test]
    fn walsh_character_parity() {
        assert_eq!(walsh_character(0b101, 0b100), -1.0);
        assert_eq!(walsh_character(0b101, 0b101), 1.0);
        assert_eq!(walsh_character(0, 12345), 1.0);
    }
}
