//! Dense symmetric eigensolver.
//!
//! Constrained-problem mixers (Clique, Ring) do not diagonalise with single-qubit gates,
//! so JuliQAOA pre-computes the eigendecomposition `H_M = V D Vᵀ` once and re-uses it in
//! every simulation.  This module provides that decomposition for real symmetric matrices
//! using the classic two-stage approach:
//!
//! 1. Householder reduction to tridiagonal form (`tred2`),
//! 2. implicit-shift QL iteration with eigenvector accumulation (`tql2`).
//!
//! The implementation follows the public-domain EISPACK/JAMA formulation, translated to
//! 0-based row-major Rust.  The cost is `O(m³)` for an `m×m` matrix — exactly the
//! "costly but done once" pre-computation the paper describes.

use crate::matrix::RealMatrix;

/// The eigendecomposition `A = V · diag(eigenvalues) · Vᵀ` of a real symmetric matrix.
///
/// Column `j` of [`SymmetricEigen::eigenvectors`] is the (unit-norm) eigenvector for
/// `eigenvalues[j]`.  Eigenvalues are sorted in ascending order.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthogonal matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: RealMatrix,
}

impl SymmetricEigen {
    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Reconstructs the original matrix `V D Vᵀ`; used in tests and sanity checks.
    pub fn reconstruct(&self) -> RealMatrix {
        let n = self.dim();
        let v = &self.eigenvectors;
        RealMatrix::from_fn(n, n, |i, j| {
            let mut acc = 0.0;
            for (k, &lambda) in self.eigenvalues.iter().enumerate() {
                acc += v[(i, k)] * lambda * v[(j, k)];
            }
            acc
        })
    }

    /// Maximum deviation of `VᵀV` from the identity; an orthogonality check.
    pub fn orthogonality_defect(&self) -> f64 {
        let n = self.dim();
        let v = &self.eigenvectors;
        let mut max = 0.0f64;
        for a in 0..n {
            for b in 0..n {
                let mut dot = 0.0;
                for k in 0..n {
                    dot += v[(k, a)] * v[(k, b)];
                }
                let expected = if a == b { 1.0 } else { 0.0 };
                max = max.max((dot - expected).abs());
            }
        }
        max
    }
}

/// Computes the eigendecomposition of a real symmetric matrix.
///
/// # Panics
/// Panics if the matrix is not square.  The upper triangle is assumed to mirror the
/// lower triangle; only the values actually stored are used, so a slightly asymmetric
/// input (from floating-point noise) is effectively symmetrised.
pub fn symmetric_eigen(a: &RealMatrix) -> SymmetricEigen {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "eigendecomposition requires a square matrix"
    );
    let n = a.nrows();
    if n == 0 {
        return SymmetricEigen {
            eigenvalues: Vec::new(),
            eigenvectors: RealMatrix::zeros(0, 0),
        };
    }
    // v starts as a copy of the input and is overwritten with the eigenvectors.
    let mut v: Vec<Vec<f64>> = (0..n).map(|i| a.row(i).to_vec()).collect();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e);

    let eigenvectors = RealMatrix::from_fn(n, n, |i, j| v[i][j]);
    SymmetricEigen {
        eigenvalues: d,
        eigenvectors,
    }
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
///
/// On exit `d` holds the diagonal, `e` the sub-diagonal (with `e[0] = 0`), and `v` the
/// accumulated orthogonal transformation.
#[allow(clippy::needless_range_loop)] // index-coupled EISPACK loops, kept close to the reference
fn tred2(v: &mut [Vec<f64>], d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    d.copy_from_slice(&v[n - 1]);

    // Householder reduction to tridiagonal form.
    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for item in d.iter().take(i) {
            scale += item.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v[i - 1][j];
                v[i][j] = 0.0;
                v[j][i] = 0.0;
            }
        } else {
            // Generate Householder vector.
            for item in d.iter_mut().take(i) {
                *item /= scale;
                h += *item * *item;
            }
            let mut f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for item in e.iter_mut().take(i) {
                *item = 0.0;
            }

            // Apply similarity transformation to remaining columns.
            for j in 0..i {
                f = d[j];
                v[j][i] = f;
                g = e[j] + v[j][j] * f;
                for k in (j + 1)..i {
                    g += v[k][j] * d[k];
                    e[k] += v[k][j] * f;
                }
                e[j] = g;
            }
            f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            for j in 0..i {
                f = d[j];
                g = e[j];
                for k in j..i {
                    v[k][j] -= f * e[k] + g * d[k];
                }
                d[j] = v[i - 1][j];
                v[i][j] = 0.0;
            }
        }
        d[i] = h;
    }

    // Accumulate transformations.
    for i in 0..(n - 1) {
        v[n - 1][i] = v[i][i];
        v[i][i] = 1.0;
        let h = d[i + 1];
        if h != 0.0 {
            for k in 0..=i {
                d[k] = v[k][i + 1] / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += v[k][i + 1] * v[k][j];
                }
                for k in 0..=i {
                    v[k][j] -= g * d[k];
                }
            }
        }
        for k in 0..=i {
            v[k][i + 1] = 0.0;
        }
    }
    for j in 0..n {
        d[j] = v[n - 1][j];
        v[n - 1][j] = 0.0;
    }
    v[n - 1][n - 1] = 1.0;
    e[0] = 0.0;
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix with eigenvector
/// accumulation, plus a final ascending sort of the eigenpairs.
#[allow(clippy::needless_range_loop)] // index-coupled EISPACK loops, kept close to the reference
fn tql2(v: &mut [Vec<f64>], d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0;
    let mut tst1: f64 = 0.0;
    let eps = f64::EPSILON;
    for l in 0..n {
        // Find a small subdiagonal element.
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m >= n {
            m = n - 1;
        }

        // If m == l, d[l] is already an eigenvalue; otherwise iterate.
        if m > l {
            let mut iter = 0;
            loop {
                iter += 1;
                assert!(
                    iter <= 1000,
                    "symmetric eigensolver failed to converge after 1000 QL iterations"
                );

                // Compute implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = hypot(p, 1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for item in d.iter_mut().take(n).skip(l + 2) {
                    *item -= h;
                }
                f += h;

                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0;
                let mut s2 = 0.0;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g = c * e[i];
                    h = c * p;
                    r = hypot(p, e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);

                    // Accumulate the rotation into the eigenvector matrix.
                    for row in v.iter_mut().take(n) {
                        h = row[i + 1];
                        row[i + 1] = s * row[i] + c * h;
                        row[i] = c * row[i] - s * h;
                    }
                }
                // Off-diagonal correction (JAMA/EISPACK formulation).
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;

                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }

    // Sort eigenvalues (ascending) and reorder eigenvector columns to match.
    for i in 0..n.saturating_sub(1) {
        let mut k = i;
        let mut p = d[i];
        for j in (i + 1)..n {
            if d[j] < p {
                k = j;
                p = d[j];
            }
        }
        if k != i {
            d[k] = d[i];
            d[i] = p;
            for row in v.iter_mut().take(n) {
                row.swap(i, k);
            }
        }
    }
}

#[inline]
fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs(v: &[f64]) -> f64 {
        v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let diag = [3.0, -1.0, 2.5, 0.0];
        let m = RealMatrix::from_fn(4, 4, |i, j| if i == j { diag[i] } else { 0.0 });
        let eig = symmetric_eigen(&m);
        let mut sorted = diag.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let diffs: Vec<f64> = eig
            .eigenvalues
            .iter()
            .zip(sorted.iter())
            .map(|(a, b)| a - b)
            .collect();
        assert!(max_abs(&diffs) < 1e-12);
        assert!(eig.orthogonality_defect() < 1e-10);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = RealMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = symmetric_eigen(&m);
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
        // Eigenvector for eigenvalue 3 is (1,1)/√2 up to sign.
        let v = &eig.eigenvectors;
        assert!((v[(0, 1)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[(1, 1)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_of_random_symmetric_matrix() {
        // A deterministic pseudo-random symmetric matrix.
        let n = 20;
        let m = RealMatrix::from_fn(n, n, |i, j| {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            (((a * 31 + b * 17) % 13) as f64 - 6.0) * 0.37
        });
        assert!(m.is_symmetric(0.0));
        let eig = symmetric_eigen(&m);
        let rec = eig.reconstruct();
        assert!(m.frobenius_diff(&rec) < 1e-8);
        assert!(eig.orthogonality_defect() < 1e-9);
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let n = 15;
        let m = RealMatrix::from_fn(n, n, |i, j| {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            ((a * 7 + b * 3) % 11) as f64 - 5.0
        });
        let eig = symmetric_eigen(&m);
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let n = 12;
        let m = RealMatrix::from_fn(n, n, |i, j| {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            (((a + 1) * (b + 2)) % 7) as f64 * 0.5 - 1.0
        });
        let eig = symmetric_eigen(&m);
        // Check A·v_k = λ_k·v_k for every eigenpair.
        for k in 0..n {
            let lambda = eig.eigenvalues[k];
            for i in 0..n {
                let mut av = 0.0;
                for j in 0..n {
                    av += m[(i, j)] * eig.eigenvectors[(j, k)];
                }
                assert!(
                    (av - lambda * eig.eigenvectors[(i, k)]).abs() < 1e-8,
                    "eigenpair {k} violates A v = λ v at row {i}"
                );
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let n = 25;
        let m = RealMatrix::from_fn(n, n, |i, j| {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            ((a * b + a + 3 * b) % 9) as f64 - 4.0
        });
        let trace: f64 = (0..n).map(|i| m[(i, i)]).sum();
        let eig = symmetric_eigen(&m);
        let eigsum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - eigsum).abs() < 1e-8);
    }

    #[test]
    fn handles_1x1_and_empty() {
        let m1 = RealMatrix::from_vec(1, 1, vec![4.2]);
        let e1 = symmetric_eigen(&m1);
        assert_eq!(e1.eigenvalues, vec![4.2]);
        assert!((e1.eigenvectors[(0, 0)].abs() - 1.0).abs() < 1e-14);

        let m0 = RealMatrix::zeros(0, 0);
        let e0 = symmetric_eigen(&m0);
        assert!(e0.eigenvalues.is_empty());
    }

    #[test]
    fn handles_already_tridiagonal_matrix() {
        // Tridiagonal Toeplitz matrix with 2 on the diagonal and -1 off-diagonal has
        // known eigenvalues 2 - 2cos(kπ/(n+1)).
        let n = 10;
        let m = RealMatrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let eig = symmetric_eigen(&m);
        let mut expected: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expected.sort_by(|a, b| a.total_cmp(b));
        for (got, want) in eig.eigenvalues.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_eigenvalues_still_give_orthogonal_vectors() {
        // The 4x4 all-ones matrix has eigenvalues {4, 0, 0, 0}.
        let m = RealMatrix::from_fn(4, 4, |_, _| 1.0);
        let eig = symmetric_eigen(&m);
        assert!((eig.eigenvalues[3] - 4.0).abs() < 1e-10);
        for k in 0..3 {
            assert!(eig.eigenvalues[k].abs() < 1e-10);
        }
        assert!(eig.orthogonality_defect() < 1e-9);
        assert!(m.frobenius_diff(&eig.reconstruct()) < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_square_matrix_panics() {
        let m = RealMatrix::zeros(3, 4);
        let _ = symmetric_eigen(&m);
    }
}
