//! Batch execution: run a job file with sharded rayon parallelism, append results to
//! a crash-safe JSONL journal, and resume after interruption.
//!
//! Results are written one JSON object per line as jobs finish, each line checksummed
//! and flushed through the [`crate::journal`] — killing the process mid-batch loses at
//! most in-flight jobs.  Resuming first *recovers* the journal (truncating any torn
//! trailing line a kill left behind, so the next append cannot glue onto a fragment),
//! then collects the ids of `"done"` lines and skips those jobs; everything else
//! (including jobs that were mid-flight, previously cancelled, timed out or failed)
//! runs again.  Per-job results are pure functions of the spec, so a resumed batch
//! produces the same set of result lines as an uninterrupted one, just possibly in a
//! different order.
//!
//! Transient failures — a panicked job attempt, an I/O error on the journal — are
//! re-attempted under the batch's [`RetryPolicy`] with deterministic backoff; jobs
//! whose spec carries a `timeout_ms` run under a cooperative deadline and report
//! `"timed_out"` with their partial best when it expires.
//!
//! Parallelism is the same outer-loop pattern as the angle-finding drivers: jobs fan
//! out across worker threads, each worker holds the `enter_outer_parallelism` guard so
//! per-job inner kernels (and the optimizer drivers' own candidate loops) stay serial
//! instead of nesting fan-outs.

use crate::engine::{Engine, ServiceError};
use crate::journal::{self, FsyncPolicy, Journal, LineCheck};
use crate::retry::RetryPolicy;
use crate::spans::{format_trace_parent, parse_trace_parent, TRACE_PARENT_ENV};
use crate::spec::{JobFile, JobSpec};
use juliqaoa_combinatorics::seeding::fold_bits;
use juliqaoa_linalg::enter_outer_parallelism;
use juliqaoa_optim::RunControl;
use juliqaoa_telemetry::{Span, SpanCollector, SpanId, TraceId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufRead, BufReader, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Summary of a batch run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct BatchSummary {
    /// Jobs in the spec file.
    pub total: usize,
    /// Jobs executed this run.
    pub executed: usize,
    /// Jobs skipped because a `"done"` result already existed (resume).
    pub skipped: usize,
    /// Jobs that failed with an error.
    pub failed: usize,
    /// Wall-clock seconds spent executing.
    pub elapsed_s: f64,
    /// Executed jobs per second (0 when nothing ran).
    pub jobs_per_sec: f64,
}

/// Loads a job file: either `{"jobs": [...]}` or a bare JSON array of specs.
pub fn load_job_file(path: impl AsRef<Path>) -> Result<Vec<JobSpec>, ServiceError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServiceError::Io(format!("reading {}: {e}", path.display())))?;
    let jobs = if let Ok(file) = serde_json::from_str::<JobFile>(&text) {
        file.jobs
    } else {
        serde_json::from_str::<Vec<JobSpec>>(&text)
            .map_err(|e| ServiceError::Io(format!("parsing {}: {e}", path.display())))?
    };
    let mut seen = HashSet::new();
    for job in &jobs {
        if !seen.insert(job.id.as_str()) {
            return Err(ServiceError::Spec(format!(
                "duplicate job id {:?} in {}",
                job.id,
                path.display()
            )));
        }
    }
    Ok(jobs)
}

/// Ids of jobs with a `"done"` result line in an existing JSONL output file.
///
/// Tolerant of interruption artefacts: unparsable lines (e.g. a half-written final
/// line from a killed process) are ignored, as are non-`done` lines and lines whose
/// journal checksum fails — those jobs simply run again.
pub fn completed_ids(out_path: impl AsRef<Path>) -> HashSet<String> {
    let mut done = HashSet::new();
    let Ok(file) = File::open(out_path.as_ref()) else {
        return done;
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // A checksummed line that fails verification was torn or altered; its
        // `"done"` cannot be trusted, so the job reruns.
        if journal::verify_line(line.trim_end_matches('\r')) == LineCheck::Corrupt {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(&line) else {
            continue;
        };
        let id = v.get_field("id").and_then(Value::as_str);
        let status = v.get_field("status").and_then(Value::as_str);
        if let (Some(id), Some("done")) = (id, status) {
            done.insert(id.to_string());
        }
    }
    done
}

/// A failed job's JSONL line (parallel shape to `JobResult`, status `"failed"`).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
struct FailedLine {
    id: String,
    status: String,
    error: String,
}

/// Knobs for one batch run beyond the job list itself.
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Skip jobs whose `"done"` line already exists in the output (and recover the
    /// journal's tail before appending).
    pub resume: bool,
    /// How hard each result line is pushed toward the disk.
    pub fsync: FsyncPolicy,
    /// Retry policy for transient failures — panicked job attempts and journal
    /// write errors.  Off by default.
    pub retry: RetryPolicy,
    /// Optional JSONL file every completed span is appended to (`--trace-out`):
    /// per-job root spans, the engine's per-stage children and, in sharded
    /// mode, the batch/shard supervision spans.
    pub trace_path: Option<std::path::PathBuf>,
}

/// Runs `jobs` against `engine`, appending one JSONL line per job to `out_path`.
///
/// With `resume`, jobs whose `"done"` line already exists in `out_path` are skipped.
/// Shorthand for [`run_batch_with`] at the default fsync/retry options.
pub fn run_batch(
    engine: &Engine,
    jobs: &[JobSpec],
    out_path: impl AsRef<Path>,
    resume: bool,
) -> Result<BatchSummary, ServiceError> {
    run_batch_with(
        engine,
        jobs,
        out_path,
        &BatchOptions {
            resume,
            ..Default::default()
        },
    )
}

/// Builds the span collector a batch run records into — per-job root spans and
/// the engine's per-stage children — mirroring every span to `trace_path` as
/// JSONL when set.
fn batch_span_collector(trace_path: Option<&Path>) -> Result<Arc<SpanCollector>, ServiceError> {
    let spans = Arc::new(SpanCollector::new(
        crate::spans::default_trace_cap(),
        crate::spans::collector_salt(),
    ));
    if let Some(path) = trace_path {
        let file = File::create(path)
            .map_err(|e| ServiceError::Io(format!("creating {}: {e}", path.display())))?;
        let out = Arc::new(Mutex::new(std::io::BufWriter::new(file)));
        spans.set_sink(Box::new(move |span: &Span| {
            let mut w = out.lock().expect("trace out lock");
            let _ = writeln!(w, "{}", span.to_json_line());
            let _ = w.flush();
        }));
    }
    Ok(spans)
}

/// [`run_batch`] with explicit fault-tolerance options.
pub fn run_batch_with(
    engine: &Engine,
    jobs: &[JobSpec],
    out_path: impl AsRef<Path>,
    opts: &BatchOptions,
) -> Result<BatchSummary, ServiceError> {
    let out_path = out_path.as_ref();
    let spans = batch_span_collector(opts.trace_path.as_deref())?;
    engine.set_span_collector(spans.clone());
    let already_done = if opts.resume {
        // Recover before reading *or* appending: a torn trailing line from a killed
        // run is truncated away here, so it can neither shadow a job id nor have
        // this run's first result glued onto it.
        journal::recover(out_path)?;
        completed_ids(out_path)
    } else {
        HashSet::new()
    };
    let pending: Vec<&JobSpec> = jobs
        .iter()
        .filter(|j| !already_done.contains(&j.id))
        .collect();
    let skipped = jobs.len() - pending.len();

    let journal = Journal::open(out_path, opts.fsync)?;
    // Appends ride the same retry policy as job execution: an injected (or real)
    // write error re-attempts with deterministic backoff instead of silently
    // dropping a computed result.  Returns whether the line finally landed.
    let append_with_retry = |key: &str, line: &str| -> bool {
        let mut attempt = 0;
        loop {
            match journal.append(line) {
                Ok(()) => return true,
                Err(e) if attempt < opts.retry.max_retries => {
                    engine.record_retry();
                    eprintln!("batch: append for {key} failed ({e}); retrying");
                    std::thread::sleep(opts.retry.delay(key, attempt));
                    attempt += 1;
                }
                Err(e) => {
                    eprintln!("batch: dropping result line for {key}: {e}");
                    return false;
                }
            }
        }
    };

    let started = Instant::now();
    let failures: usize = pending
        .par_iter()
        .map_init(
            // Workers hold the guard: job-internal loops stay serial (see module docs).
            enter_outer_parallelism,
            |_guard, spec| {
                let job_started = Instant::now();
                // Per-job deadline from the spec, enforced cooperatively inside the
                // optimizer drivers.  The deadline also bounds retries: a transient
                // failure is never re-attempted into a dead deadline.
                let mut control = RunControl::new();
                if let Some(ms) = spec.timeout_ms {
                    control = control.deadline_in(Duration::from_millis(ms));
                }
                // Panic-isolated execution, as in the serve-mode worker pool: a
                // panicking job becomes a structured "failed" line (after the
                // policy's retries) instead of unwinding into rayon and aborting
                // the whole batch.
                let (outcome, status) = match engine.run_job_with_retry(spec, &control, &opts.retry)
                {
                    Ok(result) => {
                        let status = result.status.clone();
                        match serde_json::to_string(&result) {
                            Ok(line) if append_with_retry(&spec.id, &line) => (0usize, status),
                            // A result that could not be recorded is a failure for
                            // resume purposes: the job must run again.
                            _ => (1usize, status),
                        }
                    }
                    Err(err) => {
                        let line = FailedLine {
                            id: spec.id.clone(),
                            status: "failed".into(),
                            error: err.to_string(),
                        };
                        if let Ok(line) = serde_json::to_string(&line) {
                            let _ = append_with_retry(&spec.id, &line);
                        }
                        (1usize, "failed".to_string())
                    }
                };
                // Close the job's root span (its id is the trace id, so the
                // engine's per-stage children already point at it).  A spec
                // whose instance cannot be realised has no trace id — its
                // structured failure line is the record.
                if let Ok(trace) = spec.trace_id() {
                    let dur_ms = job_started.elapsed().as_secs_f64() * 1e3;
                    spans.record(Span {
                        trace,
                        id: trace.root_span(),
                        parent: None,
                        name: "job".to_string(),
                        start_ms: (spans.now_ms() - dur_ms).max(0.0),
                        duration_ms: dur_ms,
                        attrs: vec![
                            ("job".to_string(), spec.id.clone()),
                            ("status".to_string(), status),
                        ],
                    });
                }
                // Process-level chaos hook: an installed kill-after-k-jobs fault
                // aborts this batch process here, after the k-th journalled job —
                // exactly the crash window shard supervision must survive.
                crate::fault::maybe_kill_after_job();
                outcome
            },
        )
        .sum();

    let elapsed = started.elapsed().as_secs_f64();
    let executed = pending.len();
    // When a sharded parent spawned this process it passed its own trace
    // identity in the environment; close a shard-level span under it, so the
    // parent's merged journal shows this child's whole run as one segment.
    if let Some((trace, parent)) = std::env::var(TRACE_PARENT_ENV)
        .ok()
        .as_deref()
        .and_then(parse_trace_parent)
    {
        spans.record_closed(
            trace,
            Some(parent),
            "batch_shard",
            elapsed * 1e3,
            vec![
                ("executed".to_string(), executed.to_string()),
                ("failed".to_string(), failures.to_string()),
            ],
        );
    }
    Ok(BatchSummary {
        total: jobs.len(),
        executed,
        skipped,
        failed: failures,
        elapsed_s: elapsed,
        jobs_per_sec: if elapsed > 0.0 {
            executed as f64 / elapsed
        } else {
            0.0
        },
    })
}

/// Bounded crash-loop restarts per shard child before giving up on it.
const MAX_SHARD_RESTARTS: usize = 5;

/// One shard child process and everything needed to restart it.
struct ShardChild {
    shard: usize,
    job_path: std::path::PathBuf,
    out_path: std::path::PathBuf,
    child: std::process::Child,
    restarts: usize,
    /// The `"<trace>:<span>"` value handed to the child via the environment.
    trace_parent: String,
    /// The child's own `--trace-out` journal, when the parent has one.
    trace_out: Option<std::path::PathBuf>,
    /// This shard's span id under the batch root (stable across restarts).
    span: SpanId,
    started: Instant,
}

/// Spawns one shard's `qaoa-service batch` child.  Children inherit the
/// environment, so an installed `JULIQAOA_FAULT_PLAN` applies to them — which is
/// exactly how the chaos suite kills a shard mid-batch.
fn spawn_shard(
    exe: &Path,
    job_path: &Path,
    out_path: &Path,
    opts: &BatchOptions,
    cache: usize,
    trace_parent: Option<&str>,
    trace_out: Option<&Path>,
) -> Result<std::process::Child, ServiceError> {
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("batch")
        .arg(job_path)
        .arg("--out")
        .arg(out_path)
        .arg("--cache")
        .arg(cache.to_string())
        .arg("--retries")
        .arg(opts.retry.max_retries.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if opts.fsync == FsyncPolicy::EveryLine {
        cmd.arg("--fsync").arg("every-line");
    }
    // Cross-process trace propagation: the child parents its shard-level span
    // under the batch trace carried by this variable.
    if let Some(parent) = trace_parent {
        cmd.env(TRACE_PARENT_ENV, parent);
    }
    if let Some(path) = trace_out {
        cmd.arg("--trace-out").arg(path);
    }
    cmd.spawn()
        .map_err(|e| ServiceError::Io(format!("spawning shard child {}: {e}", exe.display())))
}

/// Runs a batch fanned out across `shards` child processes of `exe` (the
/// `qaoa-service` binary itself), merging their crash-safe journals into
/// `out_path`.
///
/// Jobs are partitioned by their canonical instance fingerprint
/// (`InstanceId % shards`), the same affinity rule the cluster router's hash
/// ring uses, so every job touching one instance lands in one child and the
/// per-process caches keep their hit rates.  Each child appends to its own
/// checksummed journal; a child that *crashes* (exit by signal/abort — a
/// completed run with failed jobs exits with code 1 and is not restarted) is
/// restarted up to [`MAX_SHARD_RESTARTS`] times and resumes from its own
/// journal, re-running only jobs without a `"done"` line.  After all children
/// settle, shard journals are recovered (torn tails truncated), verified line
/// by line, stripped of framing and re-appended to the merged journal — FNV
/// framing is deterministic, so merged lines are byte-identical to what an
/// unsharded run writes for the same specs.
pub fn run_batch_sharded(
    exe: &Path,
    jobs: &[JobSpec],
    out_path: impl AsRef<Path>,
    opts: &BatchOptions,
    shards: usize,
    cache: usize,
) -> Result<BatchSummary, ServiceError> {
    let out_path = out_path.as_ref();
    if shards <= 1 {
        let engine = Engine::new(cache);
        return run_batch_with(&engine, jobs, out_path, opts);
    }
    let started = Instant::now();
    let already_done = if opts.resume {
        journal::recover(out_path)?;
        completed_ids(out_path)
    } else {
        HashSet::new()
    };
    let pending: Vec<&JobSpec> = jobs
        .iter()
        .filter(|j| !already_done.contains(&j.id))
        .collect();
    let skipped = jobs.len() - pending.len();
    let spans = batch_span_collector(opts.trace_path.as_deref())?;
    // The batch-level trace id: a fold of the per-job trace ids — a pure
    // function of the job set, identical at any shard count.  Specs whose
    // instance cannot be realised contribute nothing (their shard records the
    // structured failure instead).
    let batch_trace = TraceId::from_raw(fold_bits(
        pending
            .iter()
            .filter_map(|spec| spec.trace_id().ok())
            .map(|t| t.raw()),
    ));

    // Partition by instance affinity.  A spec whose instance cannot even be
    // realised goes to shard 0, whose child records the structured failure.
    let mut partitions: Vec<Vec<JobSpec>> = vec![Vec::new(); shards];
    for spec in &pending {
        let shard = match spec.problem.build() {
            Ok(built) => (built.instance_id.raw() % shards as u64) as usize,
            Err(_) => 0,
        };
        partitions[shard].push((*spec).clone());
    }

    let scratch = out_path.with_extension("shards");
    std::fs::create_dir_all(&scratch)
        .map_err(|e| ServiceError::Io(format!("creating {}: {e}", scratch.display())))?;
    let mut running: Vec<ShardChild> = Vec::new();
    let mut shard_outs: Vec<std::path::PathBuf> = Vec::new();
    for (k, part) in partitions.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let job_path = scratch.join(format!("shard-{k}.json"));
        let shard_out = scratch.join(format!("shard-{k}.jsonl"));
        if !opts.resume {
            // A fresh (non-resuming) run must not inherit a previous sharded
            // run's leftovers.
            let _ = std::fs::remove_file(&shard_out);
        }
        let file = JobFile { jobs: part.clone() };
        let text = serde_json::to_string_pretty(&file)
            .map_err(|e| ServiceError::Io(format!("encoding shard {k} jobs: {e}")))?;
        std::fs::write(&job_path, text)
            .map_err(|e| ServiceError::Io(format!("writing {}: {e}", job_path.display())))?;
        // The shard's span id is allocated up front and carried to the child in
        // the environment; the child closes its own "batch_shard" span under it.
        let shard_span = spans.next_span_id();
        let trace_parent = format_trace_parent(batch_trace, shard_span);
        let trace_out = opts.trace_path.as_ref().map(|p| {
            let mut os = p.as_os_str().to_os_string();
            os.push(format!(".shard-{k}"));
            std::path::PathBuf::from(os)
        });
        let child = spawn_shard(
            exe,
            &job_path,
            &shard_out,
            opts,
            cache,
            Some(&trace_parent),
            trace_out.as_deref(),
        )?;
        shard_outs.push(shard_out.clone());
        running.push(ShardChild {
            shard: k,
            job_path,
            out_path: shard_out,
            child,
            restarts: 0,
            trace_parent,
            trace_out,
            span: shard_span,
            started: Instant::now(),
        });
    }

    // Supervise: restart crashed children (they resume from their journal),
    // accept clean exits and completed-with-failures exits (code 1) as settled.
    while !running.is_empty() {
        let mut still_running = Vec::with_capacity(running.len());
        for mut entry in running {
            match entry.child.try_wait() {
                Ok(Some(status)) => {
                    let crashed = !matches!(status.code(), Some(0) | Some(1));
                    if crashed && entry.restarts < MAX_SHARD_RESTARTS {
                        eprintln!(
                            "batch: shard {} crashed ({status}); restarting (attempt {})",
                            entry.shard,
                            entry.restarts + 1
                        );
                        entry.child = spawn_shard(
                            exe,
                            &entry.job_path,
                            &entry.out_path,
                            opts,
                            cache,
                            Some(&entry.trace_parent),
                            entry.trace_out.as_deref(),
                        )?;
                        entry.restarts += 1;
                        still_running.push(entry);
                    } else {
                        if crashed {
                            eprintln!(
                                "batch: shard {} crashed {MAX_SHARD_RESTARTS} times; giving up on it",
                                entry.shard
                            );
                        }
                        // The shard settled (cleanly or by giving up): close its
                        // pre-allocated span under the batch root.  The id was
                        // handed to the child via the environment, so the child's
                        // "batch_shard" span parents here across restarts.
                        let shard_ms = entry.started.elapsed().as_secs_f64() * 1e3;
                        spans.record(Span {
                            trace: batch_trace,
                            id: entry.span,
                            parent: Some(batch_trace.root_span()),
                            name: "shard".to_string(),
                            start_ms: (spans.now_ms() - shard_ms).max(0.0),
                            duration_ms: shard_ms,
                            attrs: vec![
                                ("shard".to_string(), entry.shard.to_string()),
                                ("restarts".to_string(), entry.restarts.to_string()),
                                ("crashed".to_string(), crashed.to_string()),
                            ],
                        });
                    }
                }
                Ok(None) => still_running.push(entry),
                Err(e) => {
                    return Err(ServiceError::Io(format!(
                        "waiting on shard {}: {e}",
                        entry.shard
                    )))
                }
            }
        }
        running = still_running;
        if !running.is_empty() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Merge: recover each shard journal, keep the *last* line per job id (a
    // restarted shard re-runs non-done jobs, so later lines supersede earlier
    // ones), and re-append the stripped bodies to the merged journal.
    let mut order: Vec<String> = Vec::new();
    let mut latest: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    for shard_out in &shard_outs {
        journal::recover(shard_out)?;
        let text = std::fs::read_to_string(shard_out)
            .map_err(|e| ServiceError::Io(format!("reading {}: {e}", shard_out.display())))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Some(body) = journal::strip_frame(line.trim_end_matches('\r')) else {
                continue; // interior-corrupt shard line: the job has no trustworthy result
            };
            let Ok(v) = serde_json::from_str::<Value>(&body) else {
                continue;
            };
            let Some(id) = v.get_field("id").and_then(Value::as_str) else {
                continue;
            };
            if !latest.contains_key(id) {
                order.push(id.to_string());
            }
            latest.insert(id.to_string(), body);
        }
    }
    let journal = Journal::open(out_path, opts.fsync)?;
    let mut failed = 0usize;
    for id in &order {
        let body = &latest[id];
        if serde_json::from_str::<Value>(body)
            .ok()
            .and_then(|v| {
                v.get_field("status")
                    .and_then(Value::as_str)
                    .map(String::from)
            })
            .as_deref()
            == Some("failed")
        {
            failed += 1;
        }
        journal.append(body)?;
    }
    // Jobs that never produced a line (shard gave up after repeated crashes)
    // count as failures: the caller must know the batch is incomplete.
    failed += pending.len().saturating_sub(order.len());
    let _ = std::fs::remove_dir_all(&scratch);

    let elapsed = started.elapsed().as_secs_f64();
    let executed = order.len();
    spans.record(Span {
        trace: batch_trace,
        id: batch_trace.root_span(),
        parent: None,
        name: "batch".to_string(),
        start_ms: (spans.now_ms() - elapsed * 1e3).max(0.0),
        duration_ms: elapsed * 1e3,
        attrs: vec![
            ("jobs".to_string(), jobs.len().to_string()),
            ("shards".to_string(), shards.to_string()),
            ("executed".to_string(), executed.to_string()),
            ("failed".to_string(), failed.to_string()),
        ],
    });
    Ok(BatchSummary {
        total: jobs.len(),
        executed,
        skipped,
        failed,
        elapsed_s: elapsed,
        jobs_per_sec: if elapsed > 0.0 {
            executed as f64 / elapsed
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobResult, MixerSpec, OptimizerSpec, ProblemSpec};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "juliqaoa_service_{tag}_{}_{id}",
            std::process::id()
        ))
    }

    fn tiny_jobs(count: usize) -> Vec<JobSpec> {
        (0..count)
            .map(|i| JobSpec {
                id: format!("job-{i}"),
                problem: ProblemSpec::MaxCutGnp {
                    n: 6,
                    instance: (i % 2) as u64,
                },
                mixer: MixerSpec::TransverseField,
                p: 1,
                optimizer: OptimizerSpec::GridSearch { resolution: 6 },
                seed: i as u64,
                sampling: None,
                timeout_ms: None,
            })
            .collect()
    }

    fn read_results(path: &Path) -> Vec<JobResult> {
        std::fs::read_to_string(path)
            .unwrap_or_default()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str::<JobResult>(l).ok())
            .collect()
    }

    #[test]
    fn batch_executes_every_job_once() {
        let out = temp_path("batch");
        let jobs = tiny_jobs(6);
        let engine = Engine::new(8);
        let summary = run_batch(&engine, &jobs, &out, true).unwrap();
        assert_eq!(summary.total, 6);
        assert_eq!(summary.executed, 6);
        assert_eq!(summary.failed, 0);
        let results = read_results(&out);
        assert_eq!(results.len(), 6);
        let mut ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        ids.sort_unstable();
        assert_eq!(ids, ["job-0", "job-1", "job-2", "job-3", "job-4", "job-5"]);
        // Two distinct instances across six jobs: the cache must have seen 4 hits.
        assert_eq!(engine.stats().cache_misses, 2);
        assert_eq!(engine.stats().cache_hits, 4);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn batch_trace_out_mirrors_per_job_root_spans() {
        let out = temp_path("trace_batch");
        let trace = temp_path("trace_batch_spans");
        let jobs = tiny_jobs(3);
        let engine = Engine::new(8);
        let opts = BatchOptions {
            resume: true,
            trace_path: Some(trace.clone()),
            ..Default::default()
        };
        let summary = run_batch_with(&engine, &jobs, &out, &opts).unwrap();
        assert_eq!(summary.executed, 3);
        let journal = std::fs::read_to_string(&trace).expect("trace journal written");
        // Every job's deterministic trace id shows up on a root "job" span
        // line, with the engine's stage spans alongside.
        for spec in &jobs {
            let hex = spec.trace_id().unwrap().to_hex();
            assert!(
                journal
                    .lines()
                    .any(|l| l.starts_with("{\"span\":\"job\"") && l.contains(&hex)),
                "no root span for {} in:\n{journal}",
                spec.id
            );
        }
        assert!(journal.contains("{\"span\":\"prep\""), "{journal}");
        assert!(journal.contains("{\"span\":\"optimize\""), "{journal}");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn resume_skips_done_jobs_and_finishes_the_rest() {
        let out = temp_path("resume");
        let jobs = tiny_jobs(5);
        // First run: only the first two jobs (simulating an interrupted batch).
        let engine = Engine::new(8);
        run_batch(&engine, &jobs[..2], &out, true).unwrap();
        assert_eq!(read_results(&out).len(), 2);
        // Second run over the full file resumes: 2 skipped, 3 executed.
        let engine2 = Engine::new(8);
        let summary = run_batch(&engine2, &jobs, &out, true).unwrap();
        assert_eq!(summary.skipped, 2);
        assert_eq!(summary.executed, 3);
        assert_eq!(engine2.stats().jobs_executed, 3);
        let results = read_results(&out);
        assert_eq!(results.len(), 5);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn a_half_written_trailing_line_does_not_block_resume() {
        let out = temp_path("torn");
        let jobs = tiny_jobs(2);
        let engine = Engine::new(8);
        run_batch(&engine, &jobs[..1], &out, true).unwrap();
        // Simulate a kill mid-write: append a torn, unparsable line.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&out).unwrap();
            write!(f, "{{\"id\": \"job-1\", \"status\": \"do").unwrap();
        }
        let summary = run_batch(&Engine::new(8), &jobs, &out, true).unwrap();
        assert_eq!(summary.skipped, 1, "only the complete line counts");
        assert_eq!(summary.executed, 1);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn resume_truncates_a_torn_tail_so_the_next_append_is_not_glued_onto_it() {
        // Regression test for the real torn-line bug: before journal recovery, a
        // resumed run opened the file in append mode and wrote its first result
        // straight after the torn fragment — corrupting BOTH lines, so the file
        // ended with one unparsable glued line and the resumed job's result was
        // unreadable forever after.
        let out = temp_path("torn_glue");
        let jobs = tiny_jobs(2);
        run_batch(&Engine::new(8), &jobs[..1], &out, true).unwrap();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&out).unwrap();
            write!(f, "{{\"id\": \"job-1\", \"status\": \"do").unwrap();
        }
        let summary = run_batch(&Engine::new(8), &jobs, &out, true).unwrap();
        assert_eq!(summary.skipped, 1);
        assert_eq!(summary.executed, 1);
        // The recovered file holds exactly two complete, verifiable result lines —
        // the torn fragment is gone rather than fused with job-1's line.
        let text = std::fs::read_to_string(&out).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        assert_eq!(lines.len(), 2, "torn fragment must not survive: {text:?}");
        for line in &lines {
            assert_ne!(journal::verify_line(line), LineCheck::Corrupt, "{line}");
        }
        let results = read_results(&out);
        assert_eq!(results.len(), 2, "both results must parse after recovery");
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn batch_jobs_with_a_timeout_report_timed_out_and_rerun_on_resume() {
        let out = temp_path("deadline");
        let mut jobs = tiny_jobs(2);
        // An effectively-unfinishable grid (60⁴ ≈ 13M points) with a 50 ms budget:
        // long enough to guarantee partial progress, far too short to finish, so
        // the job deterministically reports "timed_out" with its best-so-far.
        jobs[1].p = 2;
        jobs[1].optimizer = OptimizerSpec::GridSearch { resolution: 60 };
        jobs[1].timeout_ms = Some(50);
        let engine = Engine::new(8);
        let summary = run_batch(&engine, &jobs, &out, true).unwrap();
        assert_eq!(summary.executed, 2);
        assert_eq!(engine.stats().jobs_timed_out, 1);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("timed_out"), "{text}");
        // A timed-out line is not "done": resume runs the job again.
        let resumed = run_batch(&Engine::new(8), &jobs, &out, true).unwrap();
        assert_eq!(resumed.skipped, 1);
        assert_eq!(resumed.executed, 1);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn batch_result_lines_carry_verifiable_journal_checksums() {
        let out = temp_path("checksums");
        run_batch(&Engine::new(8), &tiny_jobs(3), &out, true).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let mut checked = 0;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            assert_eq!(journal::verify_line(line), LineCheck::Valid, "{line}");
            checked += 1;
        }
        assert_eq!(checked, 3);
        // And the checksum field is invisible to the result reader.
        assert_eq!(read_results(&out).len(), 3);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn failed_jobs_are_recorded_and_retried_on_resume() {
        let out = temp_path("failed");
        let mut jobs = tiny_jobs(2);
        jobs[1].mixer = MixerSpec::Clique; // invalid for unconstrained MaxCut
        let summary = run_batch(&Engine::new(8), &jobs, &out, true).unwrap();
        assert_eq!(summary.failed, 1);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("\"failed\""));
        // Resume: the failed job is not treated as done.
        let summary2 = run_batch(&Engine::new(8), &jobs, &out, true).unwrap();
        assert_eq!(summary2.skipped, 1);
        assert_eq!(summary2.executed, 1);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn a_panicking_job_fails_structured_and_the_batch_continues() {
        // The engine's chaos hook panics the job whose id matches; the id is unique
        // to this test, so concurrently running tests are unaffected.
        crate::engine::set_test_panic_job_id(Some("batch-boom"));
        let out = temp_path("panic");
        let mut jobs = tiny_jobs(3);
        jobs[1].id = "batch-boom".into();
        let engine = Engine::new(8);
        let summary = run_batch(&engine, &jobs, &out, true).unwrap();
        crate::engine::set_test_panic_job_id(None);
        assert_eq!(summary.executed, 3);
        assert_eq!(summary.failed, 1, "the panic becomes a structured failure");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("panicked mid-run"), "{text}");
        assert_eq!(read_results(&out).len(), 2, "the other jobs still finish");
        let stats = engine.stats();
        assert_eq!(stats.jobs_panicked, 1);
        assert_eq!(stats.jobs_failed, 1);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn duplicate_ids_in_a_job_file_are_rejected() {
        let path = temp_path("dup.json");
        let mut jobs = tiny_jobs(2);
        jobs[1].id = jobs[0].id.clone();
        let file = JobFile { jobs };
        std::fs::write(&path, serde_json::to_string(&file).unwrap()).unwrap();
        let err = load_job_file(&path).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn job_files_load_in_both_shapes() {
        let path = temp_path("shapes.json");
        let jobs = tiny_jobs(3);
        // Object form.
        std::fs::write(
            &path,
            serde_json::to_string(&JobFile { jobs: jobs.clone() }).unwrap(),
        )
        .unwrap();
        assert_eq!(load_job_file(&path).unwrap(), jobs);
        // Bare-array form.
        std::fs::write(&path, serde_json::to_string(&jobs).unwrap()).unwrap();
        assert_eq!(load_job_file(&path).unwrap(), jobs);
        let _ = std::fs::remove_file(&path);
    }
}
