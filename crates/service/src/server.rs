//! Serve mode: the JSON-over-HTTP job API.
//!
//! Architecture: one accept loop (short-lived connections, bounded request sizes), a
//! bounded FIFO work queue, and a pool of worker threads sharing one [`Engine`] — so
//! concurrent jobs on the same instance share cached pre-computations.  Workers hold
//! the outer-parallelism guard while running a job, keeping per-job inner kernels
//! serial exactly as batch mode does.  Job execution is panic-isolated: a panicking
//! job is recorded as `failed` with a structured error and the worker keeps serving,
//! so the pool never silently shrinks.
//!
//! Endpoints:
//!
//! | Method & path          | Behaviour                                              |
//! |------------------------|--------------------------------------------------------|
//! | `POST /jobs`           | Submit a [`JobSpec`]; `202` + status, `429` queue full,|
//! |                        | `503` + `Retry-After` while the queue head is stale    |
//! | `GET /jobs/:id`        | Job status + progress                                  |
//! | `GET /jobs/:id/result` | The [`JobResult`] (`409` until finished)               |
//! | `POST /jobs/:id/cancel`| Request cooperative cancellation                       |
//! | `GET /metrics`         | Prometheus text exposition (counters + histograms)     |
//! | `GET /stats`           | The same counters as JSON ([`MetricsBody`])            |
//! | `GET /trace`           | Recent lifecycle events from the bounded trace ring    |
//! | `GET /trace/:id`       | The retained spans of one trace, flat + as a tree      |
//! | `GET /version`         | Build identity (crate version, profile, git describe)  |
//! | `GET /healthz`         | Liveness probe (200 whenever the process can answer)   |
//! | `GET /readyz`          | Readiness probe (`503` while draining or before the    |
//! |                        | worker pool is up) — what a router's prober should use |
//! | `POST /shutdown`       | Graceful stop (drains workers); used by CI             |
//!
//! Fault tolerance: per-job deadlines (`timeout_ms`, clamped by
//! [`ServerConfig::max_timeout_ms`]) end jobs cooperatively with a partial
//! `timed_out` result; transient failures are retried per
//! [`ServerConfig::retry`]; queued jobs older than
//! [`ServerConfig::queue_wait_ms`] are shed instead of run; results are written
//! through the checksummed [`crate::journal`]; and [`Server::run_until`] drains
//! in-flight work under [`ServerConfig::drain_ms`] when an external stop flag
//! (e.g. SIGTERM) is raised.

use crate::engine::{Engine, EngineStats, ServiceError};
use crate::http::{
    read_request_limited, write_body, write_error, write_json, write_json_with_headers, Request,
    DEFAULT_MAX_BODY_BYTES,
};
use crate::journal::{FsyncPolicy, Journal};
use crate::retry::RetryPolicy;
use crate::spans::{default_trace_cap, trace_body, version_value, TRACE_HEADER};
use crate::spec::{JobResult, JobSpec, JobTimings};
use juliqaoa_linalg::enter_outer_parallelism;
use juliqaoa_optim::RunControl;
use juliqaoa_telemetry::{
    encode, kernels, Counter, Gauge, PromWriter, Span, SpanCollector, TraceId, TraceRing,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before `POST /jobs` returns 429.
    pub queue_capacity: usize,
    /// Instance-cache capacity of the shared engine.
    pub cache_capacity: usize,
    /// Optional JSONL file finished results are appended to (same checksummed
    /// journal format as batch mode, so serve-mode output can seed a later
    /// `batch --resume`; a torn tail from a previous crash is recovered on bind).
    pub results_path: Option<PathBuf>,
    /// Per-connection socket read timeout in milliseconds (expiry → `408`).
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout in milliseconds.
    pub write_timeout_ms: u64,
    /// Deadline applied to jobs that do not set their own `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Upper bound clamped onto every job deadline (including jobs with no
    /// requested timeout at all).
    pub max_timeout_ms: Option<u64>,
    /// Admission-control deadline: a queued job older than this is shed instead
    /// of run, and new submissions are rejected with `503` + `Retry-After`
    /// while the job at the head of the queue is already stale.
    pub queue_wait_ms: Option<u64>,
    /// Shutdown drain budget: after this long, still-live jobs are
    /// cooperatively cancelled so shutdown stays bounded.
    pub drain_ms: u64,
    /// Upper bound on request bodies; a larger `Content-Length` is rejected
    /// with a structured `413` before any allocation happens.
    pub max_body_bytes: usize,
    /// Retry policy for transiently-failed jobs (default: no retries).
    pub retry: RetryPolicy,
    /// Durability policy for the results journal.
    pub fsync: FsyncPolicy,
    /// Optional JSONL file every lifecycle trace event *and* every completed
    /// span is also appended to (plain lines, flushed per event — a debugging
    /// artifact, not the checksummed results journal).  Span lines carry a
    /// leading `"span"` key; event lines a `"seq"` key.
    pub trace_path: Option<PathBuf>,
    /// Capacity of the lifecycle trace ring *and* the span collector
    /// (`--trace-ring-cap`, falling back to `JULIQAOA_TRACE_CAP`, then 1024).
    pub trace_ring_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue_capacity: 256,
            cache_capacity: crate::engine::DEFAULT_CACHE_CAPACITY,
            results_path: None,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            default_timeout_ms: None,
            max_timeout_ms: None,
            queue_wait_ms: None,
            drain_ms: 10_000,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            retry: RetryPolicy::default(),
            fsync: FsyncPolicy::default(),
            trace_path: None,
            trace_ring_cap: default_trace_cap(),
        }
    }
}

/// One entry in the lifecycle trace ring (`GET /trace` and `--trace-out`).
///
/// `ts_ms` is milliseconds since the server started — a monotonic offset, not
/// wall-clock time, so traces stay comparable across restarts and replays.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (gaps mean the ring dropped events).
    pub seq: u64,
    /// Milliseconds since server start.
    pub ts_ms: f64,
    /// `submit` / `shed` / `reject` / `retry` / `done` / `cancelled` /
    /// `timed_out` / `failed` / `panic` / `drain`.
    pub event: String,
    /// The job id the event concerns (empty for server-wide events).
    pub job: String,
    /// Free-form context, e.g. the error that triggered a retry.
    pub detail: String,
}

/// The `GET /trace` body.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct TraceBody {
    /// Events evicted from the ring since start (oldest-first window follows).
    pub dropped: u64,
    /// The ring's capacity (`--trace-ring-cap` / `JULIQAOA_TRACE_CAP`).
    pub capacity: u64,
    /// The retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Lifecycle of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    TimedOut,
    Shed,
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
            JobState::Shed => "shed",
            JobState::Failed => "failed",
        }
    }
}

/// Everything the service tracks about one submitted job.
struct JobRecord {
    spec: JobSpec,
    /// The job's trace id: adopted from the `X-Juliqaoa-Trace` header when a
    /// router assigned one upstream, derived from the spec otherwise.
    trace: TraceId,
    state: Mutex<JobState>,
    cancel: Arc<AtomicBool>,
    enqueued_at: Instant,
    progress_done: Gauge,
    progress_total: Gauge,
    result: Mutex<Option<JobResult>>,
    error: Mutex<Option<String>>,
}

impl JobRecord {
    fn new(spec: JobSpec, trace: TraceId) -> Arc<Self> {
        Arc::new(JobRecord {
            spec,
            trace,
            state: Mutex::new(JobState::Queued),
            cancel: Arc::new(AtomicBool::new(false)),
            enqueued_at: Instant::now(),
            progress_done: Gauge::new(),
            progress_total: Gauge::new(),
            result: Mutex::new(None),
            error: Mutex::new(None),
        })
    }

    fn state(&self) -> JobState {
        *self.state.lock().expect("job state lock")
    }

    fn set_state(&self, s: JobState) {
        *self.state.lock().expect("job state lock") = s;
    }
}

/// Bounded FIFO queue with blocking pop and shutdown.
struct WorkQueue {
    inner: Mutex<VecDeque<Arc<JobRecord>>>,
    ready: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

impl WorkQueue {
    fn new(capacity: usize) -> Self {
        WorkQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Enqueues unless full; returns whether the job was accepted.
    fn try_push(&self, job: Arc<JobRecord>) -> bool {
        let mut q = self.inner.lock().expect("queue lock");
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(job);
        drop(q);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job; `None` once shut down and drained.
    fn pop(&self) -> Option<Arc<JobRecord>> {
        let mut q = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.ready.wait(q).expect("queue wait");
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").len()
    }

    /// How long the job at the head of the queue has been waiting.
    fn head_wait(&self) -> Option<Duration> {
        let q = self.inner.lock().expect("queue lock");
        q.front().map(|job| job.enqueued_at.elapsed())
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// State shared by the accept loop and the worker pool.
struct ServiceState {
    engine: Engine,
    config: ServerConfig,
    jobs: Mutex<HashMap<String, Arc<JobRecord>>>,
    queue: WorkQueue,
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    shed: Counter,
    auto_id: AtomicU64,
    /// True once the worker pool is up; `/readyz` is 503 until then.
    ready: AtomicBool,
    /// True once shutdown has begun; `/readyz` is 503 and `POST /jobs` is
    /// refused from then on, while `/healthz` keeps answering 200 (alive).
    draining: AtomicBool,
    /// Set by `POST /shutdown`; the accept loop stops at the next poll.
    stop_requested: AtomicBool,
    started: Instant,
    results: Option<Journal>,
    trace: TraceRing<TraceEvent>,
    trace_seq: AtomicU64,
    trace_out: Option<Arc<Mutex<std::io::BufWriter<std::fs::File>>>>,
    /// Completed spans for `GET /trace/:id`; shared with the engine, which
    /// records per-stage child spans, and mirrored to `trace_out`.
    spans: Arc<SpanCollector>,
    /// The last finished job's trace id and stage timings — attached to the
    /// `/metrics` latency histograms as exemplar comment lines.
    last_exemplar: Mutex<Option<LastExemplar>>,
}

/// Snapshot pairing a trace id with the stage latencies it exemplifies.
#[derive(Clone)]
struct LastExemplar {
    trace_hex: String,
    timings: JobTimings,
    journal_write_ms: f64,
}

impl ServiceState {
    /// Records a lifecycle event into the trace ring (and the `--trace-out`
    /// file, when configured).  Observation only: failures to write the trace
    /// file are swallowed so tracing can never fail a job.
    fn trace_event(&self, event: &str, job: &str, detail: impl Into<String>) {
        let entry = TraceEvent {
            // relaxed: sequence allocator; fetch_add is atomic regardless of ordering.
            seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
            ts_ms: self.started.elapsed().as_secs_f64() * 1e3,
            event: event.to_string(),
            job: job.to_string(),
            detail: detail.into(),
        };
        if let Some(out) = &self.trace_out {
            if let Ok(line) = serde_json::to_string(&entry) {
                let mut w = out.lock().expect("trace out lock");
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
        }
        self.trace.push(entry);
    }
}

/// Status body returned by `POST /jobs`, `GET /jobs/:id` and `POST /jobs/:id/cancel`.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct JobStatusBody {
    /// The job id.
    pub id: String,
    /// The job's trace id (16 hex digits) — feed it to `GET /trace/:id`.
    pub trace: String,
    /// `queued` / `running` / `done` / `cancelled` / `timed_out` / `shed` /
    /// `failed`.
    pub status: String,
    /// Completed optimizer work units.
    pub progress_done: u64,
    /// Total optimizer work units (0 until the job starts).
    pub progress_total: u64,
}

/// The `GET /metrics` body.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MetricsBody {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Jobs accepted onto the queue since start.
    pub jobs_submitted: u64,
    /// Submissions rejected because the queue was full.
    pub jobs_rejected: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs in a terminal `done` state.
    pub done: u64,
    /// Jobs in a terminal `cancelled` state.
    pub cancelled: u64,
    /// Jobs in a terminal `timed_out` state (deadline expired mid-run).
    pub timed_out: u64,
    /// Jobs shed by admission control: stale queued jobs dropped by workers
    /// plus submissions rejected with `503` while the queue head was stale.
    pub jobs_shed: u64,
    /// Jobs in a terminal `failed` state.
    pub failed: u64,
    /// Instances currently in the cache.
    pub cached_instances: u64,
    /// Engine counters (instance-cache hits/misses, prefix-cache hits/misses and
    /// rounds saved, executed/failed jobs).
    pub engine: EngineStats,
}

/// A bound, not-yet-running service instance.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the worker pool (no requests are served until
    /// [`Server::run`]).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let results = match &config.results_path {
            Some(path) => {
                // Recover a torn tail left by a previous crash before the first
                // append, so a restarted server never glues a new line onto a
                // half-written one.
                crate::journal::recover(path)
                    .and_then(|_| Journal::open(path, config.fsync))
                    .map(Some)
                    .map_err(|e| std::io::Error::other(e.to_string()))?
            }
            None => None,
        };
        let trace_out = match &config.trace_path {
            Some(path) => Some(Arc::new(Mutex::new(std::io::BufWriter::new(
                std::fs::File::create(path)?,
            )))),
            None => None,
        };
        let spans = Arc::new(SpanCollector::new(
            config.trace_ring_cap.max(1),
            crate::spans::collector_salt(),
        ));
        if let Some(out) = &trace_out {
            // Mirror every span into the same JSONL journal the lifecycle
            // events go to; span lines are distinguishable by their leading
            // "span" key.  Write failures are swallowed — tracing must never
            // fail a job.
            let out = out.clone();
            spans.set_sink(Box::new(move |span: &Span| {
                let mut w = out.lock().expect("trace out lock");
                let _ = writeln!(w, "{}", span.to_json_line());
                let _ = w.flush();
            }));
        }
        let engine = Engine::new(config.cache_capacity);
        engine.set_span_collector(spans.clone());
        let state = Arc::new(ServiceState {
            engine,
            jobs: Mutex::new(HashMap::new()),
            queue: WorkQueue::new(config.queue_capacity),
            submitted: Counter::new(),
            completed: Counter::new(),
            rejected: Counter::new(),
            shed: Counter::new(),
            auto_id: AtomicU64::new(0),
            ready: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            stop_requested: AtomicBool::new(false),
            started: Instant::now(),
            results,
            trace: TraceRing::new(config.trace_ring_cap.max(1)),
            trace_seq: AtomicU64::new(0),
            trace_out,
            spans,
            last_exemplar: Mutex::new(None),
            config,
        });
        let workers = (0..state.config.workers.max(1))
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("qaoa-worker-{i}"))
                    .spawn(move || worker_loop(&state))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        // Readiness flips only after every worker thread is spawned: a prober
        // that sees 200 on `/readyz` can rely on submitted jobs making progress.
        state.ready.store(true, Ordering::SeqCst);
        Ok(Server {
            listener,
            state,
            workers,
        })
    }

    /// The bound address (useful with a `:0` bind).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves requests until `POST /shutdown`, then drains and joins the workers.
    pub fn run(self) -> std::io::Result<()> {
        self.run_until(&AtomicBool::new(false))
    }

    /// [`Server::run`], but also stops when `stop` becomes true — the hook the
    /// binary uses to turn SIGTERM into a graceful drain.  The listener is
    /// polled nonblockingly so an external stop is noticed between connections,
    /// not only after the next client happens to connect.
    pub fn run_until(self, stop: &AtomicBool) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if stop.load(Ordering::SeqCst) || self.state.stop_requested.load(Ordering::SeqCst) {
                break;
            }
            self.accept_one();
        }
        self.drain()
    }

    /// Polls the nonblocking listener once and serves the connection, if any.
    fn accept_one(&self) {
        match self.listener.accept() {
            Ok((mut stream, _)) => {
                // The accepted socket must not inherit nonblocking mode:
                // request reads rely on the configured read timeout, not on
                // a WouldBlock spin.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(
                    self.state.config.read_timeout_ms.max(1),
                )));
                let _ = stream.set_write_timeout(Some(Duration::from_millis(
                    self.state.config.write_timeout_ms.max(1),
                )));
                handle_connection(&self.state, &mut stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {}
        }
    }

    /// Stops accepting work and drains the pool: queued jobs still run (unless
    /// shed or cancelled), and a watchdog cooperatively cancels whatever is
    /// left once [`ServerConfig::drain_ms`] elapses, so shutdown is bounded
    /// even with slow jobs in flight.
    ///
    /// The listener keeps answering *while* the pool drains — `/readyz` says
    /// 503 (drain observed, stop routing here), `/healthz` stays 200 (alive,
    /// don't restart) — so a router's health prober never races the SIGTERM
    /// shutdown window against a connection-refused error.
    fn drain(self) -> std::io::Result<()> {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.trace_event(
            "drain",
            "",
            format!("budget {} ms", self.state.config.drain_ms),
        );
        self.state.queue.begin_shutdown();
        let drained = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let state = self.state.clone();
            let drained = drained.clone();
            let deadline = Instant::now() + Duration::from_millis(state.config.drain_ms);
            std::thread::spawn(move || {
                while !drained.load(Ordering::SeqCst) {
                    if Instant::now() >= deadline {
                        let jobs = state.jobs.lock().expect("jobs lock");
                        for record in jobs.values() {
                            if matches!(record.state(), JobState::Queued | JobState::Running) {
                                record.cancel.store(true, Ordering::SeqCst);
                            }
                        }
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
        };
        while self.workers.iter().any(|w| !w.is_finished()) {
            self.accept_one();
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        drained.store(true, Ordering::SeqCst);
        let _ = watchdog.join();
        Ok(())
    }
}

/// The deadline a job actually runs under: its own `timeout_ms`, falling back
/// to the server default, both clamped by the server maximum.
fn effective_timeout_ms(spec: &JobSpec, config: &ServerConfig) -> Option<u64> {
    match (
        spec.timeout_ms.or(config.default_timeout_ms),
        config.max_timeout_ms,
    ) {
        (Some(t), Some(max)) => Some(t.min(max)),
        (Some(t), None) => Some(t),
        (None, max) => max,
    }
}

fn worker_loop(state: &ServiceState) {
    // Jobs are outer-parallel work; keep their inner kernels serial (same contract as
    // the batch executor and the angle-finding drivers).
    let _guard = enter_outer_parallelism();
    while let Some(record) = state.queue.pop() {
        if record.cancel.load(Ordering::SeqCst) {
            record.set_state(JobState::Cancelled);
            state.trace_event("cancelled", &record.spec.id, "cancelled while queued");
            continue;
        }
        // Admission control: a job that already waited past the queue-wait
        // deadline is stale — its submitter has long since timed out — so shed
        // it instead of burning a worker on it.
        if let Some(limit) = state.config.queue_wait_ms {
            if record.enqueued_at.elapsed() > Duration::from_millis(limit) {
                *record.error.lock().expect("error lock") =
                    Some(format!("shed after waiting more than {limit} ms in queue"));
                record.set_state(JobState::Shed);
                state.shed.inc();
                state.trace_event(
                    "shed",
                    &record.spec.id,
                    format!("waited more than {limit} ms in queue"),
                );
                continue;
            }
        }
        // The queue-wait span ends here: everything between submission and the
        // transition to Running is time the job spent waiting, not working.
        let queue_wait_ms = record.enqueued_at.elapsed().as_secs_f64() * 1e3;
        state
            .engine
            .telemetry()
            .queue_wait_ms
            .observe(queue_wait_ms);
        state.spans.record_closed(
            record.trace,
            Some(record.trace.root_span()),
            "queue_wait",
            queue_wait_ms,
            vec![("job".to_string(), record.spec.id.clone())],
        );
        record.set_state(JobState::Running);
        let mut control = RunControl::with_cancel(record.cancel.clone()).on_progress({
            // The callback outlives this loop iteration, so it owns its own Arc.
            let record = record.clone();
            move |done, total| {
                record.progress_done.set(done);
                record.progress_total.set(total);
            }
        });
        if let Some(ms) = effective_timeout_ms(&record.spec, &state.config) {
            control = control.deadline_in(Duration::from_millis(ms));
        }
        // Panic-isolated execution: without it, one panicking job would kill this
        // thread for the rest of the process — silently shrinking the pool and
        // leaving the job in `Running` forever.  Instead a panic surfaces below as
        // an ordinary failed job (visible in `jobs_failed`/`jobs_panicked`) and
        // the worker lives on.  Transient failures (panics, journal I/O) are
        // retried per the server's policy before giving up.
        let outcome = state.engine.run_job_with_retry_observed(
            &record.spec,
            &control,
            &state.config.retry,
            |attempt, err| {
                state.trace_event(
                    "retry",
                    &record.spec.id,
                    format!("attempt {} failed: {err}", attempt + 1),
                );
            },
        );
        match outcome {
            Ok(mut result) => {
                // The engine cannot see the queue, so the queue-wait slot in
                // the per-job timings is filled in here.
                result.timings.queue_wait_ms = queue_wait_ms;
                // The engine sets "cancelled"/"timed_out" only on an actual
                // stop request; optimizer non-convergence is still a done job.
                let terminal = match result.status.as_str() {
                    "cancelled" => JobState::Cancelled,
                    "timed_out" => JobState::TimedOut,
                    _ => JobState::Done,
                };
                let mut journal_write_ms = 0.0;
                if let Some(journal) = &state.results {
                    if let Ok(line) = serde_json::to_string(&result) {
                        let write_started = Instant::now();
                        if let Err(e) = journal.append(&line) {
                            eprintln!(
                                "[serve] failed to journal result for {:?}: {e}",
                                record.spec.id
                            );
                        }
                        journal_write_ms = write_started.elapsed().as_secs_f64() * 1e3;
                        state
                            .engine
                            .telemetry()
                            .journal_write_ms
                            .observe(journal_write_ms);
                        state.spans.record_closed(
                            record.trace,
                            Some(record.trace.root_span()),
                            "journal_write",
                            journal_write_ms,
                            vec![],
                        );
                    }
                }
                *state.last_exemplar.lock().expect("exemplar lock") = Some(LastExemplar {
                    trace_hex: record.trace.to_hex(),
                    timings: result.timings.clone(),
                    journal_write_ms,
                });
                *record.result.lock().expect("result lock") = Some(result);
                record.set_state(terminal);
                if terminal == JobState::Done {
                    state.completed.inc();
                }
                state.trace_event(terminal.as_str(), &record.spec.id, "");
            }
            Err(err) => {
                // A deadline that expired before the first evaluation is still
                // a timeout to the client, not an internal failure.
                let terminal = if matches!(err, ServiceError::TimedOut(_)) {
                    JobState::TimedOut
                } else {
                    JobState::Failed
                };
                *record.error.lock().expect("error lock") = Some(err.to_string());
                record.set_state(terminal);
                let event = if matches!(err, ServiceError::Panicked(_)) {
                    "panic"
                } else {
                    terminal.as_str()
                };
                state.trace_event(event, &record.spec.id, err.to_string());
            }
        }
        // Close the trace's root span: submission to terminal state, wrapping
        // the queue-wait and engine-stage children.  Its id *is* the trace id,
        // so every child above already points at it.
        let root_ms = record.enqueued_at.elapsed().as_secs_f64() * 1e3;
        state.spans.record(Span {
            trace: record.trace,
            id: record.trace.root_span(),
            parent: None,
            name: "job".to_string(),
            start_ms: (state.spans.now_ms() - root_ms).max(0.0),
            duration_ms: root_ms,
            attrs: vec![
                ("job".to_string(), record.spec.id.clone()),
                ("status".to_string(), record.state().as_str().to_string()),
            ],
        });
        // Chaos hook: with a kill-after-k-jobs fault installed, the k-th
        // finished job is the last thing this process does — the journal line
        // above is already durable, which is exactly the crash point failover
        // tests care about.
        crate::fault::maybe_kill_after_job();
    }
}

fn status_body(id: &str, record: &JobRecord) -> JobStatusBody {
    JobStatusBody {
        id: id.to_string(),
        trace: record.trace.to_hex(),
        status: record.state().as_str().to_string(),
        progress_done: record.progress_done.get(),
        progress_total: record.progress_total.get(),
    }
}

/// Handles one connection end to end.
fn handle_connection(state: &Arc<ServiceState>, stream: &mut TcpStream) {
    // Chaos hook: a "slow backend" delays every response by a fixed amount,
    // which is what exercises a router's hedged reads deterministically.
    crate::fault::delay_response();
    let request = match read_request_limited(stream, state.config.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            write_error(stream, e.status, &e.message);
            return;
        }
    };
    route(state, stream, &request);
}

fn route(state: &Arc<ServiceState>, stream: &mut TcpStream, request: &Request) {
    let path = request.path.trim_end_matches('/');
    // Chaos hook: a blackholed probe endpoint accepts the connection but never
    // answers — the partition-like failure mode (distinct from a dead process,
    // whose connections are refused) that probers must classify as Down.
    if crate::fault::probe_blackholed() && matches!(path, "/healthz" | "/readyz") {
        return;
    }
    match (request.method.as_str(), path) {
        ("POST", "/jobs") => handle_submit(state, stream, request),
        ("GET", "/metrics") => handle_prometheus(state, stream),
        ("GET", "/stats") => handle_stats(state, stream),
        ("GET", "/trace") => handle_trace(state, stream),
        ("GET", "/version") => handle_version(stream),
        ("GET", "/healthz") => write_json(stream, 200, "{\"status\": \"ok\"}"),
        ("GET", "/readyz") => {
            // Readiness is liveness plus "safe to route jobs here": false
            // before the worker pool is up and from the moment draining starts.
            if state.ready.load(Ordering::SeqCst) && !state.draining.load(Ordering::SeqCst) {
                write_json(stream, 200, "{\"status\": \"ready\"}")
            } else if state.draining.load(Ordering::SeqCst) {
                write_error(stream, 503, "draining")
            } else {
                write_error(stream, 503, "worker pool not up yet")
            }
        }
        ("POST", "/shutdown") => {
            state.stop_requested.store(true, Ordering::SeqCst);
            write_json(stream, 200, "{\"status\": \"shutting down\"}");
        }
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                match (
                    method,
                    rest.strip_suffix("/result"),
                    rest.strip_suffix("/cancel"),
                ) {
                    ("GET", Some(id), _) => handle_result(state, stream, id),
                    ("POST", _, Some(id)) => handle_cancel(state, stream, id),
                    ("GET", None, None) => handle_status(state, stream, rest),
                    _ => write_error(stream, 405, "method not allowed"),
                }
            } else if let Some(trace_hex) = path.strip_prefix("/trace/") {
                match method {
                    "GET" => handle_trace_id(state, stream, trace_hex),
                    _ => write_error(stream, 405, "method not allowed"),
                }
            } else {
                write_error(stream, 404, "no such endpoint");
            }
        }
    }
}

fn handle_submit(state: &Arc<ServiceState>, stream: &mut TcpStream, request: &Request) {
    if state.draining.load(Ordering::SeqCst) {
        write_error(stream, 503, "server is draining, not accepting jobs");
        return;
    }
    let body = String::from_utf8_lossy(&request.body);
    let mut spec: JobSpec = match serde_json::from_str(&body) {
        Ok(spec) => spec,
        Err(e) => {
            write_error(stream, 400, &format!("invalid job spec: {e}"));
            return;
        }
    };
    if spec.id.is_empty() {
        // relaxed: id allocator; uniqueness needs atomicity, not ordering.
        spec.id = format!("job-{}", state.auto_id.fetch_add(1, Ordering::Relaxed));
    }
    // Reject oversized/incompatible specs at submission time with the cheap shape
    // checks — realising instances and mixers is worker-thread work, and the accept
    // loop must never block other clients behind an O(2ⁿ) build.  Sampling
    // parameters (shots > 0, 0 < α ≤ 1, …) are validated here too, so a bad sample
    // job dies with a structured 400 instead of reaching a worker.
    if let Err(e) = spec
        .problem
        .shape()
        .and_then(|(_, subspace_k)| spec.mixer.check_compatible(subspace_k))
        .and_then(|()| match &spec.sampling {
            Some(sampling) => sampling.validate(),
            None => Ok(()),
        })
    {
        write_error(stream, 400, &format!("invalid job spec: {e}"));
        return;
    }
    // The trace id: adopted from the router's header when present (the edge
    // assignment is authoritative), derived from the spec otherwise.  The
    // derivation builds the instance — graph generation and a hash, not the
    // O(2ⁿ) objective realisation, so it is accept-loop-safe.
    let trace = match &request.trace {
        Some(raw) => match TraceId::parse(raw) {
            Some(t) => t,
            None => {
                write_error(
                    stream,
                    400,
                    &format!("invalid {TRACE_HEADER} header {raw:?} (want 16 hex digits)"),
                );
                return;
            }
        },
        None => match spec.trace_id() {
            Ok(t) => t,
            Err(e) => {
                write_error(stream, 400, &format!("invalid job spec: {e}"));
                return;
            }
        },
    };
    // Graceful degradation: when the job at the head of the queue has already
    // waited past the queue-wait deadline the server is overloaded — anything
    // accepted now would only be shed later, so reject up front with a
    // `Retry-After` hint instead.
    if let Some(limit_ms) = state.config.queue_wait_ms {
        let stale = state
            .queue
            .head_wait()
            .is_some_and(|w| w > Duration::from_millis(limit_ms));
        if stale {
            state.shed.inc();
            state.trace_event(
                "shed",
                &spec.id,
                format!("rejected at submission: queue head waited more than {limit_ms} ms"),
            );
            let retry_after = (limit_ms / 1000).max(1);
            let body = format!(
                "{{\"error\": \"queue is saturated (head waited > {limit_ms} ms), retry later\"}}"
            );
            write_json_with_headers(
                stream,
                503,
                &[("Retry-After", retry_after.to_string())],
                &body,
            );
            return;
        }
    }
    let record = JobRecord::new(spec.clone(), trace);
    {
        let mut jobs = state.jobs.lock().expect("jobs lock");
        if jobs.contains_key(&spec.id) {
            drop(jobs);
            write_error(stream, 409, &format!("job id {:?} already exists", spec.id));
            return;
        }
        jobs.insert(spec.id.clone(), record.clone());
    }
    if !state.queue.try_push(record.clone()) {
        state.jobs.lock().expect("jobs lock").remove(&spec.id);
        state.rejected.inc();
        state.trace_event("reject", &spec.id, "queue full");
        write_error(stream, 429, "job queue is full, retry later");
        return;
    }
    state.submitted.inc();
    state.trace_event("submit", &spec.id, trace.to_hex());
    match serde_json::to_string(&status_body(&spec.id, &record)) {
        Ok(json) => write_json(stream, 202, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

fn lookup(state: &ServiceState, id: &str) -> Option<Arc<JobRecord>> {
    state.jobs.lock().expect("jobs lock").get(id).cloned()
}

fn handle_status(state: &Arc<ServiceState>, stream: &mut TcpStream, id: &str) {
    match lookup(state, id) {
        Some(record) => match serde_json::to_string(&status_body(id, &record)) {
            Ok(json) => write_json(stream, 200, &json),
            Err(_) => write_error(stream, 500, "serialisation failed"),
        },
        None => write_error(stream, 404, &format!("unknown job {id:?}")),
    }
}

fn handle_result(state: &Arc<ServiceState>, stream: &mut TcpStream, id: &str) {
    let Some(record) = lookup(state, id) else {
        write_error(stream, 404, &format!("unknown job {id:?}"));
        return;
    };
    match record.state() {
        JobState::Done | JobState::Cancelled | JobState::TimedOut => {
            let result = record.result.lock().expect("result lock");
            match result.as_ref().map(serde_json::to_string) {
                // A timed-out job with partial progress still returns its
                // best-so-far result here (status field says `timed_out`).
                Some(Ok(json)) => write_json(stream, 200, &json),
                // Terminal without a result: cancelled while still queued, or
                // the deadline expired before the first evaluation finished.
                _ => {
                    let error = record.error.lock().expect("error lock");
                    let (status, fallback) = if record.state() == JobState::TimedOut {
                        (408, "job timed out before any progress")
                    } else {
                        (409, "job was cancelled before it ran")
                    };
                    write_error(stream, status, error.as_deref().unwrap_or(fallback));
                }
            }
        }
        JobState::Shed => {
            let error = record.error.lock().expect("error lock");
            write_error(
                stream,
                503,
                error
                    .as_deref()
                    .unwrap_or("job was shed by admission control; resubmit"),
            );
        }
        JobState::Failed => {
            let error = record.error.lock().expect("error lock");
            write_error(stream, 500, error.as_deref().unwrap_or("job failed"));
        }
        state => write_error(
            stream,
            409,
            &format!("job is {} — result not available yet", state.as_str()),
        ),
    }
}

fn handle_cancel(state: &Arc<ServiceState>, stream: &mut TcpStream, id: &str) {
    let Some(record) = lookup(state, id) else {
        write_error(stream, 404, &format!("unknown job {id:?}"));
        return;
    };
    record.cancel.store(true, Ordering::SeqCst);
    match serde_json::to_string(&status_body(id, &record)) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

/// Per-state counts of every job the service still tracks:
/// `(running, done, cancelled, timed_out, failed)`.
fn job_state_counts(state: &ServiceState) -> (u64, u64, u64, u64, u64) {
    let mut running = 0u64;
    let mut done = 0u64;
    let mut cancelled = 0u64;
    let mut timed_out = 0u64;
    let mut failed = 0u64;
    let jobs = state.jobs.lock().expect("jobs lock");
    for record in jobs.values() {
        match record.state() {
            JobState::Running => running += 1,
            JobState::Done => done += 1,
            JobState::Cancelled => cancelled += 1,
            JobState::TimedOut => timed_out += 1,
            JobState::Failed => failed += 1,
            JobState::Queued | JobState::Shed => {}
        }
    }
    (running, done, cancelled, timed_out, failed)
}

fn handle_stats(state: &Arc<ServiceState>, stream: &mut TcpStream) {
    let (running, done, cancelled, timed_out, failed) = job_state_counts(state);
    let body = MetricsBody {
        uptime_s: state.started.elapsed().as_secs_f64(),
        jobs_submitted: state.submitted.get(),
        jobs_rejected: state.rejected.get(),
        queue_depth: state.queue.len() as u64,
        running,
        done,
        cancelled,
        timed_out,
        jobs_shed: state.shed.get(),
        failed,
        cached_instances: state.engine.cached_instances() as u64,
        engine: state.engine.stats(),
    };
    match serde_json::to_string_pretty(&body) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

/// Prometheus text exposition (format 0.0.4) of every counter the JSON
/// `GET /stats` body exposes, plus the per-job latency histograms and the
/// process-global kernel profiling counters.
fn handle_prometheus(state: &Arc<ServiceState>, stream: &mut TcpStream) {
    let (running, done, cancelled, timed_out, failed) = job_state_counts(state);
    let engine = state.engine.stats();
    let k = kernels::snapshot();
    let tel = state.engine.telemetry();
    let mut w = PromWriter::new();

    w.gauge_f64(
        "uptime_seconds",
        "Seconds since the server started.",
        state.started.elapsed().as_secs_f64(),
    );
    w.counter(
        "jobs_submitted",
        "Jobs accepted onto the queue since start.",
        state.submitted.get(),
    );
    w.counter(
        "jobs_completed",
        "Jobs that reached the terminal done state.",
        state.completed.get(),
    );
    w.counter(
        "jobs_rejected",
        "Submissions rejected because the queue was full.",
        state.rejected.get(),
    );
    w.counter(
        "jobs_shed",
        "Jobs shed by admission control (stale queued jobs plus saturated-queue rejections).",
        state.shed.get(),
    );
    w.gauge(
        "queue_depth",
        "Jobs currently waiting in the queue.",
        state.queue.len() as u64,
    );
    w.gauge("jobs_running", "Jobs currently executing.", running);
    w.gauge(
        "jobs_done",
        "Tracked jobs in the terminal done state.",
        done,
    );
    w.gauge(
        "jobs_cancelled",
        "Tracked jobs in the terminal cancelled state.",
        cancelled,
    );
    w.gauge(
        "jobs_timed_out",
        "Tracked jobs whose deadline expired mid-run.",
        timed_out,
    );
    w.gauge(
        "jobs_failed",
        "Tracked jobs in the terminal failed state.",
        failed,
    );
    w.gauge(
        "cached_instances",
        "Problem instances currently in the engine cache.",
        state.engine.cached_instances() as u64,
    );
    w.counter(
        "trace_events_dropped",
        "Lifecycle events evicted from the bounded trace ring.",
        state.trace.dropped(),
    );
    w.counter(
        "trace_spans_dropped",
        "Completed spans evicted from the bounded span collector.",
        state.spans.dropped(),
    );

    w.counter(
        "engine_jobs_executed",
        "Jobs the engine ran to a result.",
        engine.jobs_executed,
    );
    w.counter(
        "engine_jobs_failed",
        "Jobs that errored inside the engine.",
        engine.jobs_failed,
    );
    w.counter(
        "engine_jobs_panicked",
        "Jobs that panicked and were converted to structured failures.",
        engine.jobs_panicked,
    );
    w.counter(
        "engine_jobs_timed_out",
        "Jobs whose deadline expired inside the engine.",
        engine.jobs_timed_out,
    );
    w.counter(
        "engine_jobs_retried",
        "Transiently-failed job attempts that were retried.",
        engine.jobs_retried,
    );
    w.counter(
        "engine_cache_hits",
        "Instance-cache hits.",
        engine.cache_hits,
    );
    w.counter(
        "engine_cache_misses",
        "Instance-cache misses.",
        engine.cache_misses,
    );
    w.counter(
        "engine_instance_builds",
        "Problem instances actually realised (misses minus coalesced preps).",
        engine.instance_builds,
    );
    w.counter(
        "engine_prep_coalesced",
        "Concurrent builds of the same instance coalesced into one.",
        engine.prep_coalesced,
    );
    w.counter(
        "engine_prefix_hits",
        "Prefix-checkpoint cache hits.",
        engine.prefix_hits,
    );
    w.counter(
        "engine_prefix_misses",
        "Prefix-checkpoint cache misses (cold starts).",
        engine.prefix_misses,
    );
    w.counter(
        "engine_prefix_rounds_saved",
        "QAOA rounds skipped thanks to prefix checkpoints.",
        engine.prefix_rounds_saved,
    );
    w.counter(
        "engine_sample_jobs",
        "Jobs that ran shot-based sampling.",
        engine.sample_jobs,
    );
    w.counter(
        "engine_shots_drawn",
        "Measurement shots drawn across all sample jobs.",
        engine.shots_drawn,
    );

    w.counter(
        "kernel_phase_table_applies",
        "Phase-separator applications served from a compressed class table.",
        k.phase_table_applies,
    );
    w.counter(
        "kernel_dense_phase_applies",
        "Phase-separator applications that fell back to the dense per-state path.",
        k.dense_phase_applies,
    );
    w.counter(
        "kernel_fused_grover_rounds",
        "QAOA rounds executed by the fused Grover phase-plus-mixer kernel.",
        k.fused_grover_rounds,
    );
    w.counter(
        "kernel_wht_passes",
        "Walsh-Hadamard transform passes over a state vector.",
        k.wht_passes,
    );
    w.counter(
        "kernel_prefix_checkpoint_hits",
        "Evolutions resumed from a prefix checkpoint.",
        k.prefix_checkpoint_hits,
    );
    w.counter(
        "kernel_prefix_cold_starts",
        "Evolutions that started from the initial state with no usable checkpoint.",
        k.prefix_cold_starts,
    );
    w.counter(
        "kernel_prefix_rounds_saved",
        "QAOA rounds skipped by resuming from prefix checkpoints.",
        k.prefix_rounds_saved,
    );
    w.counter(
        "kernel_shots_drawn",
        "Measurement shots drawn by the alias sampler.",
        k.shots_drawn,
    );
    w.counter(
        "kernel_objective_evals",
        "Objective-function evaluations across all optimizers.",
        k.objective_evals,
    );

    // Each latency histogram carries the last finished job's trace id as an
    // exemplar comment line — a ready-made `GET /trace/:id` target next to the
    // latency it explains.  Comment lines are invisible to 0.0.4 parsers.
    let exemplar = state.last_exemplar.lock().expect("exemplar lock").clone();
    w.histogram(
        "job_queue_wait_ms",
        "Milliseconds jobs spent queued before a worker picked them up.",
        &tel.queue_wait_ms.snapshot(),
    );
    if let Some(ex) = &exemplar {
        w.exemplar("job_queue_wait_ms", &ex.trace_hex, ex.timings.queue_wait_ms);
    }
    w.histogram(
        "job_prep_ms",
        "Milliseconds spent realising the problem instance (cache misses included).",
        &tel.prep_ms.snapshot(),
    );
    if let Some(ex) = &exemplar {
        w.exemplar("job_prep_ms", &ex.trace_hex, ex.timings.prep_ms);
    }
    w.histogram(
        "job_optimize_ms",
        "Milliseconds spent in the optimizer loop.",
        &tel.optimize_ms.snapshot(),
    );
    if let Some(ex) = &exemplar {
        w.exemplar("job_optimize_ms", &ex.trace_hex, ex.timings.optimize_ms);
    }
    w.histogram(
        "job_sampling_readout_ms",
        "Milliseconds spent drawing shots and estimating sampled objectives.",
        &tel.sampling_readout_ms.snapshot(),
    );
    if let Some(ex) = &exemplar {
        w.exemplar(
            "job_sampling_readout_ms",
            &ex.trace_hex,
            ex.timings.sampling_readout_ms,
        );
    }
    w.histogram(
        "job_journal_write_ms",
        "Milliseconds spent appending results to the journal.",
        &tel.journal_write_ms.snapshot(),
    );
    if let Some(ex) = &exemplar {
        w.exemplar("job_journal_write_ms", &ex.trace_hex, ex.journal_write_ms);
    }
    w.histogram(
        "job_total_ms",
        "End-to-end milliseconds per job inside the engine.",
        &tel.total_ms.snapshot(),
    );
    if let Some(ex) = &exemplar {
        w.exemplar("job_total_ms", &ex.trace_hex, ex.timings.total_ms);
    }

    write_body(stream, 200, encode::CONTENT_TYPE, &[], &w.finish());
}

fn handle_trace(state: &Arc<ServiceState>, stream: &mut TcpStream) {
    let body = TraceBody {
        dropped: state.trace.dropped(),
        capacity: state.trace.capacity() as u64,
        events: state.trace.snapshot(),
    };
    match serde_json::to_string_pretty(&body) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

/// `GET /trace/:id`: the retained spans of one trace, flat and as a tree.
fn handle_trace_id(state: &Arc<ServiceState>, stream: &mut TcpStream, raw: &str) {
    let Some(trace) = TraceId::parse(raw) else {
        write_error(
            stream,
            400,
            &format!("invalid trace id {raw:?} (want 16 hex digits)"),
        );
        return;
    };
    let spans = state.spans.for_trace(trace);
    if spans.is_empty() {
        write_error(stream, 404, &format!("no spans retained for trace {raw:?}"));
        return;
    }
    match serde_json::to_string_pretty(&trace_body(trace, spans)) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

/// `GET /version`: build identity, for correlating multi-process journals.
fn handle_version(stream: &mut TcpStream) {
    match serde_json::to_string_pretty(&version_value()) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}
