//! A small hand-rolled LRU map for cached instance pre-computations.
//!
//! The container has no network access, so no `lru` crate: this is a plain
//! `HashMap` with a monotonically increasing access tick per entry and
//! evict-the-smallest-tick on overflow.  Lookup and insert are `O(1)` expected;
//! eviction is `O(len)`, which is irrelevant at the few-hundred-entry capacities an
//! instance cache uses.
//!
//! Entries can carry a **weight** (for the instance cache: approximate bytes of the
//! prepared objective).  Besides the entry-count capacity, an optional total-weight
//! budget bounds the cache: inserts evict least-recently-used entries until the new
//! total fits.  An entry count alone is the wrong bound for this workload — at the
//! service's `n ≤ 24` size cap a single prepared objective is ~170 MiB, so 64 of
//! them would pin ~11 GiB; the weight budget is what actually protects the box.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::Mutex;

/// A least-recently-used map with a fixed entry capacity and an optional total-weight
/// budget.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    weight_budget: Option<u64>,
    total_weight: u64,
    tick: u64,
    map: HashMap<K, Entry<V>>,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    tick: u64,
    weight: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (no weight budget).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_weight_budget(capacity, None)
    }

    /// Creates a cache bounded by entry count *and* (when `Some`) total weight.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or the budget is `Some(0)`.
    pub fn with_weight_budget(capacity: usize, weight_budget: Option<u64>) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        assert!(
            weight_budget != Some(0),
            "LRU weight budget must be positive"
        );
        LruCache {
            capacity,
            weight_budget,
            total_weight: 0,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up a key, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                Some(&entry.value)
            }
            None => None,
        }
    }

    /// Inserts a weightless value, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 0);
    }

    /// Inserts a value with a weight, evicting least-recently-used entries until both
    /// the entry capacity and the weight budget hold.
    ///
    /// An entry heavier than the whole budget is still cached — alone — so a single
    /// oversized instance degrades to "no sharing" rather than to an insert loop.
    pub fn insert_weighted(&mut self, key: K, value: V, weight: u64) {
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.total_weight -= old.weight;
        }
        while !self.map.is_empty()
            && (self.map.len() >= self.capacity
                || self
                    .weight_budget
                    .is_some_and(|budget| self.total_weight + weight > budget))
        {
            self.evict_lru();
        }
        self.total_weight += weight;
        self.map.insert(
            key,
            Entry {
                value,
                tick: self.tick,
                weight,
            },
        );
    }

    fn evict_lru(&mut self) {
        self.pop_lru();
    }

    /// Updates an existing entry's weight in place *without* touching its recency,
    /// returning whether the key was present.  Used by [`ShardedLru::update_weight`].
    pub(crate) fn set_weight(&mut self, key: &K, weight: u64) -> bool {
        match self.map.get_mut(key) {
            Some(entry) => {
                self.total_weight = self.total_weight - entry.weight + weight;
                entry.weight = weight;
                true
            }
            None => false,
        }
    }

    /// Evicts the least-recently-used entry, returning its weight (`None` when
    /// empty).  Used by [`ShardedLru`] to enforce its global weight budget.
    pub(crate) fn pop_lru(&mut self) -> Option<u64> {
        let oldest = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| k.clone())?;
        let entry = self.map.remove(&oldest)?;
        self.total_weight -= entry.weight;
        Some(entry.weight)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sum of the weights of the cached entries.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Clones every cached value out, in no particular order.
    pub fn values(&self) -> Vec<V>
    where
        V: Clone,
    {
        self.map.values().map(|e| e.value.clone()).collect()
    }
}

/// A sharded, internally locked LRU: `shards` independent [`LruCache`]s, each behind
/// its own mutex, with entries routed by key hash.
///
/// One global mutex around an LRU serialises every worker in a pool even though the
/// critical sections are microseconds — under load the lock, not the cache, becomes
/// the contended resource.  Sharding splits that lock `shards` ways; concurrent
/// lookups on different keys proceed in parallel, and same-key traffic (the hot
/// instance everyone is sweeping) contends only with itself.
///
/// Bounds: the weight budget is **global and exact** — a shared atomic total tracks
/// every shard, and an insert that pushes past the budget evicts least-recently-used
/// entries from its own shard first, then round-robin across the others, until the
/// total fits (never holding more than one shard lock at a time).  As with
/// [`LruCache`], a single entry heavier than the whole budget is cached alone.  The
/// entry capacity is enforced per shard at `capacity / shards`, rounded up with 2×
/// slack — hash skew can land more keys than `capacity / shards` on one shard, and
/// evicting hot entries on a count bound while memory is fine is the worse failure
/// mode; the weight budget is what actually protects the box.  Capacities at or
/// below the shard count collapse to a single shard with the exact capacity — a
/// deliberately tiny cache (`capacity = 1`) must still evict.
#[derive(Debug)]
pub struct ShardedLru<K: Eq + Hash + Clone, V: Clone> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    weight_budget: Option<u64>,
    total_weight: std::sync::atomic::AtomicU64,
    hasher: BuildHasherDefault<DefaultHasher>,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache split over `shards` locks, bounded by `capacity` entries (approximate
    /// once actually sharded, see the type docs) and `weight_budget` total bytes
    /// (exact and global).
    ///
    /// # Panics
    /// Panics if `shards` or `capacity` is zero, or the budget is `Some(0)`.
    pub fn with_shards(shards: usize, capacity: usize, weight_budget: Option<u64>) -> Self {
        assert!(shards > 0, "sharded LRU needs at least one shard");
        assert!(capacity > 0, "sharded LRU capacity must be positive");
        assert!(
            weight_budget != Some(0),
            "sharded LRU weight budget must be positive"
        );
        let shards = if capacity <= shards { 1 } else { shards };
        let per_shard_capacity = if shards == 1 {
            capacity
        } else {
            capacity.div_ceil(shards).saturating_mul(2)
        };
        ShardedLru {
            shards: (0..shards)
                // Shards carry no weight budget of their own: the global budget is
                // enforced here, across shards, after every insert.
                .map(|_| Mutex::new(LruCache::with_weight_budget(per_shard_capacity, None)))
                .collect(),
            weight_budget,
            total_weight: std::sync::atomic::AtomicU64::new(0),
            hasher: BuildHasherDefault::default(),
        }
    }

    fn shard_index(&self, key: &K) -> usize {
        self.hasher.hash_one(key) as usize % self.shards.len()
    }

    /// Looks up a key (marking it most-recently used in its shard), cloning the value
    /// out so the shard lock is held only for the lookup.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shards[self.shard_index(key)]
            .lock()
            .expect("LRU shard poisoned")
            .get(key)
            .cloned()
    }

    /// Applies the shard-local weight change observed across an operation to the
    /// shared total.
    fn apply_weight_delta(&self, before: u64, after: u64) {
        use std::sync::atomic::Ordering;
        if after >= before {
            self.total_weight
                // relaxed: deltas commute; the budget check tolerates transient skew.
                .fetch_add(after - before, Ordering::Relaxed);
        } else {
            self.total_weight
                // relaxed: deltas commute; the budget check tolerates transient skew.
                .fetch_sub(before - after, Ordering::Relaxed);
        }
    }

    /// Evicts least-recently-used entries — the insert's own shard first, then
    /// round-robin — until the global total fits the budget or only one entry
    /// remains (the oversized-entry-cached-alone rule, as in [`LruCache`]).  The
    /// just-inserted entry is MRU in its shard, so it is only protected explicitly
    /// when it is that shard's lone entry.
    fn enforce_budget(&self, start: usize) {
        use std::sync::atomic::Ordering;
        let Some(budget) = self.weight_budget else {
            return;
        };
        let n = self.shards.len();
        // relaxed: advisory budget check; per-shard mutation is under the shard lock,
        // and a stale total at worst delays or over-runs eviction by one entry.
        while self.total_weight.load(Ordering::Relaxed) > budget {
            if self.len() <= 1 {
                // The lone survivor may legitimately exceed the budget on its own.
                return;
            }
            let mut evicted_any = false;
            for offset in 0..n {
                // relaxed: same advisory budget check as the loop condition above.
                if self.total_weight.load(Ordering::Relaxed) <= budget {
                    return;
                }
                let idx = (start + offset) % n;
                let mut shard = self.shards[idx].lock().expect("LRU shard poisoned");
                // Never evict the just-inserted entry: it is MRU in the start
                // shard, so it is only at risk there when it is alone.
                if idx == start && shard.len() <= 1 {
                    continue;
                }
                if let Some(freed) = shard.pop_lru() {
                    // relaxed: commutative delta; see apply_weight_delta.
                    self.total_weight.fetch_sub(freed, Ordering::Relaxed);
                    evicted_any = true;
                }
            }
            if !evicted_any {
                return;
            }
        }
    }

    /// Inserts a value with a weight; evicts (this shard first, then others) until
    /// the global weight budget holds.
    pub fn insert_weighted(&self, key: K, value: V, weight: u64) {
        let idx = self.shard_index(&key);
        {
            let mut shard = self.shards[idx].lock().expect("LRU shard poisoned");
            let before = shard.total_weight();
            shard.insert_weighted(key, value, weight);
            let after = shard.total_weight();
            self.apply_weight_delta(before, after);
        }
        self.enforce_budget(idx);
    }

    /// Re-prices an entry that is still cached, leaving its recency untouched;
    /// returns whether the key was present.  Unlike [`Self::insert_weighted`] this
    /// never (re-)inserts — so a caller holding a reference to an already-evicted
    /// value cannot resurrect it and evict a live entry in its place.
    pub fn update_weight(&self, key: &K, weight: u64) -> bool {
        let idx = self.shard_index(key);
        let updated = {
            let mut shard = self.shards[idx].lock().expect("LRU shard poisoned");
            let before = shard.total_weight();
            let updated = shard.set_weight(key, weight);
            let after = shard.total_weight();
            self.apply_weight_delta(before, after);
            updated
        };
        if updated {
            self.enforce_budget(idx);
        }
        updated
    }

    /// Atomic get-or-insert: returns the cached value if the key is (now) present,
    /// otherwise inserts `value` and returns it.  Racing builders both construct, but
    /// every caller leaves holding the *same* winning value — so shared state (a
    /// simulator slot, a checkpoint pool) is never split across two live copies.
    pub fn get_or_insert_weighted(&self, key: K, value: V, weight: u64) -> V {
        let idx = self.shard_index(&key);
        let out = {
            let mut shard = self.shards[idx].lock().expect("LRU shard poisoned");
            if let Some(found) = shard.get(&key) {
                return found.clone();
            }
            let before = shard.total_weight();
            shard.insert_weighted(key, value.clone(), weight);
            let after = shard.total_weight();
            self.apply_weight_delta(before, after);
            value
        };
        self.enforce_budget(idx);
        out
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("LRU shard poisoned").len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of entry weights across all shards (the globally budgeted total).
    pub fn total_weight(&self) -> u64 {
        // relaxed: monitoring read; may lag concurrent inserts/evictions.
        self.total_weight.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of shards (distinct locks).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Clones every cached value out, shard by shard (no global lock is ever held).
    /// For metrics and tests; `O(len)`.
    pub fn values(&self) -> Vec<V> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().expect("LRU shard poisoned").values())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_round_trip() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" is now the LRU entry.
        assert_eq!(c.get(&"a"), Some(&1));
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"b"), None, "LRU entry must be evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn weight_budget_evicts_before_entry_capacity() {
        let mut c = LruCache::with_weight_budget(100, Some(10));
        c.insert_weighted("a", 1, 4);
        c.insert_weighted("b", 2, 4);
        assert_eq!(c.total_weight(), 8);
        // 8 + 4 > 10: "a" (LRU) must go even though only 2 of 100 slots are used.
        c.insert_weighted("c", 3, 4);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_weight(), 8);
    }

    #[test]
    fn an_entry_heavier_than_the_budget_is_cached_alone() {
        let mut c = LruCache::with_weight_budget(100, Some(10));
        c.insert_weighted("a", 1, 4);
        c.insert_weighted("huge", 2, 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"huge"), Some(&2));
        assert_eq!(c.total_weight(), 50);
        // The next normal insert evicts the over-budget giant.
        c.insert_weighted("b", 3, 4);
        assert_eq!(c.get(&"huge"), None);
        assert_eq!(c.total_weight(), 4);
    }

    #[test]
    fn reinserting_a_key_updates_its_weight() {
        let mut c = LruCache::with_weight_budget(100, Some(10));
        c.insert_weighted("a", 1, 8);
        c.insert_weighted("a", 2, 3);
        assert_eq!(c.total_weight(), 3);
        assert_eq!(c.get(&"a"), Some(&2));
    }

    #[test]
    fn sharded_lru_round_trips_and_counts_across_shards() {
        let c: ShardedLru<u32, u32> = ShardedLru::with_shards(4, 64, None);
        assert!(c.is_empty());
        assert_eq!(c.shards(), 4);
        for k in 0..32u32 {
            c.insert_weighted(k, k * 10, 1);
        }
        assert_eq!(c.len(), 32);
        assert_eq!(c.total_weight(), 32);
        for k in 0..32u32 {
            assert_eq!(c.get(&k), Some(k * 10));
        }
        assert_eq!(c.get(&999), None);
    }

    #[test]
    fn sharded_lru_weight_budget_is_a_global_bound() {
        // The budget is enforced across shards, not partitioned: however the keys
        // hash, the total never exceeds 64, and the cache keeps exactly the 8
        // entries that fit.
        let c: ShardedLru<u32, u32> = ShardedLru::with_shards(4, 1024, Some(64));
        for k in 0..100u32 {
            c.insert_weighted(k, k, 8);
            assert!(c.total_weight() <= 64, "weight {}", c.total_weight());
        }
        assert_eq!(c.len(), 8, "exactly budget/weight entries survive");
        // The most recent insert always survives its own enforcement pass.
        assert_eq!(c.get(&99), Some(99));
    }

    #[test]
    fn sharded_lru_oversized_entry_is_cached_alone_globally() {
        let c: ShardedLru<u32, u32> = ShardedLru::with_shards(4, 1024, Some(10));
        c.insert_weighted(1, 10, 4);
        c.insert_weighted(2, 20, 4);
        assert_eq!(c.total_weight(), 8);
        // Heavier than the whole budget: everything else is evicted (whatever
        // shard it lives in) and the giant is cached alone, as in LruCache.
        c.insert_weighted(3, 30, 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.total_weight(), 50);
        // The next normal insert evicts the over-budget giant.
        c.insert_weighted(4, 40, 4);
        assert_eq!(c.get(&3), None);
        assert_eq!(c.get(&4), Some(40));
        assert_eq!(c.total_weight(), 4);
    }

    #[test]
    fn sharded_lru_reinsert_updates_the_global_weight() {
        let c: ShardedLru<u32, u32> = ShardedLru::with_shards(4, 1024, Some(100));
        c.insert_weighted(7, 1, 60);
        c.insert_weighted(7, 2, 10);
        assert_eq!(c.total_weight(), 10);
        assert_eq!(c.get(&7), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn sharded_lru_get_or_insert_returns_one_winner() {
        let c: ShardedLru<u32, &'static str> = ShardedLru::with_shards(2, 8, None);
        assert_eq!(c.get_or_insert_weighted(7, "first", 1), "first");
        // The racing "second" build loses: every caller sees the parked winner.
        assert_eq!(c.get_or_insert_weighted(7, "second", 1), "first");
        assert_eq!(c.get(&7), Some("first"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn sharded_lru_is_shareable_across_threads() {
        let c: std::sync::Arc<ShardedLru<u64, u64>> =
            std::sync::Arc::new(ShardedLru::with_shards(8, 256, None));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..64u64 {
                        let k = t * 1000 + i;
                        c.insert_weighted(k, k + 1, 1);
                        assert_eq!(c.get(&k), Some(k + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 256);
    }

    #[test]
    #[should_panic]
    fn zero_shards_panics() {
        let _ = ShardedLru::<u32, u32>::with_shards(0, 4, None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    #[should_panic]
    fn zero_weight_budget_panics() {
        let _ = LruCache::<u32, u32>::with_weight_budget(4, Some(0));
    }
}
