//! A small hand-rolled LRU map for cached instance pre-computations.
//!
//! The container has no network access, so no `lru` crate: this is a plain
//! `HashMap` with a monotonically increasing access tick per entry and
//! evict-the-smallest-tick on overflow.  Lookup and insert are `O(1)` expected;
//! eviction is `O(len)`, which is irrelevant at the few-hundred-entry capacities an
//! instance cache uses.
//!
//! Entries can carry a **weight** (for the instance cache: approximate bytes of the
//! prepared objective).  Besides the entry-count capacity, an optional total-weight
//! budget bounds the cache: inserts evict least-recently-used entries until the new
//! total fits.  An entry count alone is the wrong bound for this workload — at the
//! service's `n ≤ 24` size cap a single prepared objective is ~170 MiB, so 64 of
//! them would pin ~11 GiB; the weight budget is what actually protects the box.

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used map with a fixed entry capacity and an optional total-weight
/// budget.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    weight_budget: Option<u64>,
    total_weight: u64,
    tick: u64,
    map: HashMap<K, Entry<V>>,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    tick: u64,
    weight: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (no weight budget).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_weight_budget(capacity, None)
    }

    /// Creates a cache bounded by entry count *and* (when `Some`) total weight.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or the budget is `Some(0)`.
    pub fn with_weight_budget(capacity: usize, weight_budget: Option<u64>) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        assert!(
            weight_budget != Some(0),
            "LRU weight budget must be positive"
        );
        LruCache {
            capacity,
            weight_budget,
            total_weight: 0,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up a key, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.tick = tick;
                Some(&entry.value)
            }
            None => None,
        }
    }

    /// Inserts a weightless value, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 0);
    }

    /// Inserts a value with a weight, evicting least-recently-used entries until both
    /// the entry capacity and the weight budget hold.
    ///
    /// An entry heavier than the whole budget is still cached — alone — so a single
    /// oversized instance degrades to "no sharing" rather than to an insert loop.
    pub fn insert_weighted(&mut self, key: K, value: V, weight: u64) {
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.total_weight -= old.weight;
        }
        while !self.map.is_empty()
            && (self.map.len() >= self.capacity
                || self
                    .weight_budget
                    .is_some_and(|budget| self.total_weight + weight > budget))
        {
            self.evict_lru();
        }
        self.total_weight += weight;
        self.map.insert(
            key,
            Entry {
                value,
                tick: self.tick,
                weight,
            },
        );
    }

    fn evict_lru(&mut self) {
        if let Some(oldest) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| k.clone())
        {
            if let Some(entry) = self.map.remove(&oldest) {
                self.total_weight -= entry.weight;
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sum of the weights of the cached entries.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_insert_round_trip() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" is now the LRU entry.
        assert_eq!(c.get(&"a"), Some(&1));
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"b"), None, "LRU entry must be evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn weight_budget_evicts_before_entry_capacity() {
        let mut c = LruCache::with_weight_budget(100, Some(10));
        c.insert_weighted("a", 1, 4);
        c.insert_weighted("b", 2, 4);
        assert_eq!(c.total_weight(), 8);
        // 8 + 4 > 10: "a" (LRU) must go even though only 2 of 100 slots are used.
        c.insert_weighted("c", 3, 4);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_weight(), 8);
    }

    #[test]
    fn an_entry_heavier_than_the_budget_is_cached_alone() {
        let mut c = LruCache::with_weight_budget(100, Some(10));
        c.insert_weighted("a", 1, 4);
        c.insert_weighted("huge", 2, 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"huge"), Some(&2));
        assert_eq!(c.total_weight(), 50);
        // The next normal insert evicts the over-budget giant.
        c.insert_weighted("b", 3, 4);
        assert_eq!(c.get(&"huge"), None);
        assert_eq!(c.total_weight(), 4);
    }

    #[test]
    fn reinserting_a_key_updates_its_weight() {
        let mut c = LruCache::with_weight_budget(100, Some(10));
        c.insert_weighted("a", 1, 8);
        c.insert_weighted("a", 2, 3);
        assert_eq!(c.total_weight(), 3);
        assert_eq!(c.get(&"a"), Some(&2));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = LruCache::<u32, u32>::new(0);
    }

    #[test]
    #[should_panic]
    fn zero_weight_budget_panics() {
        let _ = LruCache::<u32, u32>::with_weight_budget(4, Some(0));
    }
}
