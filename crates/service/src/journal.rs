//! Crash-safe JSONL result journal: checksummed line framing, configurable fsync,
//! and torn-tail recovery.
//!
//! Batch output is append-only JSONL, and the failure that actually corrupts it is
//! not a lost line — it is a *torn* one: a kill (or power cut) landing mid-`write(2)`
//! leaves a partial line with no newline at the end of the file, and the next
//! resumed run, opening in append mode, glues its first result onto that fragment.
//! One crash then corrupts **two** results: the torn one and the perfectly good one
//! written after it.  The journal closes that hole from both ends:
//!
//! * **Framing** ([`frame_line`]): each line carries a `journal_fnv` field — the
//!   FNV-1a 64 checksum of the line *without* that field — spliced in as the last
//!   JSON member.  Readers that know nothing about journals still parse the line
//!   (the vendored serde derive ignores unknown fields), while [`verify_line`] can
//!   tell a complete line from a torn or bit-rotted one without guessing.
//! * **Recovery** ([`recover`]): before a resumed run appends anything, the tail of
//!   the file is validated and any torn trailing data — bytes after the last
//!   newline, plus a final newline-terminated line whose checksum fails — is
//!   truncated away.  Interior lines are never touched: a bad line in the middle
//!   (hand-edited, bit-rotted) is the *reader's* problem to skip, and truncating
//!   there would destroy every good line after it.
//! * **Durability** ([`FsyncPolicy`]): every line is flushed to the OS as one locked
//!   unit (a kill loses at most the line in flight); `FsyncPolicy::EveryLine`
//!   additionally `fsync`s per line, extending the guarantee to power loss at the
//!   cost of one disk round-trip per result.
//!
//! Lines written by pre-journal versions of this service carry no checksum field;
//! they verify as [`LineCheck::Legacy`] and are trusted as-is, so old result files
//! keep resuming.

use crate::engine::ServiceError;
use crate::fault::{self, WriteFault};
use juliqaoa_problems::Fnv64;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// The textual splice that carries a line's checksum, always the final member of
/// the JSON object: `…,"journal_fnv":"0123456789abcdef"}`.
const CHECKSUM_MARKER: &str = ",\"journal_fnv\":\"";

/// Hex digits in the checksum field's value.
const CHECKSUM_HEX_LEN: usize = 16;

/// How hard an appended line is pushed toward the platter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Flush each line to the OS only (survives process death, not power loss).
    #[default]
    Flush,
    /// `fsync` after every line (survives power loss; one disk round-trip per line).
    EveryLine,
}

/// FNV-1a 64 over a byte string.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Wraps one compact JSON object in the journal framing: the object with a
/// `journal_fnv` checksum field spliced in as its last member.  `body` must be a
/// single-line JSON object (`{…}`); anything else is passed through unframed and
/// will verify as [`LineCheck::Legacy`].
pub fn frame_line(body: &str) -> String {
    if body.len() < 2 || !body.starts_with('{') || !body.ends_with('}') || body.contains('\n') {
        return body.to_string();
    }
    format!(
        "{}{}{:016x}\"}}",
        &body[..body.len() - 1],
        CHECKSUM_MARKER,
        fnv64(body.as_bytes())
    )
}

/// The verdict on one journal line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineCheck {
    /// Framed, and the checksum matches.
    Valid,
    /// No checksum field — written before journal framing existed.  Trusted.
    Legacy,
    /// Framed but the checksum does not match, or the framing itself is mangled:
    /// the line was torn mid-write or altered after the fact.
    Corrupt,
}

/// Verifies one line (without its trailing newline) against its embedded checksum.
pub fn verify_line(line: &str) -> LineCheck {
    // The checksum field is spliced in last, so the marker's *final* occurrence is
    // the framing (earlier ones could only come from string values inside the body).
    let Some(idx) = line.rfind(CHECKSUM_MARKER) else {
        return LineCheck::Legacy;
    };
    let hex_start = idx + CHECKSUM_MARKER.len();
    let rest = &line[hex_start..];
    if rest.len() != CHECKSUM_HEX_LEN + 2 || !rest.ends_with("\"}") {
        return LineCheck::Corrupt;
    }
    let Ok(recorded) = u64::from_str_radix(&rest[..CHECKSUM_HEX_LEN], 16) else {
        return LineCheck::Corrupt;
    };
    // Reconstruct the exact bytes the checksum was computed over.
    let body = format!("{}}}", &line[..idx]);
    if fnv64(body.as_bytes()) == recorded {
        LineCheck::Valid
    } else {
        LineCheck::Corrupt
    }
}

/// Reconstructs the original unframed body of a journal line — the inverse of
/// [`frame_line`].  [`LineCheck::Legacy`] lines come back unchanged; `None`
/// means the line is [`LineCheck::Corrupt`] and has no trustworthy body.  Used
/// when merging shard journals: bodies are re-framed by the destination
/// journal's own `append`, and FNV framing is deterministic, so a merged line
/// is byte-identical to the original.
pub fn strip_frame(line: &str) -> Option<String> {
    match verify_line(line) {
        LineCheck::Valid => {
            // A Valid verdict implies the marker is present; flowing the Option
            // through anyway means a logic drift degrades to "skip line", never
            // a panic in the recovery path.
            let idx = line.rfind(CHECKSUM_MARKER)?;
            Some(format!("{}}}", &line[..idx]))
        }
        LineCheck::Legacy => Some(line.to_string()),
        LineCheck::Corrupt => None,
    }
}

/// What [`recover`] found and did to a journal file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete lines retained (valid, legacy, or interior-corrupt-but-complete).
    pub lines_kept: usize,
    /// Torn trailing bytes truncated away (0 for a clean file).
    pub truncated_bytes: u64,
    /// Interior lines whose checksum failed.  These are *kept* (truncating the
    /// middle of a journal would destroy good lines after them) and left for the
    /// reader to skip, but their presence is worth surfacing.
    pub corrupt_interior: usize,
}

/// Validates the tail of a journal file and truncates torn trailing data, making
/// the file safe to append to.  Missing files are fine (nothing to recover).
///
/// Truncated: bytes after the last newline (a classic torn write), and a final
/// newline-terminated line whose checksum fails (torn inside a short write that
/// still got its newline out).  Never truncated: interior lines, whatever their
/// state, and unframed legacy tails.
pub fn recover(path: impl AsRef<Path>) -> Result<RecoveryReport, ServiceError> {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(RecoveryReport::default()),
        Err(e) => return Err(ServiceError::Io(format!("reading {}: {e}", path.display()))),
    };
    // Byte offset up to which the file is kept.  Walk complete (newline-terminated)
    // lines; the last one is held to its checksum, interior ones are only counted.
    // The walk stays on raw bytes: offsets must index the *file*, and a lossy
    // UTF-8 conversion of the whole buffer would shift them (each invalid byte
    // inflates to a 3-byte replacement char), truncating at the wrong place when
    // a crash sprays non-UTF-8 garbage into the tail.  Only the per-line verify
    // goes through a (line-local, offset-irrelevant) lossy view.
    let mut keep_end = 0usize;
    let mut lines_kept = 0usize;
    let mut corrupt_interior = 0usize;
    let mut offset = 0usize;
    let mut pending: Option<(usize, LineCheck)> = None; // (end offset, verdict) of previous line
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        offset += line.len();
        if line.last() != Some(&b'\n') {
            break; // torn tail; handled below
        }
        if let Some((end, _)) = pending.take() {
            // The previous complete line now has a successor, so it is interior:
            // keep it regardless of verdict.
            keep_end = end;
            lines_kept += 1;
        }
        let text = String::from_utf8_lossy(line);
        let check = verify_line(text.trim_end_matches(['\n', '\r']));
        if check == LineCheck::Corrupt {
            corrupt_interior += 1;
        }
        pending = Some((offset, check));
    }
    if let Some((end, check)) = pending {
        // The final complete line: a failing checksum here means the crash tore the
        // line but its newline made it out — truncate it with the tail.
        if check == LineCheck::Corrupt {
            corrupt_interior -= 1;
        } else {
            keep_end = end;
            lines_kept += 1;
        }
    }

    let truncated = bytes.len() as u64 - keep_end as u64;
    if truncated > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| ServiceError::Io(format!("opening {}: {e}", path.display())))?;
        file.set_len(keep_end as u64)
            .map_err(|e| ServiceError::Io(format!("truncating {}: {e}", path.display())))?;
        file.sync_all()
            .map_err(|e| ServiceError::Io(format!("syncing {}: {e}", path.display())))?;
        eprintln!(
            "journal: truncated {truncated} torn trailing byte(s) from {}",
            path.display()
        );
    }
    Ok(RecoveryReport {
        lines_kept,
        truncated_bytes: truncated,
        corrupt_interior,
    })
}

/// An append-only, checksummed JSONL writer shared across worker threads.
pub struct Journal {
    file: Mutex<File>,
    fsync: FsyncPolicy,
    path: String,
}

impl Journal {
    /// Opens (creating if needed) a journal for appending.  Callers resuming an
    /// interrupted run should [`recover`] the path first; `open` itself never
    /// rewrites existing bytes.
    pub fn open(path: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<Journal, ServiceError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| ServiceError::Io(format!("creating {}: {e}", parent.display())))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ServiceError::Io(format!("opening {}: {e}", path.display())))?;
        Ok(Journal {
            file: Mutex::new(file),
            fsync,
            path: path.display().to_string(),
        })
    }

    /// Appends one framed line atomically with respect to other appenders: frame,
    /// write, flush (and fsync per policy) happen as one locked unit, so lines
    /// never interleave and a kill loses at most the line in flight.
    ///
    /// This is also where the fault plan's write faults land: an injected I/O
    /// error fails the append with the bytes unwritten (the caller's retry policy
    /// takes it from there); a torn-abort writes a deterministic partial line,
    /// forces it to disk, and aborts the process — the kill-mid-batch smoke.
    pub fn append(&self, body: &str) -> Result<(), ServiceError> {
        let line = frame_line(body);
        let mut file = self.file.lock().expect("journal writer poisoned");
        match fault::next_write_fault() {
            WriteFault::None => {}
            WriteFault::IoError => {
                return Err(ServiceError::Io(format!(
                    "injected write fault on {}",
                    self.path
                )));
            }
            WriteFault::TornAbort => {
                // A deterministic stand-in for SIGKILL mid-write(2): half the line,
                // no newline, forced all the way to disk so the torn state is what
                // the resuming process actually sees.
                let torn = &line.as_bytes()[..line.len() / 2];
                let _ = file.write_all(torn);
                let _ = file.flush();
                let _ = file.sync_all();
                eprintln!("fault injection: tearing write and aborting {}", self.path);
                std::process::abort();
            }
        }
        writeln!(file, "{line}")
            .map_err(|e| ServiceError::Io(format!("appending to {}: {e}", self.path)))?;
        file.flush()
            .map_err(|e| ServiceError::Io(format!("flushing {}: {e}", self.path)))?;
        if self.fsync == FsyncPolicy::EveryLine {
            file.sync_all()
                .map_err(|e| ServiceError::Io(format!("syncing {}: {e}", self.path)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "juliqaoa_journal_{tag}_{}_{id}",
            std::process::id()
        ))
    }

    #[test]
    fn framed_lines_verify_and_still_parse_as_the_original_object() {
        let body = r#"{"id":"job-1","status":"done","value":1.5}"#;
        let line = frame_line(body);
        assert_eq!(verify_line(&line), LineCheck::Valid);
        assert!(line.contains("journal_fnv"));
        // Readers ignorant of framing still see every original field.
        let v: serde::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(
            v.get_field("id").and_then(serde::Value::as_str),
            Some("job-1")
        );
        assert_eq!(
            v.get_field("value").and_then(serde::Value::as_f64),
            Some(1.5)
        );
    }

    #[test]
    fn tampered_and_torn_lines_are_corrupt_and_legacy_lines_pass() {
        let line = frame_line(r#"{"id":"job-1","status":"done"}"#);
        // Flip a byte in the body.
        let tampered = line.replace("done", "dome");
        assert_eq!(verify_line(&tampered), LineCheck::Corrupt);
        // Tear the line after the marker.
        assert_eq!(verify_line(&line[..line.len() - 4]), LineCheck::Corrupt);
        // Pre-journal lines carry no marker and are trusted.
        assert_eq!(
            verify_line(r#"{"id":"old","status":"done"}"#),
            LineCheck::Legacy
        );
        // A body that *contains* the marker text as data still verifies: the
        // framing is always the final occurrence.
        let tricky = frame_line(r#"{"note":",\"journal_fnv\":\"00\"}","x":1}"#);
        assert_eq!(verify_line(&tricky), LineCheck::Valid);
    }

    #[test]
    fn strip_frame_inverts_frame_line_exactly() {
        let body = r#"{"id":"job-1","status":"done","value":1.5}"#;
        let line = frame_line(body);
        assert_eq!(strip_frame(&line).as_deref(), Some(body));
        // Re-framing the stripped body reproduces the line byte for byte — the
        // property shard-journal merging depends on.
        assert_eq!(frame_line(&strip_frame(&line).unwrap()), line);
        // Legacy lines pass through unchanged; corrupt lines have no body.
        let legacy = r#"{"id":"old","status":"done"}"#;
        assert_eq!(strip_frame(legacy).as_deref(), Some(legacy));
        assert_eq!(strip_frame(&line.replace("done", "dome")), None);
    }

    #[test]
    fn recover_truncates_torn_tails_but_keeps_interior_lines() {
        let path = temp_path("recover");
        let good1 = frame_line(r#"{"id":"a","status":"done"}"#);
        let good2 = frame_line(r#"{"id":"b","status":"done"}"#);
        // A torn fragment with no newline at the tail.
        std::fs::write(&path, format!("{good1}\n{good2}\n{{\"id\":\"c\",\"sta")).unwrap();
        let report = recover(&path).unwrap();
        assert_eq!(report.lines_kept, 2);
        assert!(report.truncated_bytes > 0);
        assert_eq!(report.corrupt_interior, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            format!("{good1}\n{good2}\n"),
            "clean tail after recovery"
        );
        // Recovery is idempotent.
        let again = recover(&path).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.lines_kept, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_truncates_a_checksum_failing_final_line_only() {
        let path = temp_path("recover_tail");
        let good = frame_line(r#"{"id":"a","status":"done"}"#);
        let torn_mid = frame_line(r#"{"id":"bad","status":"done"}"#).replace("done", "dome");
        // Interior corrupt line (kept, reported) then a good line, then a corrupt
        // final line (truncated with its newline).
        std::fs::write(&path, format!("{torn_mid}\n{good}\n{torn_mid}\n")).unwrap();
        let report = recover(&path).unwrap();
        assert_eq!(report.lines_kept, 2);
        assert_eq!(report.corrupt_interior, 1);
        assert_eq!(report.truncated_bytes as usize, torn_mid.len() + 1);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            format!("{torn_mid}\n{good}\n")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_handles_missing_empty_and_legacy_files() {
        assert_eq!(
            recover(temp_path("missing")).unwrap(),
            RecoveryReport::default()
        );
        let path = temp_path("legacy");
        std::fs::write(&path, "{\"id\":\"old\",\"status\":\"done\"}\n").unwrap();
        let report = recover(&path).unwrap();
        assert_eq!(report.lines_kept, 1);
        assert_eq!(report.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_appends_framed_lines_under_both_fsync_policies() {
        for (tag, policy) in [
            ("flush", FsyncPolicy::Flush),
            ("sync", FsyncPolicy::EveryLine),
        ] {
            let path = temp_path(tag);
            let journal = Journal::open(&path, policy).unwrap();
            journal.append(r#"{"id":"x","status":"done"}"#).unwrap();
            journal.append(r#"{"id":"y","status":"done"}"#).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 2);
            for line in lines {
                assert_eq!(verify_line(line), LineCheck::Valid);
            }
            let _ = std::fs::remove_file(&path);
        }
    }
}
