//! A minimal HTTP/1.1 request/response layer over `std::net`.
//!
//! The container has no HTTP-framework dependency, and the service API needs exactly
//! one shape: small JSON requests and responses on short-lived connections.  This
//! module parses a request line, headers and a `Content-Length`-delimited body, and
//! writes status + JSON responses with `Connection: close`.  Deliberately not a general
//! HTTP implementation: no chunked encoding, no keep-alive, no TLS — requests beyond
//! the size limits are rejected rather than streamed.
//!
//! The same module also carries the *client* half the cluster router needs
//! ([`client_request`]): one request, one `Connection: close` response, bounded by
//! connect/read/write timeouts so a dead backend costs a timeout, not a hang.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default upper bound on a request body (`--max-body-bytes` overrides per server).
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Raw path, query string stripped.
    pub path: String,
    /// The `X-Juliqaoa-Trace` header value, when present — the router's trace
    /// propagation; other headers stay discarded (nothing else rides on them).
    pub trace: Option<String>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// A request-parsing failure with the HTTP status it should produce.
#[derive(Debug)]
pub struct HttpError {
    /// Status code to respond with.
    pub status: u16,
    /// Human-readable message (sent as JSON `error`).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reads one request from the stream at the default body-size limit.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    read_request_limited(stream, DEFAULT_MAX_BODY_BYTES)
}

/// Reads one request from the stream, rejecting bodies larger than
/// `max_body_bytes` with a structured `413` *before* allocating for them — an
/// unbounded `Content-Length` must never translate into an unbounded
/// allocation on a worker.
pub fn read_request_limited(
    stream: &mut TcpStream,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    // Read until the blank line ending the head, then however much body the headers
    // promise.  One byte at a time would be slow; a buffered chunk loop with carryover
    // keeps it simple and still far faster than any job this service runs.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::new(read_error_status(&e), format!("read error: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut trace: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::new(400, "invalid Content-Length"))?;
            } else if name.eq_ignore_ascii_case("x-juliqaoa-trace") {
                trace = Some(value.trim().to_string());
            }
        }
    }
    if content_length > max_body_bytes {
        return Err(HttpError::new(
            413,
            format!(
                "request body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
            ),
        ));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::new(read_error_status(&e), format!("read error: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        trace,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The status a failed socket read maps to: a connection-timeout expiry (surfaced as
/// `WouldBlock` or `TimedOut` depending on platform) is the *client's* slowness and
/// gets a structured `408 Request Timeout`; everything else stays a 400.
fn read_error_status(e: &std::io::Error) -> u16 {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => 408,
        _ => 400,
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a JSON response and flushes; errors are ignored (the client is gone).
pub fn write_json(stream: &mut TcpStream, status: u16, json: &str) {
    write_json_with_headers(stream, status, &[], json);
}

/// [`write_json`] with extra response headers (e.g. `Retry-After` on a 503).
pub fn write_json_with_headers(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    json: &str,
) {
    write_body(stream, status, "application/json", headers, json);
}

/// Writes a response with a caller-chosen `Content-Type` (the Prometheus
/// `/metrics` endpoint serves `text/plain; version=0.0.4`) and flushes; errors
/// are ignored (the client is gone).
pub fn write_body(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    headers: &[(&str, String)],
    body: &str,
) {
    let extra: String = headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    let _ = write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        status,
        reason(status),
        content_type,
        body.len(),
        extra,
        body
    );
    let _ = stream.flush();
}

/// Writes `{"error": ...}` with the given status.
pub fn write_error(stream: &mut TcpStream, status: u16, message: &str) {
    let json = serde_json::to_string(&ErrorBody {
        error: message.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
    write_json(stream, status, &json);
}

#[derive(serde::Serialize, serde::Deserialize)]
struct ErrorBody {
    error: String,
}

/// A response as the router's proxy client sees it: status plus body, headers
/// discarded (nothing in the cluster protocol rides on response headers).
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Sends one HTTP/1.1 request to `addr` and reads the full `Connection: close`
/// response.  Every stage is bounded by `timeout`: connect, each socket read and
/// each write — a dead or blackholed peer costs one timeout, never a hang.  Any
/// I/O failure (refused, reset, expired timeout, malformed status line) comes
/// back as `Err`, which the cluster layer treats as a backend failure.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    client_request_with_headers(addr, method, path, &[], body, timeout)
}

/// [`client_request`] with extra request headers — the router injects
/// `X-Juliqaoa-Trace` into proxied submissions so the backend adopts the
/// router's trace id instead of deriving its own.
pub fn client_request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, String)],
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let timeout = timeout.max(Duration::from_millis(1));
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("{addr:?} resolves to no address")))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let extra: String = headers
        .iter()
        .map(|(name, value)| format!("{name}: {value}\r\n"))
        .collect();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("malformed response from {addr}")))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok(ClientResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            b"POST /jobs?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 12}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"{\"a\": 12}");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = round_trip(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn trace_header_is_captured_case_insensitively() {
        let req = round_trip(
            b"POST /jobs HTTP/1.1\r\nx-juliqaoa-trace: 00f00dcafe123456\r\nContent-Length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(req.trace.as_deref(), Some("00f00dcafe123456"));
        let req = round_trip(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.trace.is_none());
    }

    #[test]
    fn client_extra_headers_reach_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.trace.as_deref(), Some("deadbeef00000001"));
            write_json(&mut stream, 200, "{}");
        });
        let resp = client_request_with_headers(
            &addr.to_string(),
            "POST",
            "/jobs",
            &[("X-Juliqaoa-Trace", "deadbeef00000001".to_string())],
            Some("{}"),
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn truncated_requests_are_400() {
        let err = round_trip(b"GET /metrics HTTP/1.1\r\nContent-").unwrap_err();
        assert_eq!(err.status, 400);
        let err =
            round_trip(b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn oversized_bodies_are_413() {
        let head = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        );
        let err = round_trip(head.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn custom_body_limits_apply_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // The headers promise far more than the limit; no body is ever sent.
            s.write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n")
                .unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request_limited(&mut stream, 1024).unwrap_err();
        writer.join().unwrap();
        assert_eq!(err.status, 413);
        assert!(err.message.contains("4096"), "{}", err.message);
    }

    #[test]
    fn client_request_round_trips_against_a_local_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            write_json(&mut stream, 200, &String::from_utf8_lossy(&req.body));
        });
        let resp = client_request(
            &addr.to_string(),
            "POST",
            "/echo",
            Some("{\"ping\":1}"),
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.body, "{\"ping\":1}");
    }

    #[test]
    fn client_request_errors_on_a_dead_peer() {
        // Bind then drop: the port is (briefly) unbound, so connect is refused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = client_request(
            &addr.to_string(),
            "GET",
            "/healthz",
            None,
            Duration::from_millis(500),
        );
        assert!(err.is_err());
    }
}
