//! Service-side distributed-tracing plumbing over [`juliqaoa_telemetry::span`].
//!
//! The telemetry crate is dependency-free, so its spans only know how to render
//! themselves as JSON lines.  This module supplies everything the service tiers
//! layer on top:
//!
//! * [`span_to_value`] / [`span_from_value`] — spans as shim-serde [`Value`]s,
//!   for the `GET /trace/:id` bodies and the router's cross-process merge;
//! * [`trace_body`] — the `/trace/:id` response: the flat span list plus the
//!   reconstructed span *tree* (children nested under parents, the root being
//!   the span whose id equals the trace id);
//! * the propagation constants: the [`TRACE_HEADER`] the router sends with
//!   proxied submissions and the [`TRACE_PARENT_ENV`] a sharded batch parent
//!   sets for its child processes;
//! * [`version_value`] — the `GET /version` body, so multi-process trace
//!   journals can be correlated to a build;
//! * [`default_trace_cap`] — the `JULIQAOA_TRACE_CAP`-aware default capacity
//!   shared by the serve and route tiers' trace rings and span collectors.

use juliqaoa_telemetry::{Span, SpanId, TraceId};
use serde::Value;
use std::sync::OnceLock;

/// Request header carrying the trace id on router→backend submissions.  The
/// backend adopts the id instead of re-deriving it (they agree by construction;
/// the header makes the edge assignment authoritative and observable).
pub const TRACE_HEADER: &str = "X-Juliqaoa-Trace";

/// Environment variable carrying `"<trace>:<span>"` (16 hex digits each) from a
/// sharded batch parent to its child processes: the child parents its own
/// shard-level span under the parent's, so the batch trace spans processes.
pub const TRACE_PARENT_ENV: &str = "JULIQAOA_TRACE_PARENT";

/// Environment variable overriding the default lifecycle-trace-ring and span
/// collector capacity (the `--trace-ring-cap` flag wins over it).
pub const TRACE_CAP_ENV: &str = "JULIQAOA_TRACE_CAP";

/// The built-in trace-ring capacity when neither the flag nor the environment
/// override it.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// The trace-ring/span-collector capacity: `JULIQAOA_TRACE_CAP` when set to a
/// positive integer, [`DEFAULT_TRACE_CAPACITY`] otherwise.
pub fn default_trace_cap() -> usize {
    std::env::var(TRACE_CAP_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&cap| cap >= 1)
        .unwrap_or(DEFAULT_TRACE_CAPACITY)
}

/// A fresh span-collector salt: FNV-mixed pid, wall-clock nanos and a
/// process-global counter.  The pid alone is not enough — two collectors in one
/// process (an in-process router-plus-backend test) or two hosts that happen to
/// share a pid would mint colliding span ids, and the `/trace/:id` merge
/// deduplicates by id, silently dropping the collision.
pub fn collector_salt() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [
        u64::from(std::process::id()),
        nanos,
        // relaxed: uniqueness counter folded into the id hash; orders against nothing.
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ] {
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses a `"<trace>:<span>"` propagation value (header or env form).
pub fn parse_trace_parent(raw: &str) -> Option<(TraceId, SpanId)> {
    let (trace, span) = raw.trim().split_once(':')?;
    Some((TraceId::parse(trace)?, SpanId::parse(span)?))
}

/// Renders `"<trace>:<span>"` for [`TRACE_PARENT_ENV`].
pub fn format_trace_parent(trace: TraceId, span: SpanId) -> String {
    format!("{}:{}", trace.to_hex(), span.to_hex())
}

/// A span as a shim-serde [`Value`] object — the same shape as
/// [`Span::to_json_line`], so journal lines and `/trace/:id` bodies agree.
pub fn span_to_value(span: &Span) -> Value {
    let mut fields = vec![
        ("span".to_string(), Value::Str(span.name.clone())),
        ("trace".to_string(), Value::Str(span.trace.to_hex())),
        ("id".to_string(), Value::Str(span.id.to_hex())),
    ];
    if let Some(parent) = span.parent {
        fields.push(("parent".to_string(), Value::Str(parent.to_hex())));
    }
    fields.push(("start_ms".to_string(), Value::Num(span.start_ms)));
    fields.push(("duration_ms".to_string(), Value::Num(span.duration_ms)));
    if !span.attrs.is_empty() {
        fields.push((
            "attrs".to_string(),
            Value::Object(
                span.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    Value::Object(fields)
}

/// Parses a span object previously rendered by [`span_to_value`] (or a journal
/// line) — used by the router to merge backend spans into one tree.  Returns
/// `None` for objects of any other shape (e.g. lifecycle trace events).
pub fn span_from_value(v: &Value) -> Option<Span> {
    let name = v.get_field("span")?.as_str()?.to_string();
    let trace = TraceId::parse(v.get_field("trace")?.as_str()?)?;
    let id = SpanId::parse(v.get_field("id")?.as_str()?)?;
    let parent = match v.get_field("parent") {
        Some(p) => Some(SpanId::parse(p.as_str()?)?),
        None => None,
    };
    let start_ms = v.get_field("start_ms")?.as_f64()?;
    let duration_ms = v.get_field("duration_ms")?.as_f64()?;
    let attrs = match v.get_field("attrs").and_then(Value::as_object) {
        Some(fields) => fields
            .iter()
            .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
            .collect(),
        None => Vec::new(),
    };
    Some(Span {
        trace,
        id,
        parent,
        name,
        start_ms,
        duration_ms,
        attrs,
    })
}

/// Builds the `GET /trace/:id` response body: the trace id, the flat span list
/// (deduplicated by span id, insertion order preserved) and the reconstructed
/// tree.  Spans whose parent is absent from the set surface as extra roots
/// rather than disappearing, so a partial collection (ring eviction, an
/// unreachable backend) still renders.
pub fn trace_body(trace: TraceId, spans: Vec<Span>) -> Value {
    let mut seen = std::collections::HashSet::new();
    let spans: Vec<Span> = spans
        .into_iter()
        .filter(|s| seen.insert(s.id.raw()))
        .collect();
    let tree = span_tree(&spans);
    Value::Object(vec![
        ("trace".to_string(), Value::Str(trace.to_hex())),
        (
            "spans".to_string(),
            Value::Array(spans.iter().map(span_to_value).collect()),
        ),
        ("tree".to_string(), tree),
    ])
}

/// Nests spans under their parents: an array of root nodes, each
/// `{name, id, start_ms, duration_ms, attrs?, children: [...]}`, children
/// ordered by start time.  The root of a complete job trace is the span whose
/// id equals the trace id.
fn span_tree(spans: &[Span]) -> Value {
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id.raw()).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.parent {
            // A self-parented or known-parent span nests; anything else roots.
            Some(p) if p.raw() != span.id.raw() && ids.contains(&p.raw()) => {
                // `ids` was built from this same immutable slice, so the parent
                // is always found — but an orphan degrades to a root rather
                // than panicking a serving thread.
                match spans.iter().position(|s| s.id.raw() == p.raw()) {
                    Some(parent_idx) => children[parent_idx].push(i),
                    None => roots.push(i),
                }
            }
            _ => roots.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        spans[*a]
            .start_ms
            .total_cmp(&spans[*b].start_ms)
            .then_with(|| spans[*a].name.cmp(&spans[*b].name))
    };
    for list in &mut children {
        list.sort_by(by_start);
    }
    roots.sort_by(by_start);
    fn render(i: usize, spans: &[Span], children: &[Vec<usize>], depth: usize) -> Value {
        let span = &spans[i];
        let mut fields = vec![
            ("name".to_string(), Value::Str(span.name.clone())),
            ("id".to_string(), Value::Str(span.id.to_hex())),
            ("start_ms".to_string(), Value::Num(span.start_ms)),
            ("duration_ms".to_string(), Value::Num(span.duration_ms)),
        ];
        if !span.attrs.is_empty() {
            fields.push((
                "attrs".to_string(),
                Value::Object(
                    span.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        // Span sets are trees by construction; the depth cap is a guard against
        // pathological merged input, not an expected path.
        let nested = if depth < 64 {
            children[i]
                .iter()
                .map(|&c| render(c, spans, children, depth + 1))
                .collect()
        } else {
            Vec::new()
        };
        fields.push(("children".to_string(), Value::Array(nested)));
        Value::Object(fields)
    }
    Value::Array(
        roots
            .iter()
            .map(|&r| render(r, spans, &children, 0))
            .collect(),
    )
}

/// The `GET /version` body: crate version, build profile, git describe (when
/// the binary runs inside a checkout) and the process id — enough to correlate
/// a multi-process trace journal to a build and a process.
pub fn version_value() -> Value {
    static GIT: OnceLock<Option<String>> = OnceLock::new();
    let git = GIT.get_or_init(|| {
        std::process::Command::new("git")
            .args(["describe", "--tags", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
    });
    Value::Object(vec![
        (
            "version".to_string(),
            Value::Str(env!("CARGO_PKG_VERSION").to_string()),
        ),
        (
            "profile".to_string(),
            Value::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        ),
        (
            "git".to_string(),
            match git {
                Some(describe) => Value::Str(describe.clone()),
                None => Value::Null,
            },
        ),
        (
            "pid".to_string(),
            Value::UInt(u64::from(std::process::id())),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: Option<u64>, name: &str, start: f64) -> Span {
        Span {
            trace: TraceId::from_raw(trace),
            id: SpanId::from_raw(id),
            parent: parent.map(SpanId::from_raw),
            name: name.into(),
            start_ms: start,
            duration_ms: 1.0,
            attrs: vec![("job".into(), "j1".into())],
        }
    }

    #[test]
    fn value_round_trip_preserves_every_field() {
        let s = span(7, 9, Some(7), "prep", 3.5);
        let back = span_from_value(&span_to_value(&s)).expect("round trip");
        assert_eq!(back, s);
        // A journal line parses to the same span too.
        let from_line: Value = serde_json::from_str(&s.to_json_line()).unwrap();
        assert_eq!(span_from_value(&from_line), Some(s));
        // Lifecycle events (no "span" key) are rejected, not mangled.
        let event: Value =
            serde_json::from_str(r#"{"seq":1,"ts_ms":2.0,"event":"submit","job":"x"}"#).unwrap();
        assert_eq!(span_from_value(&event), None);
    }

    #[test]
    fn tree_nests_children_under_the_trace_root() {
        let trace = 0xABu64;
        let spans = vec![
            span(trace, 0x200, Some(trace), "optimize", 5.0),
            span(trace, trace, None, "job", 0.0),
            span(trace, 0x100, Some(trace), "prep", 1.0),
            span(trace, 0x300, Some(0x999), "orphan", 9.0),
        ];
        let body = trace_body(TraceId::from_raw(trace), spans);
        let tree = body.get_field("tree").unwrap().as_array().unwrap();
        // Two roots: the job span and the orphan (whose parent was evicted).
        assert_eq!(tree.len(), 2);
        let root = &tree[0];
        assert_eq!(root.get_field("name").unwrap().as_str(), Some("job"));
        let children = root.get_field("children").unwrap().as_array().unwrap();
        let names: Vec<&str> = children
            .iter()
            .map(|c| c.get_field("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["prep", "optimize"], "ordered by start time");
        assert_eq!(tree[1].get_field("name").unwrap().as_str(), Some("orphan"));
        // The flat list is intact alongside the tree.
        assert_eq!(
            body.get_field("spans").unwrap().as_array().unwrap().len(),
            4
        );
    }

    #[test]
    fn duplicate_span_ids_are_deduplicated_in_the_merge() {
        let spans = vec![
            span(1, 1, None, "job", 0.0),
            span(1, 1, None, "job", 0.0),
            span(1, 2, Some(1), "prep", 1.0),
        ];
        let body = trace_body(TraceId::from_raw(1), spans);
        assert_eq!(
            body.get_field("spans").unwrap().as_array().unwrap().len(),
            2
        );
        assert_eq!(body.get_field("tree").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn propagation_values_round_trip() {
        let t = TraceId::from_raw(0xDEAD_BEEF);
        let s = SpanId::from_raw(0xFACE);
        let rendered = format_trace_parent(t, s);
        assert_eq!(parse_trace_parent(&rendered), Some((t, s)));
        assert_eq!(parse_trace_parent("garbage"), None);
        assert_eq!(parse_trace_parent("00:11"), None, "ids must be 16 digits");
    }

    #[test]
    fn version_body_names_the_build() {
        let v = version_value();
        assert_eq!(
            v.get_field("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        let profile = v.get_field("profile").unwrap().as_str().unwrap();
        assert!(profile == "debug" || profile == "release");
        assert!(v.get_field("pid").unwrap().as_u64().unwrap() > 0);
        assert!(v.get_field("git").is_some(), "git key always present");
    }

    #[test]
    fn default_cap_ignores_garbage_env() {
        // Not asserting the env-var path itself: mutating the environment in a
        // threaded test harness is UB on glibc.  The parse contract is covered
        // by construction; here we pin the default.
        assert_eq!(DEFAULT_TRACE_CAPACITY, 1024);
        assert!(default_trace_cap() >= 1);
    }
}
