//! `qaoa-service`: batched QAOA job execution as a reusable subsystem.
//!
//! The figure binaries in `juliqaoa-bench` are one-shot: build a problem, find angles,
//! print a table.  This crate turns the same fast kernels into a *service* with two
//! front-ends over one shared engine:
//!
//! * **Batch mode** ([`batch`]) — read a JSON job file ([`spec::JobFile`]), execute the
//!   jobs with sharded rayon parallelism, append one JSONL [`spec::JobResult`] line per
//!   job, and resume after interruption by skipping jobs whose `"done"` line already
//!   exists.
//! * **Serve mode** ([`server`]) — a hand-rolled HTTP/1.1 JSON API (`POST /jobs`,
//!   `GET /jobs/:id`, `GET /jobs/:id/result`, `GET /stats`) with a bounded work
//!   queue, a worker pool, per-job progress reporting and cooperative cancellation.
//! * **Route mode** ([`router`]) — a cluster front-end that consistent-hashes jobs by
//!   `InstanceId` onto backend serve processes ([`cluster`]), with health-checked
//!   circuit breakers, deterministic seeded failover and optional hedged reads.
//!
//! Everything is observable first-class: `GET /metrics` serves Prometheus text
//! exposition (counters, kernel profiling counters and per-stage latency
//! histograms from [`engine::EngineTelemetry`]), each [`spec::JobResult`]
//! carries a [`spec::JobTimings`] breakdown, and a bounded trace ring of
//! lifecycle events is served at `GET /trace` (optionally mirrored to a JSONL
//! file via `--trace-out`).
//!
//! Both front-ends share one fault-tolerance layer: cooperative per-job deadlines
//! ([`spec::JobSpec::timeout_ms`]), deterministic retry with seeded backoff
//! ([`retry`]), a checksummed crash-safe result journal with torn-tail recovery
//! ([`journal`]), and a seeded fault-injection harness ([`fault`]) that makes all of
//! it testable to the byte.
//!
//! The [`engine`] underneath caches instance pre-computations — the objective-value
//! vector and its `PhaseClasses` compression, keyed by the canonical
//! `juliqaoa_problems::InstanceId` — in an LRU ([`lru`]), so repeated jobs on the same
//! instance compile the objective once and share it.  Job results are pure functions
//! of their specs (problem, mixer, `p`, optimizer, seed): the same spec returns a
//! bit-identical result at any thread count, cache state or submission order.

pub mod batch;
pub mod cluster;
pub mod engine;
pub mod fault;
pub mod http;
pub mod journal;
pub mod lru;
pub mod retry;
pub mod router;
pub mod server;
pub mod spans;
pub mod spec;

pub use batch::{
    completed_ids, load_job_file, run_batch, run_batch_sharded, run_batch_with, BatchOptions,
    BatchSummary,
};
pub use cluster::{Backend, BackendState, Cluster, ClusterConfig, HashRing};
pub use engine::{
    Engine, EngineStats, EngineTelemetry, PreparedObjective, ServiceError, DEFAULT_CACHE_CAPACITY,
};
pub use fault::{FaultPlan, PanicFault, WriteFault};
pub use journal::{FsyncPolicy, Journal, LineCheck, RecoveryReport};
pub use lru::{LruCache, ShardedLru};
pub use retry::RetryPolicy;
pub use router::{Router, RouterConfig, RouterStatsBody};
pub use server::{JobStatusBody, MetricsBody, Server, ServerConfig, TraceBody, TraceEvent};
pub use spans::{DEFAULT_TRACE_CAPACITY, TRACE_CAP_ENV, TRACE_HEADER, TRACE_PARENT_ENV};
pub use spec::{
    derive_trace_id, BuiltProblem, EstimatorSpec, JobFile, JobResult, JobSpec, JobTimings,
    MixerSpec, OptimizerSpec, ProblemSpec, SampleReport, SamplingSpec, MAX_QUBITS, MAX_SHOTS,
};
