//! The `qaoa-service` binary: batch, serve and route front-ends over the shared
//! engine.
//!
//! ```text
//! qaoa-service batch <jobs.json> [--out results.jsonl] [--no-resume] [--cache N]
//!                    [--retries N] [--fsync flush|every-line] [--shard-workers N]
//!                    [--trace-out trace.jsonl]
//! qaoa-service serve [--addr 127.0.0.1:7878] [--workers N] [--queue N] [--cache N]
//!                    [--out results.jsonl] [--trace-out trace.jsonl]
//!                    [--trace-ring-cap N] [--read-timeout-ms N] [--write-timeout-ms N]
//!                    [--default-timeout-ms N] [--max-timeout-ms N] [--queue-wait-ms N]
//!                    [--drain-ms N] [--retries N] [--fsync flush|every-line]
//!                    [--max-body-bytes N]
//! qaoa-service route --backends host:port,host:port,... [--addr 127.0.0.1:7979]
//!                    [--probe-interval-ms N] [--probe-timeout-ms N] [--trip-after N]
//!                    [--backend-timeout-ms N] [--hedge-after-ms N] [--retries N]
//!                    [--max-body-bytes N] [--trace-out trace.jsonl] [--trace-ring-cap N]
//! qaoa-service example-jobs <path> [--count N] [--n QUBITS]
//! ```
//!
//! `serve` and `route` install a SIGTERM handler: on receipt the process stops
//! accepting connections and drains (in-flight jobs under the `--drain-ms`
//! budget for serve; the prober thread for route).

use juliqaoa_service::{
    load_job_file, run_batch_sharded, run_batch_with, BatchOptions, Engine, FsyncPolicy, JobFile,
    JobSpec, MixerSpec, OptimizerSpec, ProblemSpec, RetryPolicy, Router, RouterConfig, Server,
    ServerConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGTERM handler; polled by the serve accept loop.
static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let out = match command.as_str() {
        "batch" => cmd_batch(rest),
        "serve" => cmd_serve(rest),
        "route" => cmd_route(rest),
        "example-jobs" => cmd_example_jobs(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match out {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("qaoa-service: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  qaoa-service batch <jobs.json> [--out results.jsonl] [--no-resume] [--cache N]
                     [--retries N] [--fsync flush|every-line] [--shard-workers N]
                     [--trace-out trace.jsonl]
  qaoa-service serve [--addr 127.0.0.1:7878] [--workers N] [--queue N] [--cache N]
                     [--out results.jsonl] [--trace-out trace.jsonl]
                     [--trace-ring-cap N] [--read-timeout-ms N] [--write-timeout-ms N]
                     [--default-timeout-ms N] [--max-timeout-ms N] [--queue-wait-ms N]
                     [--drain-ms N] [--retries N] [--fsync flush|every-line]
                     [--max-body-bytes N]
  qaoa-service route --backends host:port,host:port,... [--addr 127.0.0.1:7979]
                     [--probe-interval-ms N] [--probe-timeout-ms N] [--trip-after N]
                     [--backend-timeout-ms N] [--hedge-after-ms N] [--retries N]
                     [--max-body-bytes N] [--trace-out trace.jsonl] [--trace-ring-cap N]
  qaoa-service example-jobs <path> [--count N] [--n QUBITS]";

/// Pulls the value after a `--flag`, parsing it with `parse`.
fn flag_value<T>(
    args: &[String],
    i: &mut usize,
    flag: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<T, String> {
    *i += 1;
    let raw = args
        .get(*i)
        .ok_or_else(|| format!("{flag} requires a value"))?;
    parse(raw).ok_or_else(|| format!("invalid value {raw:?} for {flag}"))
}

fn parse_fsync(s: &str) -> Option<FsyncPolicy> {
    match s {
        "flush" => Some(FsyncPolicy::Flush),
        "every-line" => Some(FsyncPolicy::EveryLine),
        _ => None,
    }
}

/// Installs a SIGTERM handler that raises [`STOP_REQUESTED`].  The libc crate
/// is not vendored, so this binds `signal(2)` directly; the handler only
/// stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
fn install_stop_signal() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        STOP_REQUESTED.store(true, Ordering::SeqCst);
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_stop_signal() {}

fn cmd_batch(args: &[String]) -> Result<(), String> {
    let mut jobs_path: Option<PathBuf> = None;
    let mut out_path = PathBuf::from("results.jsonl");
    let mut opts = BatchOptions {
        resume: true,
        ..Default::default()
    };
    let mut cache = juliqaoa_service::DEFAULT_CACHE_CAPACITY;
    let mut shard_workers = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => out_path = flag_value(args, &mut i, "--out", |s| Some(PathBuf::from(s)))?,
            "--no-resume" => opts.resume = false,
            "--cache" => cache = flag_value(args, &mut i, "--cache", |s| s.parse().ok())?,
            "--retries" => {
                opts.retry =
                    RetryPolicy::with_retries(flag_value(args, &mut i, "--retries", |s| {
                        s.parse().ok()
                    })?)
            }
            "--fsync" => opts.fsync = flag_value(args, &mut i, "--fsync", parse_fsync)?,
            "--trace-out" => {
                opts.trace_path = Some(flag_value(args, &mut i, "--trace-out", |s| {
                    Some(PathBuf::from(s))
                })?)
            }
            "--shard-workers" => {
                shard_workers = flag_value(args, &mut i, "--shard-workers", |s| s.parse().ok())?
            }
            other if jobs_path.is_none() && !other.starts_with("--") => {
                jobs_path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    let jobs_path = jobs_path.ok_or("batch requires a job file path")?;
    let jobs = load_job_file(&jobs_path).map_err(|e| e.to_string())?;
    eprintln!(
        "batch: {} jobs from {}, results -> {}",
        jobs.len(),
        jobs_path.display(),
        out_path.display()
    );
    if shard_workers > 1 {
        let exe = std::env::current_exe().map_err(|e| e.to_string())?;
        let summary = run_batch_sharded(&exe, &jobs, &out_path, &opts, shard_workers, cache)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "batch: executed {} (skipped {}, failed {}) across {shard_workers} shard processes in {:.2}s — {:.2} jobs/s",
            summary.executed, summary.skipped, summary.failed, summary.elapsed_s, summary.jobs_per_sec,
        );
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
        if summary.failed > 0 {
            return Err(format!(
                "{} job(s) failed — see {}",
                summary.failed,
                out_path.display()
            ));
        }
        return Ok(());
    }
    let engine = Engine::new(cache);
    let summary = run_batch_with(&engine, &jobs, &out_path, &opts).map_err(|e| e.to_string())?;
    let stats = engine.stats();
    eprintln!(
        "batch: executed {} (skipped {}, failed {}) in {:.2}s — {:.2} jobs/s, cache {}/{} hit",
        summary.executed,
        summary.skipped,
        summary.failed,
        summary.elapsed_s,
        summary.jobs_per_sec,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
    );
    if summary.failed > 0 {
        return Err(format!(
            "{} job(s) failed — see {}",
            summary.failed,
            out_path.display()
        ));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = flag_value(args, &mut i, "--addr", |s| Some(s.to_string()))?,
            "--workers" => {
                config.workers = flag_value(args, &mut i, "--workers", |s| s.parse().ok())?
            }
            "--queue" => {
                config.queue_capacity = flag_value(args, &mut i, "--queue", |s| s.parse().ok())?
            }
            "--cache" => {
                config.cache_capacity = flag_value(args, &mut i, "--cache", |s| s.parse().ok())?
            }
            "--out" => {
                config.results_path = Some(flag_value(args, &mut i, "--out", |s| {
                    Some(PathBuf::from(s))
                })?)
            }
            "--trace-out" => {
                config.trace_path = Some(flag_value(args, &mut i, "--trace-out", |s| {
                    Some(PathBuf::from(s))
                })?)
            }
            "--trace-ring-cap" => {
                config.trace_ring_cap =
                    flag_value(args, &mut i, "--trace-ring-cap", |s| s.parse().ok())?
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms =
                    flag_value(args, &mut i, "--read-timeout-ms", |s| s.parse().ok())?
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms =
                    flag_value(args, &mut i, "--write-timeout-ms", |s| s.parse().ok())?
            }
            "--default-timeout-ms" => {
                config.default_timeout_ms =
                    Some(flag_value(args, &mut i, "--default-timeout-ms", |s| {
                        s.parse().ok()
                    })?)
            }
            "--max-timeout-ms" => {
                config.max_timeout_ms = Some(flag_value(args, &mut i, "--max-timeout-ms", |s| {
                    s.parse().ok()
                })?)
            }
            "--queue-wait-ms" => {
                config.queue_wait_ms = Some(flag_value(args, &mut i, "--queue-wait-ms", |s| {
                    s.parse().ok()
                })?)
            }
            "--drain-ms" => {
                config.drain_ms = flag_value(args, &mut i, "--drain-ms", |s| s.parse().ok())?
            }
            "--retries" => {
                config.retry = RetryPolicy::with_retries(flag_value(args, &mut i, "--retries", {
                    |s| s.parse().ok()
                })?)
            }
            "--fsync" => config.fsync = flag_value(args, &mut i, "--fsync", parse_fsync)?,
            "--max-body-bytes" => {
                config.max_body_bytes =
                    flag_value(args, &mut i, "--max-body-bytes", |s| s.parse().ok())?
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    install_stop_signal();
    let server = Server::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "qaoa-service listening on http://{addr} (POST /jobs, GET /metrics, GET /stats, GET /trace, POST /shutdown)"
    );
    server.run_until(&STOP_REQUESTED).map_err(|e| e.to_string())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let mut config = RouterConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = flag_value(args, &mut i, "--addr", |s| Some(s.to_string()))?,
            "--backends" => {
                config.cluster.backends = flag_value(args, &mut i, "--backends", |s| {
                    let list: Vec<String> = s
                        .split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(str::to_string)
                        .collect();
                    (!list.is_empty()).then_some(list)
                })?
            }
            "--probe-interval-ms" => {
                config.cluster.probe_interval_ms =
                    flag_value(args, &mut i, "--probe-interval-ms", |s| s.parse().ok())?
            }
            "--probe-timeout-ms" => {
                config.cluster.probe_timeout_ms =
                    flag_value(args, &mut i, "--probe-timeout-ms", |s| s.parse().ok())?
            }
            "--trip-after" => {
                config.cluster.trip_after =
                    flag_value(args, &mut i, "--trip-after", |s| s.parse().ok())?
            }
            "--backend-timeout-ms" => {
                config.backend_timeout_ms =
                    flag_value(args, &mut i, "--backend-timeout-ms", |s| s.parse().ok())?
            }
            "--hedge-after-ms" => {
                config.hedge_after_ms = Some(flag_value(args, &mut i, "--hedge-after-ms", |s| {
                    s.parse().ok()
                })?)
            }
            "--retries" => {
                config.cluster.retry =
                    RetryPolicy::with_retries(flag_value(args, &mut i, "--retries", {
                        |s| s.parse().ok()
                    })?)
            }
            "--max-body-bytes" => {
                config.max_body_bytes =
                    flag_value(args, &mut i, "--max-body-bytes", |s| s.parse().ok())?
            }
            "--trace-out" => {
                config.trace_path = Some(flag_value(args, &mut i, "--trace-out", |s| {
                    Some(PathBuf::from(s))
                })?)
            }
            "--trace-ring-cap" => {
                config.trace_ring_cap =
                    flag_value(args, &mut i, "--trace-ring-cap", |s| s.parse().ok())?
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    if config.cluster.backends.is_empty() {
        return Err("route requires --backends host:port[,host:port...]".into());
    }
    install_stop_signal();
    let router = Router::bind(config).map_err(|e| format!("bind failed: {e}"))?;
    let addr = router.local_addr().map_err(|e| e.to_string())?;
    eprintln!("qaoa-service routing on http://{addr} (POST /jobs, GET /metrics, GET /stats, GET /trace, POST /shutdown)");
    router.run_until(&STOP_REQUESTED).map_err(|e| e.to_string())
}

/// Writes a small mixed-problem job file, used by the CI smoke test and as a starting
/// point for hand-written specs.
fn cmd_example_jobs(args: &[String]) -> Result<(), String> {
    let mut path: Option<PathBuf> = None;
    let mut count = 3usize;
    let mut n = 8usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--count" => count = flag_value(args, &mut i, "--count", |s| s.parse().ok())?,
            "--n" => n = flag_value(args, &mut i, "--n", |s| s.parse().ok())?,
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    let path = path.ok_or("example-jobs requires an output path")?;
    let jobs = example_jobs(count, n);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&JobFile { jobs }).map_err(|e| e.to_string())?,
    )
    .map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("wrote {count} example jobs to {}", path.display());
    Ok(())
}

/// A deterministic mixed workload cycling through the paper's problem/mixer pairs.
fn example_jobs(count: usize, n: usize) -> Vec<JobSpec> {
    (0..count)
        .map(|i| {
            let instance = (i / 4) as u64;
            let (problem, mixer) = match i % 4 {
                0 => (
                    ProblemSpec::MaxCutGnp { n, instance },
                    MixerSpec::TransverseField,
                ),
                1 => (
                    ProblemSpec::KSatRandom {
                        n,
                        k: 3,
                        density: 6.0,
                        instance,
                    },
                    MixerSpec::Grover,
                ),
                2 => (
                    ProblemSpec::DensestKSubgraphGnp {
                        n,
                        k: n / 2,
                        instance,
                    },
                    MixerSpec::Clique,
                ),
                _ => (
                    ProblemSpec::MaxKVertexCoverGnp {
                        n,
                        k: n / 2,
                        instance,
                    },
                    MixerSpec::Ring,
                ),
            };
            JobSpec {
                id: format!("example-{i}"),
                problem,
                mixer,
                p: 1 + (i % 2),
                optimizer: OptimizerSpec::BasinHopping {
                    n_hops: 3,
                    step_size: 0.8,
                    temperature: 1.0,
                },
                seed: 1000 + i as u64,
                sampling: None,
                timeout_ms: None,
            }
        })
        .collect()
}
