//! Cluster route mode: the HTTP front-end that consistent-hashes jobs onto
//! backend `qaoa-service serve` processes.
//!
//! `qaoa-service route --backends a,b,c` runs one of these.  The router owns no
//! engine: it computes each submitted job's canonical `InstanceId` (cheap — the
//! instance is *realised*, never its exponential objective vector), places it on
//! the [`crate::cluster::HashRing`], and proxies the request to the owning
//! backend.  Keying by `InstanceId` rather than round-robin means every job on
//! the same instance lands on the same backend, so the per-shard engine caches
//! (instance pre-computations, prefix checkpoints, single-flight prep) keep
//! their hit rates as the cluster grows.
//!
//! Fault behaviour, all deterministic:
//!
//! * **Failover** — a transport error or backend 5xx re-routes the job to the
//!   next node in ring order, pacing re-attempts with the shared
//!   [`RetryPolicy`]'s seeded backoff (`delay(job id, attempt)`), so a chaos
//!   run's failover schedule replays byte-identically.  The router keeps each
//!   job's spec, so a backend that dies *after* accepting jobs is handled the
//!   same way: the next poll that finds the owner dead re-submits the spec to
//!   the successor (job results are pure functions of their specs, so re-running
//!   elsewhere yields identical bytes).
//! * **Health** — a prober thread drives each backend's Up/Degraded/Down
//!   circuit breaker from periodic `/readyz` probes (see [`crate::cluster`]).
//! * **Hedged reads** — with `--hedge-after-ms`, an idempotent status/result
//!   poll that the owner has not answered within the threshold is duplicated to
//!   the ring successor; the first usable response wins.  Submits are never
//!   hedged (they are not idempotent across backends).
//!
//! Router state is first-class observable: per-backend gauges, failover/hedge
//! counters and route-latency histograms on `GET /metrics`, and
//! `backend_up`/`backend_down`/`backend_tripped`/`failover`/`hedge` events in
//! the same bounded trace ring serve mode uses (`GET /trace`, `--trace-out`).

use crate::cluster::{Cluster, ClusterConfig};
use crate::http::{
    client_request, client_request_with_headers, read_request_limited, write_body, write_error,
    write_json, ClientResponse, Request, DEFAULT_MAX_BODY_BYTES,
};
use crate::server::{TraceBody, TraceEvent};
use crate::spans::{default_trace_cap, span_from_value, trace_body, version_value, TRACE_HEADER};
use crate::spec::{derive_trace_id, JobSpec};
use juliqaoa_telemetry::{
    encode, Counter, Histogram, PromWriter, Span, SpanCollector, TraceId, TraceRing,
};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// The fixed trace id the router's operational spans (health probes) are
/// recorded under — process-independent, so `GET /trace/:id` with this id
/// always pulls the probe history.
pub const OPS_TRACE: TraceId = TraceId::from_raw(0x00C0_FFEE_0B5E_70E5);

/// Configuration for [`Router::bind`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address for the router itself (`:0` picks a free port).
    pub addr: String,
    /// Ring membership, probing and failover pacing.
    pub cluster: ClusterConfig,
    /// Per-connection socket read timeout in milliseconds (client side).
    pub read_timeout_ms: u64,
    /// Per-connection socket write timeout in milliseconds (client side).
    pub write_timeout_ms: u64,
    /// Timeout for one proxied request to a backend, in milliseconds.
    pub backend_timeout_ms: u64,
    /// Hedge threshold for idempotent reads: after this many milliseconds
    /// without a response from the owner, duplicate the poll to the ring
    /// successor.  `None` disables hedging.
    pub hedge_after_ms: Option<u64>,
    /// Upper bound on request bodies (structured 413 beyond it).
    pub max_body_bytes: usize,
    /// Optional JSONL file trace events and spans are appended to.
    pub trace_path: Option<PathBuf>,
    /// Capacity of the lifecycle trace ring *and* the span collector
    /// (`--trace-ring-cap`, falling back to `JULIQAOA_TRACE_CAP`, then 1024).
    pub trace_ring_cap: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7979".into(),
            cluster: ClusterConfig::default(),
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            backend_timeout_ms: 10_000,
            hedge_after_ms: None,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            trace_path: None,
            trace_ring_cap: default_trace_cap(),
        }
    }
}

/// What the router remembers about one routed job: enough to poll it and to
/// re-place it deterministically when its backend dies.
#[derive(Clone, Debug)]
struct RoutedJob {
    /// Ring key (the job's canonical instance hash).
    key: u64,
    /// Current owner (ring index).
    backend: usize,
    /// The exact spec body submitted, re-sent verbatim on failover.
    spec_body: String,
    /// The trace id assigned at routing time and propagated to the backend.
    trace: TraceId,
}

/// Per-backend entry in the `GET /stats` body.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct BackendStatsBody {
    /// Backend address.
    pub addr: String,
    /// `up` / `degraded` / `down`.
    pub state: String,
    /// Consecutive failures recorded since the last success.
    pub consecutive_failures: u64,
    /// Times the circuit breaker tripped this backend.
    pub trips: u64,
}

/// The router's `GET /stats` body.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RouterStatsBody {
    /// Seconds since the router started.
    pub uptime_s: f64,
    /// Jobs accepted and routed to a backend.
    pub jobs_routed: u64,
    /// Jobs re-routed to another backend after a failure.
    pub failovers: u64,
    /// Idempotent reads duplicated to a successor after the hedge threshold.
    pub hedged_reads: u64,
    /// Hedged reads where the successor's response won.
    pub hedge_wins: u64,
    /// Backends currently routable.
    pub backends_live: u64,
    /// Per-backend health.
    pub backends: Vec<BackendStatsBody>,
}

/// State shared by the accept loop, proxy threads and the prober.
struct RouterState {
    cluster: Cluster,
    config: RouterConfig,
    jobs: Mutex<HashMap<String, RoutedJob>>,
    auto_id: AtomicU64,
    jobs_routed: Counter,
    failovers: Counter,
    hedged_reads: Counter,
    hedge_wins: Counter,
    stop_requested: AtomicBool,
    started: Instant,
    submit_ms: Histogram,
    read_ms: Histogram,
    trace: TraceRing<TraceEvent>,
    trace_seq: AtomicU64,
    trace_out: Option<Arc<Mutex<std::io::BufWriter<std::fs::File>>>>,
    /// Routing-side spans (`route_submit`, `failover`, `hedge`, `probe`) for
    /// `GET /trace/:id`; mirrored to `trace_out`.
    spans: Arc<SpanCollector>,
    /// Last `(trace hex, latency)` per route histogram — `/metrics` exemplars.
    last_submit_exemplar: Mutex<Option<(String, f64)>>,
    last_read_exemplar: Mutex<Option<(String, f64)>>,
}

impl RouterState {
    /// Records a lifecycle event into the trace ring (and `--trace-out`).
    fn trace_event(&self, event: &str, job: &str, detail: impl Into<String>) {
        let entry = TraceEvent {
            // relaxed: sequence allocator; fetch_add is atomic regardless of ordering.
            seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
            ts_ms: self.started.elapsed().as_secs_f64() * 1e3,
            event: event.to_string(),
            job: job.to_string(),
            detail: detail.into(),
        };
        if let Some(out) = &self.trace_out {
            if let Ok(line) = serde_json::to_string(&entry) {
                let mut w = out.lock().expect("trace out lock");
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
        }
        self.trace.push(entry);
    }

    fn backend_timeout(&self) -> Duration {
        Duration::from_millis(self.config.backend_timeout_ms.max(1))
    }

    /// Applies a health transition returned by the cluster to the trace ring.
    fn trace_transition(&self, transition: Option<(&'static str, String)>) {
        if let Some((event, detail)) = transition {
            self.trace_event(event, "", detail);
        }
    }
}

/// A bound, not-yet-running router.
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
}

impl Router {
    /// Binds the router's listener (no probing or serving until [`Router::run`]).
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        if config.cluster.backends.is_empty() {
            return Err(std::io::Error::other(
                "route mode needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let trace_out = match &config.trace_path {
            Some(path) => Some(Arc::new(Mutex::new(std::io::BufWriter::new(
                std::fs::File::create(path)?,
            )))),
            None => None,
        };
        let spans = Arc::new(SpanCollector::new(
            config.trace_ring_cap.max(1),
            crate::spans::collector_salt(),
        ));
        if let Some(out) = &trace_out {
            let out = out.clone();
            spans.set_sink(Box::new(move |span: &Span| {
                let mut w = out.lock().expect("trace out lock");
                let _ = writeln!(w, "{}", span.to_json_line());
                let _ = w.flush();
            }));
        }
        let state = Arc::new(RouterState {
            cluster: Cluster::new(config.cluster.clone()),
            jobs: Mutex::new(HashMap::new()),
            auto_id: AtomicU64::new(0),
            jobs_routed: Counter::new(),
            failovers: Counter::new(),
            hedged_reads: Counter::new(),
            hedge_wins: Counter::new(),
            stop_requested: AtomicBool::new(false),
            started: Instant::now(),
            submit_ms: Histogram::latency_ms(),
            read_ms: Histogram::latency_ms(),
            trace: TraceRing::new(config.trace_ring_cap.max(1)),
            trace_seq: AtomicU64::new(0),
            trace_out,
            spans,
            last_submit_exemplar: Mutex::new(None),
            last_read_exemplar: Mutex::new(None),
            config,
        });
        // Record the boot topology in the trace: every backend starts assumed
        // Up, and a chaos run's journal should show what the ring looked like
        // before the first probe ever fired.
        for backend in state.cluster.backends() {
            state.trace_event(
                "backend_up",
                "",
                format!("{} joined the ring", backend.addr),
            );
        }
        Ok(Router { listener, state })
    }

    /// The bound address (useful with a `:0` bind).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /shutdown`.
    pub fn run(self) -> std::io::Result<()> {
        self.run_until(&AtomicBool::new(false))
    }

    /// [`Router::run`], but also stops when `stop` becomes true (SIGTERM hook).
    pub fn run_until(self, stop: &AtomicBool) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let prober_stop = Arc::new(AtomicBool::new(false));
        let prober = {
            let state = self.state.clone();
            let stop = prober_stop.clone();
            std::thread::Builder::new()
                .name("qaoa-router-prober".into())
                .spawn(move || prober_loop(&state, &stop))?
        };
        loop {
            if stop.load(Ordering::SeqCst) || self.state.stop_requested.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(
                        self.state.config.read_timeout_ms.max(1),
                    )));
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(
                        self.state.config.write_timeout_ms.max(1),
                    )));
                    handle_connection(&self.state, &mut stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {}
            }
        }
        prober_stop.store(true, Ordering::SeqCst);
        let _ = prober.join();
        Ok(())
    }
}

/// Health-probe loop: one `/readyz` round per interval, circuit-breaker state
/// driven by the outcomes.  Down backends are only probed when their seeded
/// half-open cooldown has elapsed.
fn prober_loop(state: &RouterState, stop: &AtomicBool) {
    let interval = Duration::from_millis(state.cluster.config().probe_interval_ms.max(10));
    let timeout = Duration::from_millis(state.cluster.config().probe_timeout_ms.max(1));
    while !stop.load(Ordering::SeqCst) {
        for index in 0..state.cluster.backends().len() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if !state.cluster.should_probe(index) {
                continue;
            }
            let backend = state.cluster.backend(index);
            backend.probes.inc();
            let probe_started = Instant::now();
            let outcome = client_request(&backend.addr, "GET", "/readyz", None, timeout);
            let probe_ok = matches!(&outcome, Ok(resp) if resp.status == 200);
            // Probe spans live under the fixed ops trace, not a job trace —
            // `GET /trace/<OPS_TRACE>` is the probe history.
            state.spans.record_closed(
                OPS_TRACE,
                None,
                "probe",
                probe_started.elapsed().as_secs_f64() * 1e3,
                vec![
                    ("backend".to_string(), backend.addr.clone()),
                    ("ok".to_string(), probe_ok.to_string()),
                ],
            );
            match outcome {
                Ok(resp) if resp.status == 200 => {
                    state.trace_transition(state.cluster.record_success(index));
                }
                Ok(resp) => {
                    backend.probe_failures.inc();
                    state.trace_transition(
                        state
                            .cluster
                            .record_failure(index, &format!("readyz returned {}", resp.status)),
                    );
                }
                Err(e) => {
                    backend.probe_failures.inc();
                    state.trace_transition(
                        state
                            .cluster
                            .record_failure(index, &format!("probe failed: {e}")),
                    );
                }
            }
        }
        // Sleep in small steps so shutdown is prompt even with long intervals.
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::SeqCst) {
            let step = (interval - slept).min(Duration::from_millis(20));
            std::thread::sleep(step);
            slept += step;
        }
    }
}

fn handle_connection(state: &Arc<RouterState>, stream: &mut TcpStream) {
    let request = match read_request_limited(stream, state.config.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            write_error(stream, e.status, &e.message);
            return;
        }
    };
    route(state, stream, &request);
}

fn route(state: &Arc<RouterState>, stream: &mut TcpStream, request: &Request) {
    let path = request.path.trim_end_matches('/');
    match (request.method.as_str(), path) {
        ("POST", "/jobs") => handle_submit(state, stream, request),
        ("GET", "/metrics") => handle_prometheus(state, stream),
        ("GET", "/stats") => handle_stats(state, stream),
        ("GET", "/trace") => handle_trace(state, stream),
        ("GET", "/version") => handle_version(stream),
        ("GET", "/healthz") => write_json(stream, 200, "{\"status\": \"ok\"}"),
        ("GET", "/readyz") => {
            // The router is ready exactly when it can place a job somewhere.
            if state.cluster.live_count() > 0 {
                write_json(stream, 200, "{\"status\": \"ready\"}")
            } else {
                write_error(stream, 503, "no live backend")
            }
        }
        ("POST", "/shutdown") => {
            state.stop_requested.store(true, Ordering::SeqCst);
            write_json(stream, 200, "{\"status\": \"shutting down\"}");
        }
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                match (
                    method,
                    rest.strip_suffix("/result"),
                    rest.strip_suffix("/cancel"),
                ) {
                    ("GET", Some(id), _) => {
                        handle_proxied_read(state, stream, id, &format!("/jobs/{id}/result"))
                    }
                    ("POST", _, Some(id)) => handle_cancel(state, stream, id),
                    ("GET", None, None) => {
                        handle_proxied_read(state, stream, rest, &format!("/jobs/{rest}"))
                    }
                    _ => write_error(stream, 405, "method not allowed"),
                }
            } else if let Some(trace_hex) = path.strip_prefix("/trace/") {
                match method {
                    "GET" => handle_trace_id(state, stream, trace_hex),
                    _ => write_error(stream, 405, "method not allowed"),
                }
            } else {
                write_error(stream, 404, "no such endpoint");
            }
        }
    }
}

/// Submits a spec to its ring placement, walking the deterministic failover
/// order on backend errors.  Returns the winning backend index and response.
fn submit_with_failover(
    state: &RouterState,
    job_id: &str,
    key: u64,
    trace: TraceId,
    body: &str,
) -> Result<(usize, ClientResponse), String> {
    let started = Instant::now();
    let candidates = state.cluster.candidates(key);
    let mut attempt = 0u32;
    let mut last_error = String::from("no backends configured");
    for (position, &index) in candidates.iter().enumerate() {
        let backend = state.cluster.backend(index);
        // Skip open circuits, but never skip the last candidate: with every
        // breaker open the request must still be *tried* somewhere, otherwise a
        // transient all-down blip turns into guaranteed rejection.
        if !backend.is_live() && position + 1 < candidates.len() {
            continue;
        }
        if attempt > 0 {
            // Seeded failover pacing: the schedule is a pure function of
            // (retry seed, job id, attempt), so chaos runs replay exactly.
            std::thread::sleep(state.cluster.config().retry.delay(job_id, attempt - 1));
        }
        // Propagate the trace id so the backend adopts it instead of
        // re-deriving — the routed edge and the executing edge share one trace.
        match client_request_with_headers(
            &backend.addr,
            "POST",
            "/jobs",
            &[(TRACE_HEADER, trace.to_hex())],
            Some(body),
            state.backend_timeout(),
        ) {
            // 2xx accepted; 409 means this backend already holds the job (a
            // retransmit after a half-failed earlier attempt) — also success.
            Ok(resp) if resp.status < 500 => {
                state.trace_transition(state.cluster.record_success(index));
                if attempt > 0 {
                    state.failovers.inc();
                    state.trace_event(
                        "failover",
                        job_id,
                        format!(
                            "submitted to {} after {attempt} failed attempt(s)",
                            backend.addr
                        ),
                    );
                }
                state.spans.record_closed(
                    trace,
                    Some(trace.root_span()),
                    "route_submit",
                    started.elapsed().as_secs_f64() * 1e3,
                    vec![
                        ("job".to_string(), job_id.to_string()),
                        ("backend".to_string(), backend.addr.clone()),
                        ("attempts".to_string(), (attempt + 1).to_string()),
                    ],
                );
                return Ok((index, resp));
            }
            Ok(resp) => {
                last_error = format!("{} returned {}", backend.addr, resp.status);
                state.trace_transition(state.cluster.record_failure(index, &last_error));
                attempt += 1;
            }
            Err(e) => {
                last_error = format!("{}: {e}", backend.addr);
                state.trace_transition(state.cluster.record_failure(index, &last_error));
                attempt += 1;
            }
        }
    }
    Err(last_error)
}

fn handle_submit(state: &Arc<RouterState>, stream: &mut TcpStream, request: &Request) {
    let started = Instant::now();
    let body = String::from_utf8_lossy(&request.body);
    let mut spec: JobSpec = match serde_json::from_str(&body) {
        Ok(spec) => spec,
        Err(e) => {
            write_error(stream, 400, &format!("invalid job spec: {e}"));
            return;
        }
    };
    if spec.id.is_empty() {
        // relaxed: id allocator; uniqueness needs atomicity, not ordering.
        spec.id = format!("job-{}", state.auto_id.fetch_add(1, Ordering::Relaxed));
    }
    // The same cheap shape checks serve mode runs at submission: reject bad
    // specs at the router without spending a backend round-trip on them.
    if let Err(e) = spec
        .problem
        .shape()
        .and_then(|(_, subspace_k)| spec.mixer.check_compatible(subspace_k))
        .and_then(|()| match &spec.sampling {
            Some(sampling) => sampling.validate(),
            None => Ok(()),
        })
    {
        write_error(stream, 400, &format!("invalid job spec: {e}"));
        return;
    }
    if state
        .jobs
        .lock()
        .expect("router jobs lock")
        .contains_key(&spec.id)
    {
        write_error(stream, 409, &format!("job id {:?} already exists", spec.id));
        return;
    }
    // Routing key: the canonical instance fingerprint.  Realising the instance
    // is poly(n) (graph/clause construction — the exponential objective vector
    // is the *backend's* cached work), cheap enough for the routing path, and it
    // is exactly the backend's cache key, which is what buys cache affinity.
    let key = match spec.problem.build() {
        Ok(built) => built.instance_id.raw(),
        Err(e) => {
            write_error(stream, 400, &format!("invalid job spec: {e}"));
            return;
        }
    };
    // The trace id is a pure function of the spec, assigned here at the edge
    // and propagated to the backend via the trace header — both tiers (and a
    // batch run of the same spec) agree on it without coordination.
    let trace = derive_trace_id(key, &spec);
    let spec_body = match serde_json::to_string(&spec) {
        Ok(json) => json,
        Err(_) => {
            write_error(stream, 500, "serialisation failed");
            return;
        }
    };
    match submit_with_failover(state, &spec.id, key, trace, &spec_body) {
        Ok((index, resp)) => {
            if resp.is_success() || resp.status == 409 {
                state.jobs.lock().expect("router jobs lock").insert(
                    spec.id.clone(),
                    RoutedJob {
                        key,
                        backend: index,
                        spec_body,
                        trace,
                    },
                );
                state.jobs_routed.inc();
            }
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            state.submit_ms.observe(elapsed_ms);
            *state.last_submit_exemplar.lock().expect("exemplar lock") =
                Some((trace.to_hex(), elapsed_ms));
            write_json(stream, resp.status, &resp.body);
        }
        Err(why) => {
            state
                .submit_ms
                .observe(started.elapsed().as_secs_f64() * 1e3);
            write_error(
                stream,
                503,
                &format!("no live backend accepted the job ({why})"),
            );
        }
    }
}

/// Re-places a job whose owner failed: walks the ring order after the dead
/// owner, re-submits the stored spec, updates the mapping.  Deterministic given
/// the same health states — placement from the ring, pacing from the seeded
/// retry policy.
fn failover_job(state: &RouterState, id: &str) -> Result<usize, String> {
    let started = Instant::now();
    let job = state
        .jobs
        .lock()
        .expect("router jobs lock")
        .get(id)
        .cloned()
        .ok_or_else(|| format!("unknown job {id:?}"))?;
    let candidates = state.cluster.candidates(job.key);
    let dead = job.backend;
    let start = candidates.iter().position(|&b| b == dead).unwrap_or(0);
    let mut attempt = 0u32;
    let mut last_error = String::from("no other backend");
    for offset in 1..candidates.len().max(1) {
        let index = candidates[(start + offset) % candidates.len()];
        let backend = state.cluster.backend(index);
        if !backend.is_live() && offset + 1 < candidates.len() {
            continue;
        }
        if attempt > 0 {
            std::thread::sleep(state.cluster.config().retry.delay(id, attempt - 1));
        }
        match client_request_with_headers(
            &backend.addr,
            "POST",
            "/jobs",
            &[(TRACE_HEADER, job.trace.to_hex())],
            Some(&job.spec_body),
            state.backend_timeout(),
        ) {
            Ok(resp) if resp.is_success() || resp.status == 409 => {
                state.trace_transition(state.cluster.record_success(index));
                if let Some(entry) = state.jobs.lock().expect("router jobs lock").get_mut(id) {
                    entry.backend = index;
                }
                state.failovers.inc();
                state.trace_event(
                    "failover",
                    id,
                    format!(
                        "re-routed from {} to {}",
                        state.cluster.backend(dead).addr,
                        backend.addr
                    ),
                );
                state.spans.record_closed(
                    job.trace,
                    Some(job.trace.root_span()),
                    "failover",
                    started.elapsed().as_secs_f64() * 1e3,
                    vec![
                        ("job".to_string(), id.to_string()),
                        ("from".to_string(), state.cluster.backend(dead).addr.clone()),
                        ("backend".to_string(), backend.addr.clone()),
                    ],
                );
                return Ok(index);
            }
            Ok(resp) => {
                last_error = format!("{} returned {}", backend.addr, resp.status);
                state.trace_transition(state.cluster.record_failure(index, &last_error));
                attempt += 1;
            }
            Err(e) => {
                last_error = format!("{}: {e}", backend.addr);
                state.trace_transition(state.cluster.record_failure(index, &last_error));
                attempt += 1;
            }
        }
    }
    Err(last_error)
}

/// Issues an idempotent GET against a job's owner, hedging to the ring
/// successor after the configured latency threshold.  The owner's response is
/// authoritative; a hedge response only wins if it actually knows the job
/// (status < 400), so a successor's 404 can never mask a slow-but-correct
/// owner.
fn hedged_get(
    state: &Arc<RouterState>,
    owner: usize,
    trace: TraceId,
    path: &str,
) -> std::io::Result<ClientResponse> {
    let timeout = state.backend_timeout();
    let owner_addr = state.cluster.backend(owner).addr.clone();
    let hedge_target = state.config.hedge_after_ms.and_then(|_| {
        state
            .cluster
            .successor(owner)
            .filter(|&s| s != owner && state.cluster.backend(s).is_live())
    });
    let (Some(hedge_after), Some(successor)) = (state.config.hedge_after_ms, hedge_target) else {
        return client_request(&owner_addr, "GET", path, None, timeout);
    };

    let (tx, rx) = mpsc::channel::<(bool, std::io::Result<ClientResponse>)>();
    {
        let tx = tx.clone();
        let path = path.to_string();
        std::thread::spawn(move || {
            let _ = tx.send((
                true,
                client_request(&owner_addr, "GET", &path, None, timeout),
            ));
        });
    }
    let first = match rx.recv_timeout(Duration::from_millis(hedge_after)) {
        Ok(outcome) => Some(outcome),
        Err(mpsc::RecvTimeoutError::Timeout) => None,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            return Err(std::io::Error::other("owner request thread vanished"))
        }
    };
    if let Some((_, outcome)) = first {
        // The owner answered within the threshold: no hedge needed.
        return outcome;
    }

    state.hedged_reads.inc();
    let successor_addr = state.cluster.backend(successor).addr.clone();
    state.trace_event(
        "hedge",
        "",
        format!("owner slow on {path}; duplicating to {successor_addr}"),
    );
    // The hedge span records *that* the threshold fired and where the
    // duplicate went; its duration is the wait that triggered it.
    state.spans.record_closed(
        trace,
        Some(trace.root_span()),
        "hedge",
        hedge_after as f64,
        vec![
            ("path".to_string(), path.to_string()),
            ("backend".to_string(), successor_addr.clone()),
        ],
    );
    {
        let path = path.to_string();
        std::thread::spawn(move || {
            let _ = tx.send((
                false,
                client_request(&successor_addr, "GET", &path, None, timeout),
            ));
        });
    }
    let mut owner_outcome: Option<std::io::Result<ClientResponse>> = None;
    for _ in 0..2 {
        match rx.recv() {
            Ok((from_owner, outcome)) => {
                if from_owner {
                    match outcome {
                        Ok(resp) => return Ok(resp),
                        Err(e) => owner_outcome = Some(Err(e)),
                    }
                } else if let Ok(resp) = outcome {
                    if resp.status < 400 {
                        state.hedge_wins.inc();
                        return Ok(resp);
                    }
                }
            }
            Err(_) => break,
        }
    }
    owner_outcome.unwrap_or_else(|| Err(std::io::Error::other("no response from owner or hedge")))
}

fn handle_proxied_read(state: &Arc<RouterState>, stream: &mut TcpStream, id: &str, path: &str) {
    let started = Instant::now();
    let (owner, trace) = {
        let jobs = state.jobs.lock().expect("router jobs lock");
        match jobs.get(id) {
            Some(job) => (job.backend, job.trace),
            None => {
                write_error(stream, 404, &format!("unknown job {id:?}"));
                return;
            }
        }
    };
    match hedged_get(state, owner, trace, path) {
        Ok(resp) => {
            state.trace_transition(state.cluster.record_success(owner));
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            state.read_ms.observe(elapsed_ms);
            *state.last_read_exemplar.lock().expect("exemplar lock") =
                Some((trace.to_hex(), elapsed_ms));
            write_json(stream, resp.status, &resp.body);
        }
        Err(e) => {
            // The owner is unreachable: deterministic failover.  The job's spec
            // is re-submitted to the ring successor and the read retried there,
            // so the client sees a fresh `queued` status, never a 5xx, while
            // the job silently re-runs elsewhere.
            state.trace_transition(
                state
                    .cluster
                    .record_failure(owner, &format!("read failed: {e}")),
            );
            match failover_job(state, id) {
                Ok(new_owner) => {
                    let addr = state.cluster.backend(new_owner).addr.clone();
                    let outcome = client_request(&addr, "GET", path, None, state.backend_timeout());
                    state.read_ms.observe(started.elapsed().as_secs_f64() * 1e3);
                    match outcome {
                        Ok(resp) => write_json(stream, resp.status, &resp.body),
                        Err(e) => write_error(
                            stream,
                            503,
                            &format!("job re-routed but new owner unreachable: {e}"),
                        ),
                    }
                }
                Err(why) => {
                    state.read_ms.observe(started.elapsed().as_secs_f64() * 1e3);
                    write_error(
                        stream,
                        503,
                        &format!("owner unreachable, failover failed: {why}"),
                    );
                }
            }
        }
    }
}

fn handle_cancel(state: &Arc<RouterState>, stream: &mut TcpStream, id: &str) {
    let owner = {
        let jobs = state.jobs.lock().expect("router jobs lock");
        match jobs.get(id) {
            Some(job) => job.backend,
            None => {
                write_error(stream, 404, &format!("unknown job {id:?}"));
                return;
            }
        }
    };
    let addr = state.cluster.backend(owner).addr.clone();
    match client_request(
        &addr,
        "POST",
        &format!("/jobs/{id}/cancel"),
        Some(""),
        state.backend_timeout(),
    ) {
        Ok(resp) => write_json(stream, resp.status, &resp.body),
        Err(e) => write_error(stream, 503, &format!("owner unreachable: {e}")),
    }
}

fn backend_label(addr: &str) -> String {
    format!("backend=\"{addr}\"")
}

fn handle_prometheus(state: &Arc<RouterState>, stream: &mut TcpStream) {
    let mut w = PromWriter::new();
    w.gauge_f64(
        "router_uptime_seconds",
        "Seconds since the router started.",
        state.started.elapsed().as_secs_f64(),
    );
    w.gauge(
        "cluster_backends",
        "Backends configured on the hash ring.",
        state.cluster.backends().len() as u64,
    );
    w.gauge(
        "cluster_backends_live",
        "Backends currently routable (circuit closed).",
        state.cluster.live_count() as u64,
    );
    w.counter(
        "cluster_jobs_routed",
        "Jobs accepted and placed on a backend.",
        state.jobs_routed.get(),
    );
    w.counter(
        "cluster_failovers_total",
        "Jobs re-routed to another backend after a failure.",
        state.failovers.get(),
    );
    w.counter(
        "cluster_hedged_reads_total",
        "Idempotent reads duplicated to a successor after the hedge threshold.",
        state.hedged_reads.get(),
    );
    w.counter(
        "cluster_hedge_wins_total",
        "Hedged reads won by the successor's response.",
        state.hedge_wins.get(),
    );

    let backends = state.cluster.backends();
    let up: Vec<(String, u64)> = backends
        .iter()
        .map(|b| (backend_label(&b.addr), u64::from(b.is_live())))
        .collect();
    w.gauge_family(
        "cluster_backend_up",
        "Whether each backend's circuit is closed (1) or open (0).",
        &up,
    );
    let failures: Vec<(String, u64)> = backends
        .iter()
        .map(|b| (backend_label(&b.addr), b.consecutive_failures() as u64))
        .collect();
    w.gauge_family(
        "cluster_backend_consecutive_failures",
        "Consecutive failures recorded against each backend since its last success.",
        &failures,
    );
    let probes: Vec<(String, u64)> = backends
        .iter()
        .map(|b| (backend_label(&b.addr), b.probes.get()))
        .collect();
    w.counter_family(
        "cluster_probes_total",
        "Health probes sent per backend.",
        &probes,
    );
    let probe_failures: Vec<(String, u64)> = backends
        .iter()
        .map(|b| (backend_label(&b.addr), b.probe_failures.get()))
        .collect();
    w.counter_family(
        "cluster_probe_failures_total",
        "Failed health probes per backend.",
        &probe_failures,
    );
    let trips: Vec<(String, u64)> = backends
        .iter()
        .map(|b| (backend_label(&b.addr), b.trips_total.get()))
        .collect();
    w.counter_family(
        "cluster_backend_trips_total",
        "Circuit-breaker trips per backend.",
        &trips,
    );
    w.counter(
        "trace_events_dropped",
        "Lifecycle events evicted from the bounded trace ring.",
        state.trace.dropped(),
    );
    w.counter(
        "trace_spans_dropped",
        "Completed spans evicted from the bounded span collector.",
        state.spans.dropped(),
    );
    w.histogram(
        "route_submit_ms",
        "Milliseconds to place a submission on a backend (failover included).",
        &state.submit_ms.snapshot(),
    );
    if let Some((trace_hex, ms)) = state
        .last_submit_exemplar
        .lock()
        .expect("exemplar lock")
        .clone()
    {
        w.exemplar("route_submit_ms", &trace_hex, ms);
    }
    w.histogram(
        "route_read_ms",
        "Milliseconds to answer a proxied status/result read (hedging included).",
        &state.read_ms.snapshot(),
    );
    if let Some((trace_hex, ms)) = state
        .last_read_exemplar
        .lock()
        .expect("exemplar lock")
        .clone()
    {
        w.exemplar("route_read_ms", &trace_hex, ms);
    }
    write_body(stream, 200, encode::CONTENT_TYPE, &[], &w.finish());
}

fn handle_stats(state: &Arc<RouterState>, stream: &mut TcpStream) {
    let backends = state
        .cluster
        .backends()
        .iter()
        .map(|b| BackendStatsBody {
            addr: b.addr.clone(),
            state: b.state().as_str().to_string(),
            consecutive_failures: b.consecutive_failures() as u64,
            trips: b.trips_total.get(),
        })
        .collect();
    let body = RouterStatsBody {
        uptime_s: state.started.elapsed().as_secs_f64(),
        jobs_routed: state.jobs_routed.get(),
        failovers: state.failovers.get(),
        hedged_reads: state.hedged_reads.get(),
        hedge_wins: state.hedge_wins.get(),
        backends_live: state.cluster.live_count() as u64,
        backends,
    };
    match serde_json::to_string_pretty(&body) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

fn handle_trace(state: &Arc<RouterState>, stream: &mut TcpStream) {
    let body = TraceBody {
        dropped: state.trace.dropped(),
        capacity: state.trace.capacity() as u64,
        events: state.trace.snapshot(),
    };
    match serde_json::to_string_pretty(&body) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

/// `GET /trace/:id` at the router: the router's own routing-side spans merged
/// with every backend's spans for the same trace — one tree across processes.
/// An unreachable backend degrades the tree (its spans are simply absent)
/// rather than failing the request.
fn handle_trace_id(state: &Arc<RouterState>, stream: &mut TcpStream, raw: &str) {
    let Some(trace) = TraceId::parse(raw) else {
        write_error(
            stream,
            400,
            &format!("invalid trace id {raw:?} (want 16 hex digits)"),
        );
        return;
    };
    let mut spans = state.spans.for_trace(trace);
    let path = format!("/trace/{}", trace.to_hex());
    for backend in state.cluster.backends() {
        let Ok(resp) = client_request(&backend.addr, "GET", &path, None, state.backend_timeout())
        else {
            continue;
        };
        if !resp.is_success() {
            continue;
        }
        let Ok(body) = serde_json::from_str::<Value>(&resp.body) else {
            continue;
        };
        if let Some(remote) = body.get_field("spans").and_then(Value::as_array) {
            spans.extend(remote.iter().filter_map(span_from_value));
        }
    }
    if spans.is_empty() {
        write_error(
            stream,
            404,
            &format!("no spans retained for trace {raw:?} on the router or any backend"),
        );
        return;
    }
    match serde_json::to_string_pretty(&trace_body(trace, spans)) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}

/// `GET /version`: build identity, for correlating multi-process journals.
fn handle_version(stream: &mut TcpStream) {
    match serde_json::to_string_pretty(&version_value()) {
        Ok(json) => write_json(stream, 200, &json),
        Err(_) => write_error(stream, 500, "serialisation failed"),
    }
}
