//! Deterministic retry with exponential backoff and seeded jitter.
//!
//! Transient failures — a panicked single-flight preparation, an injected or real
//! I/O error on the batch journal — should cost a bounded, *reproducible* number of
//! re-attempts, not an immediate job failure and not an unpredictable retry storm.
//! [`RetryPolicy`] fixes both: the attempt count and base/max delays bound the work,
//! and the jitter is a pure function of `(jitter_seed, job id, attempt)` via FNV-1a,
//! so two runs of the same faulted batch produce byte-identical retry schedules.
//! (Conventional random jitter exists to de-synchronise *independent* clients; a
//! deterministic per-job hash spreads retries just as well while keeping chaos tests
//! and CI smokes exactly replayable.)
//!
//! The policy is data, not behaviour: [`Engine::run_job_with_retry`] and the batch
//! journal writer consult it and own their own sleep/retry loops.
//!
//! [`Engine::run_job_with_retry`]: crate::engine::Engine::run_job_with_retry

use juliqaoa_problems::Fnv64;
use std::time::Duration;

/// A bounded, deterministic retry schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum *re*-attempts after the first try (0 disables retry entirely).
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) starts at `base_delay_ms << k`.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, jitter included.
    pub max_delay_ms: u64,
    /// Seed folded into the per-attempt jitter, so distinct deployments (or test
    /// scenarios) get distinct but individually reproducible schedules.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Retry is **off** by default (`max_retries = 0`): a failure surfaces
    /// immediately, exactly the pre-retry behaviour.  Front-ends opt in via
    /// `--retries`.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay_ms: 25,
            max_delay_ms: 2_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` re-attempts and the default delays.
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..Default::default()
        }
    }

    /// The backoff to sleep before retry `attempt` (0-based: the delay between the
    /// first failure and the first re-attempt is `delay(key, 0)`).
    ///
    /// Pure function: exponential base doubling capped at `max_delay_ms`, plus a
    /// jitter in `[0, delay/2]` derived from `(jitter_seed, key, attempt)` — no
    /// clock, no RNG state, so the full schedule for a job is known up front.
    pub fn delay(&self, key: &str, attempt: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay_ms);
        let mut h = Fnv64::new();
        h.write_u64(self.jitter_seed);
        h.write_str(key);
        h.write_u64(attempt as u64);
        let jitter = match exp / 2 {
            0 => 0,
            half => h.finish() % (half + 1),
        };
        Duration::from_millis((exp + jitter).min(self.max_delay_ms))
    }

    /// The full deterministic schedule for one key: the delays before each of the
    /// `max_retries` re-attempts.
    pub fn schedule(&self, key: &str) -> Vec<Duration> {
        (0..self.max_retries).map(|k| self.delay(key, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_retries() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 0);
        assert!(p.schedule("job").is_empty());
    }

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_retries: 6,
            base_delay_ms: 25,
            max_delay_ms: 500,
            jitter_seed: 7,
        };
        let a = p.schedule("job-1");
        let b = p.schedule("job-1");
        assert_eq!(a, b, "same key must replay the identical schedule");
        assert_eq!(a.len(), 6);
        for (k, d) in a.iter().enumerate() {
            let exp = (25u64 << k).min(500);
            assert!(d.as_millis() as u64 >= exp, "retry {k}: below base backoff");
            assert!(d.as_millis() as u64 <= 500, "retry {k}: above max delay");
        }
        // Backoff grows until the cap.
        assert!(a[1] >= a[0]);
    }

    #[test]
    fn jitter_separates_keys_and_seeds() {
        let p = RetryPolicy {
            max_retries: 4,
            base_delay_ms: 100,
            max_delay_ms: 60_000,
            jitter_seed: 1,
        };
        assert_ne!(
            p.schedule("job-a"),
            p.schedule("job-b"),
            "distinct jobs must not retry in lockstep"
        );
        let other_seed = RetryPolicy {
            jitter_seed: 2,
            ..p
        };
        assert_ne!(p.schedule("job-a"), other_seed.schedule("job-a"));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_delay_ms: u64::MAX / 2,
            max_delay_ms: 1_000,
            jitter_seed: 0,
        };
        assert!(p.delay("x", 63).as_millis() as u64 <= 1_000);
        assert!(p.delay("x", 64).as_millis() as u64 <= 1_000);
    }

    #[test]
    fn two_routers_with_the_same_jitter_seed_replay_identical_failover_schedules() {
        // Regression guard for cluster failover determinism: the router paces
        // failover re-attempts with `delay(job id, attempt)`, so two router
        // processes configured alike (same seed, same delays) MUST sleep the
        // exact same schedule for the same job — that is what makes a chaos
        // run's failover timeline replayable.
        let router_a = RetryPolicy {
            max_retries: 3,
            base_delay_ms: 25,
            max_delay_ms: 2_000,
            jitter_seed: 42,
        };
        let router_b = router_a; // an independently-constructed twin
        for job in ["job-0", "job-7", "instance-affine-key"] {
            assert_eq!(router_a.schedule(job), router_b.schedule(job));
        }
        // And a differently-seeded router diverges (schedules are seed-scoped).
        let other = RetryPolicy {
            jitter_seed: 43,
            ..router_a
        };
        assert_ne!(router_a.schedule("job-0"), other.schedule("job-0"));
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// `delay` is monotonically nondecreasing in the attempt number up
            /// to the max-delay clamp: delay(k) ≤ 1.5·exp_k ≤ exp_{k+1} ≤
            /// delay(k+1) before the clamp, and both sides pin to max after it.
            #[test]
            fn delay_is_monotone_nondecreasing_up_to_the_clamp(
                seed in 0u64..u64::MAX,
                base in 1u64..10_000,
                max in 1u64..100_000,
                key_tag in 0u64..1_000,
            ) {
                let p = RetryPolicy {
                    max_retries: 16,
                    base_delay_ms: base,
                    max_delay_ms: max,
                    jitter_seed: seed,
                };
                let key = format!("job-{key_tag}");
                let mut prev = 0u64;
                for attempt in 0..16u32 {
                    let d = p.delay(&key, attempt).as_millis() as u64;
                    prop_assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
                    prop_assert!(d <= max, "attempt {attempt}: {d} above clamp {max}");
                    prev = d;
                }
            }

            /// Jitter keeps each pre-clamp delay within `[exp, 2·exp)` of the
            /// exponential base for that attempt (the concrete bound is
            /// `[exp, 1.5·exp]`): backoff never undershoots the schedule and
            /// never doubles past it.
            #[test]
            fn jitter_stays_within_base_and_twice_base(
                seed in 0u64..u64::MAX,
                base in 1u64..10_000,
                attempt in 0u32..12,
                key_tag in 0u64..1_000,
            ) {
                let p = RetryPolicy {
                    max_retries: 16,
                    base_delay_ms: base,
                    // No clamp interference: the cap sits far above 2^12·base.
                    max_delay_ms: u64::MAX,
                    jitter_seed: seed,
                };
                let exp = base << attempt;
                let d = p.delay(&format!("job-{key_tag}"), attempt).as_millis() as u64;
                prop_assert!(d >= exp, "delay {d} under the exponential base {exp}");
                prop_assert!(d < exp * 2, "delay {d} reached twice the base {exp}");
            }

            /// The full schedule is a pure function of (policy, key): no clock,
            /// no RNG state, so replays are byte-identical.
            #[test]
            fn schedules_are_pure_functions_of_policy_and_key(
                seed in 0u64..u64::MAX,
                base in 1u64..10_000,
                max in 1u64..100_000,
                retries in 0u32..12,
                key_tag in 0u64..1_000,
            ) {
                let p = RetryPolicy {
                    max_retries: retries,
                    base_delay_ms: base,
                    max_delay_ms: max,
                    jitter_seed: seed,
                };
                let key = format!("job-{key_tag}");
                prop_assert_eq!(p.schedule(&key), p.schedule(&key));
            }
        }
    }
}
