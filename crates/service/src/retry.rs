//! Deterministic retry with exponential backoff and seeded jitter.
//!
//! Transient failures — a panicked single-flight preparation, an injected or real
//! I/O error on the batch journal — should cost a bounded, *reproducible* number of
//! re-attempts, not an immediate job failure and not an unpredictable retry storm.
//! [`RetryPolicy`] fixes both: the attempt count and base/max delays bound the work,
//! and the jitter is a pure function of `(jitter_seed, job id, attempt)` via FNV-1a,
//! so two runs of the same faulted batch produce byte-identical retry schedules.
//! (Conventional random jitter exists to de-synchronise *independent* clients; a
//! deterministic per-job hash spreads retries just as well while keeping chaos tests
//! and CI smokes exactly replayable.)
//!
//! The policy is data, not behaviour: [`Engine::run_job_with_retry`] and the batch
//! journal writer consult it and own their own sleep/retry loops.
//!
//! [`Engine::run_job_with_retry`]: crate::engine::Engine::run_job_with_retry

use juliqaoa_problems::Fnv64;
use std::time::Duration;

/// A bounded, deterministic retry schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum *re*-attempts after the first try (0 disables retry entirely).
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) starts at `base_delay_ms << k`.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay, jitter included.
    pub max_delay_ms: u64,
    /// Seed folded into the per-attempt jitter, so distinct deployments (or test
    /// scenarios) get distinct but individually reproducible schedules.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Retry is **off** by default (`max_retries = 0`): a failure surfaces
    /// immediately, exactly the pre-retry behaviour.  Front-ends opt in via
    /// `--retries`.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay_ms: 25,
            max_delay_ms: 2_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` re-attempts and the default delays.
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..Default::default()
        }
    }

    /// The backoff to sleep before retry `attempt` (0-based: the delay between the
    /// first failure and the first re-attempt is `delay(key, 0)`).
    ///
    /// Pure function: exponential base doubling capped at `max_delay_ms`, plus a
    /// jitter in `[0, delay/2]` derived from `(jitter_seed, key, attempt)` — no
    /// clock, no RNG state, so the full schedule for a job is known up front.
    pub fn delay(&self, key: &str, attempt: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay_ms);
        let mut h = Fnv64::new();
        h.write_u64(self.jitter_seed);
        h.write_str(key);
        h.write_u64(attempt as u64);
        let jitter = match exp / 2 {
            0 => 0,
            half => h.finish() % (half + 1),
        };
        Duration::from_millis((exp + jitter).min(self.max_delay_ms))
    }

    /// The full deterministic schedule for one key: the delays before each of the
    /// `max_retries` re-attempts.
    pub fn schedule(&self, key: &str) -> Vec<Duration> {
        (0..self.max_retries).map(|k| self.delay(key, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_never_retries() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 0);
        assert!(p.schedule("job").is_empty());
    }

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_retries: 6,
            base_delay_ms: 25,
            max_delay_ms: 500,
            jitter_seed: 7,
        };
        let a = p.schedule("job-1");
        let b = p.schedule("job-1");
        assert_eq!(a, b, "same key must replay the identical schedule");
        assert_eq!(a.len(), 6);
        for (k, d) in a.iter().enumerate() {
            let exp = (25u64 << k).min(500);
            assert!(d.as_millis() as u64 >= exp, "retry {k}: below base backoff");
            assert!(d.as_millis() as u64 <= 500, "retry {k}: above max delay");
        }
        // Backoff grows until the cap.
        assert!(a[1] >= a[0]);
    }

    #[test]
    fn jitter_separates_keys_and_seeds() {
        let p = RetryPolicy {
            max_retries: 4,
            base_delay_ms: 100,
            max_delay_ms: 60_000,
            jitter_seed: 1,
        };
        assert_ne!(
            p.schedule("job-a"),
            p.schedule("job-b"),
            "distinct jobs must not retry in lockstep"
        );
        let other_seed = RetryPolicy {
            jitter_seed: 2,
            ..p
        };
        assert_ne!(p.schedule("job-a"), other_seed.schedule("job-a"));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_delay_ms: u64::MAX / 2,
            max_delay_ms: 1_000,
            jitter_seed: 0,
        };
        assert!(p.delay("x", 63).as_millis() as u64 <= 1_000);
        assert!(p.delay("x", 64).as_millis() as u64 <= 1_000);
    }
}
