//! The shared job-execution engine behind both batch and serve front-ends.
//!
//! The engine owns the *instance cache*: a thread-safe LRU from [`InstanceId`] to the
//! expensive pre-computation a job needs — the objective-value vector over the feasible
//! set and its [`PhaseClasses`] compression.  Following the knowledge-compilation view
//! of binary polynomial optimization (compile the objective once, evaluate many times),
//! jobs over the same instance compile once and share: the second MaxCut job on graph
//! `G` pays a `memcpy` instead of a `2ⁿ`-state sweep plus a compression scan.
//!
//! Execution itself is stateless per job: build the cost function from the spec, fetch
//! or compute the prepared objective, assemble a [`Simulator`] via
//! [`Simulator::from_parts`], and drive the requested optimizer with the job's own
//! seeded RNG — so a job's result is a pure function of its spec, independent of
//! scheduling, thread count and cache state.

use crate::lru::LruCache;
use crate::spec::{BuiltProblem, JobResult, JobSpec, OptimizerSpec};
use juliqaoa_combinatorics::DickeSubspace;
use juliqaoa_core::{QaoaError, Simulator};
use juliqaoa_optim::{
    basinhopping_with_control, grid_search_with_control, random_restart_with_control,
    BasinHoppingOptions, OptimizeResult, QaoaObjective, RandomRestartOptions, RunControl,
};
use juliqaoa_problems::{precompute_dicke, precompute_full, InstanceId, PhaseClasses};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Errors surfaced by job execution.
#[derive(Debug)]
pub enum ServiceError {
    /// The spec is invalid (unknown kind, incompatible mixer, out-of-range size…).
    Spec(String),
    /// The underlying simulator rejected the assembled pieces.
    Simulation(QaoaError),
    /// Reading or writing job/result files failed.
    Io(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Spec(msg) => write!(f, "invalid job spec: {msg}"),
            ServiceError::Simulation(e) => write!(f, "simulation error: {e}"),
            ServiceError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QaoaError> for ServiceError {
    fn from(e: QaoaError) -> Self {
        ServiceError::Simulation(e)
    }
}

/// The cached pre-computation for one problem instance.
pub struct PreparedObjective {
    /// Objective values over the feasible set, in simulation order.
    pub values: Vec<f64>,
    /// Phase-class compression of `values` (`None` for incompressible objectives).
    pub classes: Option<PhaseClasses>,
    /// Largest objective value.
    pub max: f64,
    /// Smallest objective value.
    pub min: f64,
}

impl PreparedObjective {
    fn compute(problem: &BuiltProblem) -> Self {
        let values = match problem.subspace_k {
            Some(k) => {
                let subspace = DickeSubspace::new(problem.n, k);
                precompute_dicke(problem.cost.as_ref(), &subspace)
            }
            None => precompute_full(problem.cost.as_ref()),
        };
        let classes = PhaseClasses::build(&values);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        PreparedObjective {
            values,
            classes,
            max,
            min,
        }
    }

    /// Approximate heap footprint, the weight charged against the cache's byte
    /// budget: the value vector plus the compression's index/value tables.
    pub fn approx_bytes(&self) -> u64 {
        let classes_bytes = self
            .classes
            .as_ref()
            .map(|c| 2 * c.len() + 8 * c.num_classes())
            .unwrap_or(0);
        (8 * self.values.len() + classes_bytes) as u64
    }
}

/// Monotonic engine counters, readable while jobs run.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize, PartialEq)]
pub struct EngineStats {
    /// Jobs that ran to a result (including cancelled-partway jobs).
    pub jobs_executed: u64,
    /// Jobs that failed with an error.
    pub jobs_failed: u64,
    /// Instance-cache hits.
    pub cache_hits: u64,
    /// Instance-cache misses (pre-computations performed).
    pub cache_misses: u64,
}

/// The shared execution engine: instance cache + counters.
pub struct Engine {
    cache: Mutex<LruCache<InstanceId, Arc<PreparedObjective>>>,
    jobs_executed: AtomicU64,
    jobs_failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Default maximum number of cached instances.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Byte budget for the instance cache.  Entry count alone is the wrong bound: a
/// prepared `n = 24` objective is ~170 MiB, so [`DEFAULT_CACHE_CAPACITY`] of them
/// would pin ~11 GiB.  The cache evicts by least-recent use until both bounds hold;
/// typical `n ≈ 16` entries (~0.6 MiB) never touch this limit.
pub const DEFAULT_CACHE_BYTES: u64 = 2 << 30;

impl Engine {
    /// An engine whose cache holds at most `cache_capacity` prepared instances,
    /// bounded to [`DEFAULT_CACHE_BYTES`] total.
    pub fn new(cache_capacity: usize) -> Self {
        Engine {
            cache: Mutex::new(LruCache::with_weight_budget(
                cache_capacity.max(1),
                Some(DEFAULT_CACHE_BYTES),
            )),
            jobs_executed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Fetches (or computes and caches) the pre-computation for a built problem.
    /// Returns the shared data plus whether it was a cache hit.
    pub fn prepare(&self, problem: &BuiltProblem) -> (Arc<PreparedObjective>, bool) {
        if let Some(found) = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .get(&problem.instance_id)
        {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (found.clone(), true);
        }
        // Compute outside the lock so a slow pre-computation never serialises the
        // whole worker pool.  Two workers racing on the same instance both compute;
        // the later insert simply replaces the identical value — wasted work bounded
        // by one pre-computation, and correctness is unaffected because prepared data
        // is a pure function of the instance.
        let prepared = Arc::new(PreparedObjective::compute(problem));
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let weight = prepared.approx_bytes();
        self.cache
            .lock()
            .expect("cache lock poisoned")
            .insert_weighted(problem.instance_id, prepared.clone(), weight);
        (prepared, false)
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of instances currently cached.
    pub fn cached_instances(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }

    /// Executes one job to completion (or cancellation), returning its result.
    ///
    /// Deterministic: the result depends only on the spec (notably its seed), never on
    /// cache state, thread count or scheduling.
    pub fn run_job(&self, spec: &JobSpec, control: &RunControl) -> Result<JobResult, ServiceError> {
        let started = Instant::now();
        let out = self.run_job_inner(spec, control, started);
        match &out {
            Ok(_) => self.jobs_executed.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    fn run_job_inner(
        &self,
        spec: &JobSpec,
        control: &RunControl,
        started: Instant,
    ) -> Result<JobResult, ServiceError> {
        if spec.p == 0 {
            return Err(ServiceError::Spec("p must be at least 1".into()));
        }
        let problem = spec.problem.build().map_err(ServiceError::Spec)?;
        let (prepared, cache_hit) = self.prepare(&problem);
        let mixer = spec.mixer.build(&problem).map_err(ServiceError::Spec)?;
        let sim = Simulator::from_parts(
            prepared.values.clone(),
            prepared.classes.clone(),
            vec![mixer],
        )?;

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let dim = 2 * spec.p;
        let tau = 2.0 * std::f64::consts::PI;
        let res: OptimizeResult = match spec.optimizer {
            OptimizerSpec::RandomRestart { restarts } => {
                if restarts == 0 {
                    return Err(ServiceError::Spec("restarts must be at least 1".into()));
                }
                random_restart_with_control(
                    || QaoaObjective::new(&sim),
                    dim,
                    &RandomRestartOptions {
                        restarts,
                        ..Default::default()
                    },
                    &mut rng,
                    control,
                )
            }
            OptimizerSpec::BasinHopping {
                n_hops,
                step_size,
                temperature,
            } => {
                let mut objective = QaoaObjective::new(&sim);
                let x0: Vec<f64> = (0..dim)
                    .map(|_| rand::Rng::gen_range(&mut rng, 0.0..tau))
                    .collect();
                basinhopping_with_control(
                    &mut objective,
                    &x0,
                    &BasinHoppingOptions {
                        n_hops,
                        step_size,
                        temperature,
                        ..Default::default()
                    },
                    &mut rng,
                    control,
                )
            }
            OptimizerSpec::GridSearch { resolution } => {
                if resolution == 0 {
                    return Err(ServiceError::Spec(
                        "grid resolution must be positive".into(),
                    ));
                }
                let points = (resolution as u128).saturating_pow(dim as u32);
                if points > 100_000_000 {
                    return Err(ServiceError::Spec(format!(
                        "grid of {points} points exceeds the 10^8 limit"
                    )));
                }
                grid_search_with_control(
                    || QaoaObjective::new(&sim),
                    dim,
                    0.0,
                    tau,
                    resolution,
                    control,
                )
            }
        };

        let expectation = -res.value;
        let quality = if prepared.max > prepared.min {
            (expectation - prepared.min) / (prepared.max - prepared.min)
        } else {
            1.0
        };
        // "cancelled" means *someone asked to stop*, never that the optimizer merely
        // hit an iteration cap — BFGS can report `converged: false` on a hard
        // landscape, and that is still a finished, resumable-as-done job.
        let status = if control.is_cancelled() {
            "cancelled"
        } else {
            "done"
        };
        Ok(JobResult {
            id: spec.id.clone(),
            status: status.to_string(),
            instance: problem.instance_id,
            problem: problem.kind.to_string(),
            mixer: spec.mixer.kind().to_string(),
            p: spec.p,
            seed: spec.seed,
            dim: sim.dim(),
            expectation,
            angles: res.x,
            objective_max: prepared.max,
            objective_min: prepared.min,
            quality,
            function_evals: res.function_evals,
            converged: res.converged,
            cache_hit,
            elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
        })
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MixerSpec, ProblemSpec};

    fn quick_job(id: &str, instance: u64, seed: u64) -> JobSpec {
        JobSpec {
            id: id.into(),
            problem: ProblemSpec::MaxCutGnp { n: 7, instance },
            mixer: MixerSpec::TransverseField,
            p: 1,
            optimizer: OptimizerSpec::BasinHopping {
                n_hops: 2,
                step_size: 0.5,
                temperature: 1.0,
            },
            seed,
        }
    }

    #[test]
    fn same_seed_jobs_are_bit_identical_and_share_the_cache() {
        let engine = Engine::new(8);
        let a = engine
            .run_job(&quick_job("a", 0, 42), &RunControl::new())
            .unwrap();
        let b = engine
            .run_job(&quick_job("b", 0, 42), &RunControl::new())
            .unwrap();
        assert_eq!(a.expectation.to_bits(), b.expectation.to_bits());
        assert_eq!(a.angles, b.angles);
        assert_eq!(a.instance, b.instance);
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.jobs_executed, 2);
    }

    #[test]
    fn cache_is_keyed_by_instance_not_by_job() {
        let engine = Engine::new(8);
        let _ = engine
            .run_job(&quick_job("a", 0, 1), &RunControl::new())
            .unwrap();
        let other = engine
            .run_job(&quick_job("b", 1, 1), &RunControl::new())
            .unwrap();
        assert!(!other.cache_hit);
        assert_eq!(engine.cached_instances(), 2);
    }

    #[test]
    fn invalid_specs_fail_cleanly_and_count_as_failures() {
        let engine = Engine::new(8);
        let mut bad = quick_job("bad", 0, 1);
        bad.p = 0;
        assert!(matches!(
            engine.run_job(&bad, &RunControl::new()),
            Err(ServiceError::Spec(_))
        ));
        let mut bad_mixer = quick_job("bad2", 0, 1);
        bad_mixer.mixer = MixerSpec::Clique;
        assert!(engine.run_job(&bad_mixer, &RunControl::new()).is_err());
        assert_eq!(engine.stats().jobs_failed, 2);
    }

    #[test]
    fn grid_size_limit_is_enforced() {
        let engine = Engine::new(8);
        let mut huge = quick_job("huge", 0, 1);
        huge.p = 4;
        huge.optimizer = OptimizerSpec::GridSearch { resolution: 50 };
        let err = engine.run_job(&huge, &RunControl::new()).unwrap_err();
        assert!(err.to_string().contains("10^8"));
    }

    #[test]
    fn quality_lies_in_unit_interval() {
        let engine = Engine::default();
        let res = engine
            .run_job(&quick_job("q", 2, 5), &RunControl::new())
            .unwrap();
        assert!((0.0..=1.0).contains(&res.quality));
        assert!(res.expectation <= res.objective_max + 1e-9);
        assert_eq!(res.status, "done");
        assert!(res.converged);
    }
}
