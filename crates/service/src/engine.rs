//! The shared job-execution engine behind both batch and serve front-ends.
//!
//! The engine owns the *instance cache*: a thread-safe LRU from [`InstanceId`] to the
//! expensive pre-computation a job needs — the objective-value vector over the feasible
//! set and its [`PhaseClasses`] compression.  Following the knowledge-compilation view
//! of binary polynomial optimization (compile the objective once, evaluate many times),
//! jobs over the same instance compile once and share: the second MaxCut job on graph
//! `G` pays a `memcpy` instead of a `2ⁿ`-state sweep plus a compression scan.
//!
//! Execution itself is stateless per job: build the cost function from the spec, fetch
//! or compute the prepared objective, assemble a [`Simulator`] via
//! [`Simulator::from_parts`], and drive the requested optimizer with the job's own
//! seeded RNG — so a job's result is a pure function of its spec, independent of
//! scheduling, thread count and cache state.
//!
//! Two caches sit under that statelessness, both transparent to results:
//!
//! 1. the **instance cache** above (objective vector + compression, keyed by
//!    [`InstanceId`]);
//! 2. the **simulator slot cache**: per `(instance, mixer)` pair, a shared
//!    [`Simulator`] (so repeat jobs skip re-cloning the `2ⁿ` objective into a fresh
//!    simulator) plus a bounded pool of parked [`PrefixCache`]s whose per-round
//!    checkpoint statevectors survive from one job to the next.  Prefix reuse is
//!    bit-identical by construction, so the determinism guarantee is untouched.
//!
//! # Concurrency scaling
//!
//! The engine is built so job throughput scales with the worker count instead of
//! serialising on shared state:
//!
//! * both caches are [`ShardedLru`]s — lookups on different keys never share a lock;
//! * instance preparation is **single-flight**: concurrent misses on one
//!   [`InstanceId`] coalesce, one worker builds the `2ⁿ` pre-computation while the
//!   rest block on the in-flight entry and share the result (counted in
//!   `prep_coalesced`), so a thundering herd on a cold hot instance pays one build,
//!   not one per worker;
//! * each simulator slot parks a small **pool** of prefix caches, not a single
//!   `Option` — concurrent jobs on the same `(instance, mixer)` each check out a
//!   warm set of checkpoints, and returns merge *deepest-wins*
//!   ([`PrefixCache::merge_deeper`]) instead of keeping whichever cache came back
//!   first.

use crate::lru::ShardedLru;
use crate::spec::{
    BuiltProblem, EstimatorSpec, JobResult, JobSpec, JobTimings, MixerSpec, OptimizerSpec,
    SampleReport, SamplingSpec, RATIO_HISTOGRAM_BINS,
};
use juliqaoa_combinatorics::DickeSubspace;
use juliqaoa_core::{Angles, PrefixCache, QaoaError, Simulator};
use juliqaoa_optim::{
    basinhopping_with_control, grid_search_ordered, qaoa_axis_order, random_restart_with_control,
    BasinHoppingOptions, Objective, OptimizeResult, PrefixCacheHome, QaoaObjective,
    RandomRestartOptions, RunControl, SampledObjective,
};
use juliqaoa_problems::{precompute_dicke, precompute_full, InstanceId, PhaseClasses};
use juliqaoa_sampling::{estimator, IndexMap};
use juliqaoa_telemetry::{Counter, Histogram, SpanCollector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Errors surfaced by job execution.
#[derive(Debug)]
pub enum ServiceError {
    /// The spec is invalid (unknown kind, incompatible mixer, out-of-range size…).
    Spec(String),
    /// The underlying simulator rejected the assembled pieces.
    Simulation(QaoaError),
    /// Reading or writing job/result files failed.
    Io(String),
    /// The job panicked mid-run and was converted to a structured failure by
    /// [`Engine::run_job_isolated`].
    Panicked(String),
    /// The job's deadline expired before it produced even a partial result.  (A
    /// deadline that expires after some progress returns a `"timed_out"`
    /// [`JobResult`] carrying the best-so-far angles instead of this error.)
    TimedOut(String),
}

impl ServiceError {
    /// Whether a retry could plausibly succeed.  Panics (poisoned single-flight
    /// builds, chaos injection) and I/O errors are transient; spec and simulation
    /// errors are deterministic properties of the job, and a timeout would only
    /// burn its budget again.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServiceError::Panicked(_) | ServiceError::Io(_))
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Spec(msg) => write!(f, "invalid job spec: {msg}"),
            ServiceError::Simulation(e) => write!(f, "simulation error: {e}"),
            ServiceError::Io(msg) => write!(f, "I/O error: {msg}"),
            ServiceError::Panicked(msg) => write!(f, "job panicked mid-run: {msg}"),
            ServiceError::TimedOut(msg) => write!(f, "job timed out: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QaoaError> for ServiceError {
    fn from(e: QaoaError) -> Self {
        ServiceError::Simulation(e)
    }
}

/// The cached pre-computation for one problem instance.
pub struct PreparedObjective {
    /// Objective values over the feasible set, in simulation order.
    pub values: Vec<f64>,
    /// Phase-class compression of `values` (`None` for incompressible objectives).
    pub classes: Option<PhaseClasses>,
    /// Largest objective value.
    pub max: f64,
    /// Smallest objective value.
    pub min: f64,
    /// Whether every objective value is finite.  Degenerate instances (overflowing
    /// explicit weights) can realise `±∞` or NaN values; jobs on such instances are
    /// rejected with a structured error before any estimator or optimizer sees them.
    pub finite: bool,
}

impl PreparedObjective {
    fn compute(problem: &BuiltProblem) -> Self {
        let values = match problem.subspace_k {
            Some(k) => {
                let subspace = DickeSubspace::new(problem.n, k);
                precompute_dicke(problem.cost.as_ref(), &subspace)
            }
            None => precompute_full(problem.cost.as_ref()),
        };
        let classes = PhaseClasses::build(&values);
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        let mut finite = true;
        // One pass: `f64::max`/`min` silently skip NaN, so finiteness needs its own
        // check — a finite-looking (max, min) pair can hide NaN entries.
        for &v in &values {
            finite &= v.is_finite();
            max = max.max(v);
            min = min.min(v);
        }
        PreparedObjective {
            values,
            classes,
            max,
            min,
            finite,
        }
    }

    /// Approximate heap footprint, the weight charged against the cache's byte
    /// budget: the value vector plus the compression's index/value tables.
    pub fn approx_bytes(&self) -> u64 {
        let classes_bytes = self
            .classes
            .as_ref()
            .map(|c| 2 * c.len() + 8 * c.num_classes())
            .unwrap_or(0);
        (8 * self.values.len() + classes_bytes) as u64
    }
}

/// Monotonic engine counters, readable while jobs run.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize, PartialEq)]
pub struct EngineStats {
    /// Jobs that ran to a result (including cancelled-partway jobs).
    pub jobs_executed: u64,
    /// Jobs that failed with an error.
    pub jobs_failed: u64,
    /// Instance-cache hits.
    pub cache_hits: u64,
    /// Instance-cache misses (pre-computations performed).
    pub cache_misses: u64,
    /// Prepared-objective builds actually performed.  With single-flight coalescing
    /// this equals `cache_misses`: concurrent misses on one instance produce one
    /// build, and the waiters count as hits.
    pub instance_builds: u64,
    /// Preparations that blocked on another worker's in-flight build instead of
    /// duplicating it (the coalesced share of concurrent misses).
    pub prep_coalesced: u64,
    /// Jobs that panicked mid-run and were converted to structured failures by the
    /// worker pool (a subset of `jobs_failed`).
    pub jobs_panicked: u64,
    /// Jobs whose deadline expired mid-run.  Jobs that got far enough to report
    /// partial best-so-far angles count under `jobs_executed` too; jobs that timed
    /// out before any evaluation count under `jobs_failed`.
    pub jobs_timed_out: u64,
    /// Transient-failure re-attempts performed under a [`crate::retry::RetryPolicy`]
    /// (one increment per re-run, however it then fared).
    pub jobs_retried: u64,
    /// Evaluations that resumed from a prefix checkpoint instead of round 0.
    pub prefix_hits: u64,
    /// Evaluations that ran cold (no usable checkpoint).
    pub prefix_misses: u64,
    /// Full QAOA rounds skipped thanks to prefix reuse.
    pub prefix_rounds_saved: u64,
    /// `"sample"` jobs executed (subset of `jobs_executed`).
    pub sample_jobs: u64,
    /// Total measurement shots drawn across all sample jobs (every optimizer
    /// evaluation plus each job's final readout).
    pub shots_drawn: u64,
}

/// Per-stage latency histograms the engine records for every job it runs.
///
/// Observation-only: recording is relaxed atomics on fixed buckets (see
/// [`juliqaoa_telemetry::Histogram`]), so results stay bit-identical with
/// telemetry on or off.  The serving tier observes `queue_wait_ms` and
/// `journal_write_ms` (the engine never sees a queue or a journal); the rest are
/// recorded by [`Engine::run_job`] itself.
#[derive(Debug)]
pub struct EngineTelemetry {
    /// Time jobs spent queued before a worker picked them up (serving tier only).
    pub queue_wait_ms: Histogram,
    /// Instance preparation: problem realisation, precompute, simulator build.
    pub prep_ms: Histogram,
    /// The optimizer's angle search.
    pub optimize_ms: Histogram,
    /// Shot-based readout at the best angles (sample jobs only).
    pub sampling_readout_ms: Histogram,
    /// Appending one result to the crash-safe journal (serving tier only).
    pub journal_write_ms: Histogram,
    /// End-to-end job execution (queue wait excluded).
    pub total_ms: Histogram,
}

impl EngineTelemetry {
    fn new() -> Self {
        EngineTelemetry {
            queue_wait_ms: Histogram::latency_ms(),
            prep_ms: Histogram::latency_ms(),
            optimize_ms: Histogram::latency_ms(),
            sampling_readout_ms: Histogram::latency_ms(),
            journal_write_ms: Histogram::latency_ms(),
            total_ms: Histogram::latency_ms(),
        }
    }
}

/// A shared simulator plus the parked checkpoint pool for one `(instance, mixer)`
/// pair.  The pool holds up to [`PARKED_POOL_CACHES`] prefix caches so *each* of a
/// small worker pool's concurrent jobs on the slot can start from warm checkpoints —
/// a single parked `Option` hands warmth to one job and starts the rest cold.
struct SimSlot {
    sim: Arc<Simulator>,
    pool: Vec<PrefixCache>,
}

/// The simulator-slot cache: shared, individually locked slots per `(instance, mixer)`.
type SimSlotCache = ShardedLru<(InstanceId, MixerSpec), Arc<Mutex<SimSlot>>>;

/// Maximum prefix caches parked per simulator slot.  Sized for a small worker pool
/// hammering one hot instance: each concurrent job checks a warm cache out and parks
/// it back.  More would pin statevector memory for warmth nobody collects.
const PARKED_POOL_CACHES: usize = 4;

/// Statevector-sized buffers one parked prefix cache may pin.  [`Engine::run_job`]
/// refuses to park a cache that has grown beyond this allowance (deep-`p` sweeps
/// simply restart cold next job), and the slot's LRU weight is re-priced to the
/// *actually parked* bytes at every checkout and park, so the byte budget on the
/// slot LRU tracks real resident memory instead of a worst-case reservation.
const PARKED_PREFIX_STATES: usize = 8;

/// Bytes of one statevector element (`Complex64`).
const STATE_ELEM_BYTES: usize = 16;

/// Lock shards for the instance and simulator-slot caches.  Sized comfortably above
/// any worker count this service runs with, so concurrent lookups on different keys
/// effectively never contend.
const CACHE_SHARDS: usize = 8;

/// Single-flight coordination for one in-progress instance preparation: the builder
/// publishes exactly once, waiters block on the condvar.
struct PrepFlight {
    /// `None` while building; `Some(Some(_))` once published; `Some(None)` when the
    /// builder panicked (waiters then retry, one becoming the new builder).
    result: Mutex<Option<Option<Arc<PreparedObjective>>>>,
    done: Condvar,
}

impl PrepFlight {
    fn new() -> Self {
        PrepFlight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, out: Option<Arc<PreparedObjective>>) {
        *self.result.lock().expect("prep flight poisoned") = Some(out);
        self.done.notify_all();
    }

    fn wait(&self) -> Option<Arc<PreparedObjective>> {
        let mut result = self.result.lock().expect("prep flight poisoned");
        loop {
            match &*result {
                Some(out) => return out.clone(),
                None => result = self.done.wait(result).expect("prep flight poisoned"),
            }
        }
    }
}

/// Renders a caught panic payload as text (the common `&str`/`String` payloads;
/// anything else gets a placeholder) for [`Engine::run_job_isolated`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// In-process override for the panic chaos hook (see [`set_test_panic_job_id`]).
static TEST_PANIC_JOB_ID: Mutex<Option<String>> = Mutex::new(None);

/// Test-only: makes the next job whose id equals `id` panic mid-run, exercising
/// worker-pool panic isolation.  Tests must use this setter rather than mutating
/// the `JULIQAOA_TEST_PANIC_JOB_ID` environment variable — `std::env::set_var`
/// racing another thread's `getenv` is undefined behaviour on glibc.  The
/// environment variable remains the hook for *spawned* processes (CI smoke),
/// where it is set before the process starts and never mutated at runtime.
#[doc(hidden)]
pub fn set_test_panic_job_id(id: Option<&str>) {
    *TEST_PANIC_JOB_ID.lock().expect("panic hook lock poisoned") = id.map(str::to_string);
}

fn test_panic_job_id_matches(job_id: &str) -> bool {
    if let Some(target) = TEST_PANIC_JOB_ID
        .lock()
        .expect("panic hook lock poisoned")
        .as_deref()
    {
        return target == job_id;
    }
    std::env::var("JULIQAOA_TEST_PANIC_JOB_ID").is_ok_and(|target| target == job_id)
}

/// The shared execution engine: instance cache, simulator slots and counters.
pub struct Engine {
    cache: ShardedLru<InstanceId, Arc<PreparedObjective>>,
    /// In-flight preparations, for single-flight coalescing.  A plain mutex is fine
    /// here: it is touched only on instance-cache misses, and the expensive build
    /// happens outside it.
    inflight: Mutex<HashMap<InstanceId, Arc<PrepFlight>>>,
    sims: SimSlotCache,
    jobs_executed: Counter,
    jobs_failed: Counter,
    jobs_panicked: Counter,
    jobs_timed_out: Counter,
    jobs_retried: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    instance_builds: Counter,
    prep_coalesced: Counter,
    prefix_hits: Counter,
    prefix_misses: Counter,
    prefix_rounds_saved: Counter,
    sample_jobs: Counter,
    shots_drawn: Counter,
    telemetry: EngineTelemetry,
    /// Optional span collector: when the serving or batch tier installs one, the
    /// engine turns each job's timing stages (prep / optimize / sampling
    /// readout) into real child spans under the job's deterministic trace id.
    /// Observation-only — read once per job, never inside kernels.
    spans: Mutex<Option<Arc<SpanCollector>>>,
}

/// The per-worker objective a job's optimizer drives: exact expectation for plain
/// jobs, a shot estimator for `"sample"` jobs.  One enum so the three optimizer
/// drivers below stay single-path.
enum JobObjective<'a> {
    Exact(QaoaObjective<'a>),
    Sampled(SampledObjective<'a>),
}

impl JobObjective<'_> {
    fn build<'a>(
        sim: &'a Simulator,
        home: &'a PrefixCacheHome,
        sampling: Option<&SamplingSpec>,
        shot_tally: &'a AtomicU64,
    ) -> JobObjective<'a> {
        match sampling {
            None => JobObjective::Exact(QaoaObjective::new(sim).with_cache_home(home)),
            // Sampled objectives share the same parked prefix cache as exact jobs
            // (the forward evolution is identical work) and tally every draw —
            // including the ones hidden inside FD gradient probes — so the engine's
            // shots_drawn counter is exact.  Shot streams are derived per
            // evaluation point, so results stay schedule-independent either way.
            Some(s) => JobObjective::Sampled(
                SampledObjective::new(sim, s.shots, s.estimator.build(), s.seed)
                    .with_cache_home(home)
                    .with_shot_tally(shot_tally),
            ),
        }
    }
}

impl Objective for JobObjective<'_> {
    fn dim(&self) -> usize {
        0
    }

    fn value(&mut self, x: &[f64]) -> f64 {
        match self {
            JobObjective::Exact(o) => o.value(x),
            JobObjective::Sampled(o) => o.value(x),
        }
    }

    fn value_and_gradient(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        match self {
            JobObjective::Exact(o) => o.value_and_gradient(x, grad),
            JobObjective::Sampled(o) => o.value_and_gradient(x, grad),
        }
    }

    fn evaluations(&self) -> usize {
        match self {
            JobObjective::Exact(o) => o.evaluations(),
            JobObjective::Sampled(o) => o.evaluations(),
        }
    }
}

/// Default maximum number of cached instances.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Byte budget for the instance cache.  Entry count alone is the wrong bound: a
/// prepared `n = 24` objective is ~170 MiB, so [`DEFAULT_CACHE_CAPACITY`] of them
/// would pin ~11 GiB.  The cache evicts by least-recent use until both bounds hold;
/// typical `n ≈ 16` entries (~0.6 MiB) never touch this limit.
pub const DEFAULT_CACHE_BYTES: u64 = 2 << 30;

impl Engine {
    /// An engine whose cache holds at most `cache_capacity` prepared instances,
    /// bounded to [`DEFAULT_CACHE_BYTES`] total.
    pub fn new(cache_capacity: usize) -> Self {
        Engine {
            cache: ShardedLru::with_shards(
                CACHE_SHARDS,
                cache_capacity.max(1),
                Some(DEFAULT_CACHE_BYTES),
            ),
            inflight: Mutex::new(HashMap::new()),
            sims: ShardedLru::with_shards(
                CACHE_SHARDS,
                cache_capacity.max(1),
                Some(DEFAULT_CACHE_BYTES),
            ),
            jobs_executed: Counter::new(),
            jobs_failed: Counter::new(),
            jobs_panicked: Counter::new(),
            jobs_timed_out: Counter::new(),
            jobs_retried: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            instance_builds: Counter::new(),
            prep_coalesced: Counter::new(),
            prefix_hits: Counter::new(),
            prefix_misses: Counter::new(),
            prefix_rounds_saved: Counter::new(),
            sample_jobs: Counter::new(),
            shots_drawn: Counter::new(),
            telemetry: EngineTelemetry::new(),
            spans: Mutex::new(None),
        }
    }

    /// Installs a span collector; subsequent jobs emit `prep`/`optimize`/
    /// `sampling_readout` child spans under their trace's root span.
    pub fn set_span_collector(&self, spans: Arc<SpanCollector>) {
        *self.spans.lock().expect("span collector lock poisoned") = Some(spans);
    }

    /// The installed span collector, if any (cheap clone of an `Arc`).
    fn span_collector(&self) -> Option<Arc<SpanCollector>> {
        self.spans
            .lock()
            .expect("span collector lock poisoned")
            .clone()
    }

    /// The engine's per-stage latency histograms (shared with the serving tier,
    /// which also records the queue-wait and journal-write stages into it).
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// Fetches (or builds and caches) the shared simulator slot for a problem/mixer
    /// pair.  The slot also parks the checkpoint pool between jobs so prefix
    /// statevectors survive from one job to the next on the same instance.
    fn simulator_slot(
        &self,
        problem: &BuiltProblem,
        mixer_spec: &MixerSpec,
        prepared: &PreparedObjective,
    ) -> Result<Arc<Mutex<SimSlot>>, ServiceError> {
        let key = (problem.instance_id, *mixer_spec);
        if let Some(slot) = self.sims.get(&key) {
            return Ok(slot);
        }
        // Build outside the lock; racing workers may both build, but
        // `get_or_insert_weighted` hands every caller the one winning slot, so the
        // checkpoint pool is never split across two live copies.
        let mixer = mixer_spec.build(problem).map_err(ServiceError::Spec)?;
        let sim = Simulator::from_parts(
            prepared.values.clone(),
            prepared.classes.clone(),
            vec![mixer],
        )?;
        let slot = Arc::new(Mutex::new(SimSlot {
            sim: Arc::new(sim),
            pool: Vec::new(),
        }));
        // A fresh slot weighs only the simulator's copy of the prepared data; the
        // checkpoint pool's bytes are charged as they are actually parked (see
        // `update_slot_weight`), so an idle slot never pays for warmth it does not
        // hold — charging the whole-pool worst case up front would cut co-resident
        // slots ~4× at larger `n` for no resident memory at all.
        Ok(self
            .sims
            .get_or_insert_weighted(key, slot, prepared.approx_bytes()))
    }

    /// Re-prices a slot in the LRU as the sum of its prepared data and the bytes its
    /// pool *actually* parks right now.  Called after every checkout (weight drops)
    /// and park (weight grows).  Uses `update_weight`, never an insert: if the LRU
    /// has already evicted this slot, a job still holding its `Arc` must not
    /// resurrect it and evict a live slot in its place — the orphaned pool simply
    /// dies with the last `Arc`.  Concurrent jobs may briefly leave the recorded
    /// weight one update stale; the next checkout or park corrects it.
    fn update_slot_weight(
        &self,
        key: (InstanceId, MixerSpec),
        slot: &Arc<Mutex<SimSlot>>,
        prepared_bytes: u64,
    ) {
        let pooled: usize = {
            let slot = slot.lock().expect("sim slot poisoned");
            slot.pool.iter().map(|cache| cache.bytes()).sum()
        };
        self.sims
            .update_weight(&key, prepared_bytes + pooled as u64);
    }

    /// Fetches (or computes and caches) the pre-computation for a built problem.
    /// Returns the shared data plus whether it was a cache hit.
    ///
    /// Preparation is **single-flight**: when several workers miss on the same
    /// instance concurrently, exactly one builds (a cache miss) while the rest block
    /// on the in-flight entry and share its result (cache hits, tallied in
    /// `prep_coalesced`).  If a build panics, waiters wake, and retry; one of them
    /// becomes the new builder, so a poisoned build never wedges the instance.
    pub fn prepare(&self, problem: &BuiltProblem) -> (Arc<PreparedObjective>, bool) {
        loop {
            if let Some(found) = self.cache.get(&problem.instance_id) {
                self.cache_hits.inc();
                return (found, true);
            }
            // Miss: join the in-flight build for this instance, or start one.
            let (flight, this_worker_builds) = {
                let mut inflight = self.inflight.lock().expect("inflight table poisoned");
                match inflight.get(&problem.instance_id) {
                    Some(flight) => (flight.clone(), false),
                    None => {
                        // Re-check the cache while holding the inflight lock: a
                        // builder that finished between our miss above and this
                        // lock has already filled the cache (it inserts *before*
                        // retiring its flight), and registering as a new builder
                        // here would duplicate its 2ⁿ build.  Lock order is always
                        // inflight → cache shard, so this cannot deadlock.
                        if let Some(found) = self.cache.get(&problem.instance_id) {
                            self.cache_hits.inc();
                            return (found, true);
                        }
                        let flight = Arc::new(PrepFlight::new());
                        inflight.insert(problem.instance_id, flight.clone());
                        (flight, true)
                    }
                }
            };
            if !this_worker_builds {
                self.prep_coalesced.inc();
                match flight.wait() {
                    Some(prepared) => {
                        // A coalesced miss is a hit for accounting: this worker paid
                        // a wait, not a build.
                        self.cache_hits.inc();
                        return (prepared, true);
                    }
                    // The builder panicked; retry (the flight entry is gone, so some
                    // retrying worker becomes the new builder).
                    None => continue,
                }
            }
            // This worker builds, outside every lock, so a slow pre-computation
            // never serialises the pool.  Prepared data is a pure function of the
            // instance, so whoever builds, everyone reads the same values.
            self.cache_misses.inc();
            self.instance_builds.inc();
            // Chaos hook: an installed fault plan may stall the build here, widening
            // the coalescing window for single-flight and queue-deadline tests.
            crate::fault::delay_prep();
            let built = std::panic::catch_unwind(AssertUnwindSafe(|| {
                Arc::new(PreparedObjective::compute(problem))
            }));
            match built {
                Ok(prepared) => {
                    // Order matters: fill the cache *before* retiring the flight.
                    // A new caller arriving in between then hits the cache instead
                    // of finding neither and starting a duplicate build.  Waiters
                    // hold the flight `Arc`, so publishing after removal still
                    // reaches every one of them.
                    let weight = prepared.approx_bytes();
                    self.cache
                        .insert_weighted(problem.instance_id, prepared.clone(), weight);
                    self.inflight
                        .lock()
                        .expect("inflight table poisoned")
                        .remove(&problem.instance_id);
                    flight.publish(Some(prepared.clone()));
                    return (prepared, false);
                }
                Err(payload) => {
                    // Failure order is the reverse: retire the flight *before*
                    // waking the waiters, so a retrying waiter can never rejoin the
                    // dead flight — one of them becomes the new builder.
                    self.inflight
                        .lock()
                        .expect("inflight table poisoned")
                        .remove(&problem.instance_id);
                    flight.publish(None);
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs_executed: self.jobs_executed.get(),
            jobs_failed: self.jobs_failed.get(),
            jobs_panicked: self.jobs_panicked.get(),
            jobs_timed_out: self.jobs_timed_out.get(),
            jobs_retried: self.jobs_retried.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            instance_builds: self.instance_builds.get(),
            prep_coalesced: self.prep_coalesced.get(),
            prefix_hits: self.prefix_hits.get(),
            prefix_misses: self.prefix_misses.get(),
            prefix_rounds_saved: self.prefix_rounds_saved.get(),
            sample_jobs: self.sample_jobs.get(),
            shots_drawn: self.shots_drawn.get(),
        }
    }

    /// Number of instances currently cached.
    pub fn cached_instances(&self) -> usize {
        self.cache.len()
    }

    /// Number of `(instance, mixer)` simulator slots currently cached.
    pub fn cached_simulators(&self) -> usize {
        self.sims.len()
    }

    /// Total prefix caches currently parked across all simulator-slot pools — how
    /// many concurrent jobs could start from warm checkpoints right now.
    pub fn parked_prefix_caches(&self) -> usize {
        self.sims
            .values()
            .iter()
            .map(|slot| slot.lock().expect("sim slot poisoned").pool.len())
            .sum()
    }

    /// Records a job that died in a panic after a `catch_unwind` recovered it —
    /// `run_job` never returned, so its own failure accounting did not run.  Keeps
    /// `jobs_failed` covering every job that entered the engine.
    pub fn record_panicked_job(&self) {
        self.jobs_failed.inc();
        self.jobs_panicked.inc();
    }

    /// Records a transient-failure re-attempt performed *outside*
    /// [`Engine::run_job_with_retry`] — e.g. the batch journal retrying a failed
    /// append — so `jobs_retried` covers every retry the service performs.
    pub fn record_retry(&self) {
        self.jobs_retried.inc();
    }

    /// [`Engine::run_job`] with panic isolation: a job that panics mid-run returns
    /// [`ServiceError::Panicked`] (tallied in `jobs_failed`/`jobs_panicked`)
    /// instead of unwinding into the calling worker thread.  Both front-ends route
    /// job execution through this, so a hostile job can never shrink a worker pool
    /// or abort a batch.
    pub fn run_job_isolated(
        &self,
        spec: &JobSpec,
        control: &RunControl,
    ) -> Result<JobResult, ServiceError> {
        std::panic::catch_unwind(AssertUnwindSafe(|| self.run_job(spec, control))).unwrap_or_else(
            |payload| {
                self.record_panicked_job();
                Err(ServiceError::Panicked(panic_message(payload.as_ref())))
            },
        )
    }

    /// [`Engine::run_job_isolated`] under a retry policy: transient failures —
    /// panics and I/O errors, per [`ServiceError::is_transient`] — are re-attempted
    /// up to `policy.max_retries` times, sleeping the policy's deterministic
    /// backoff between attempts (tallied in `jobs_retried`, one per re-run).
    /// Spec/simulation errors and timeouts return immediately, as does any failure
    /// once the job's own deadline or cancel flag is set — retrying into a dead
    /// deadline only burns worker time.
    pub fn run_job_with_retry(
        &self,
        spec: &JobSpec,
        control: &RunControl,
        policy: &crate::retry::RetryPolicy,
    ) -> Result<JobResult, ServiceError> {
        self.run_job_with_retry_observed(spec, control, policy, |_, _| {})
    }

    /// [`Engine::run_job_with_retry`] with an observer invoked once per re-attempt
    /// (after the failure, before the backoff sleep) with the 0-based attempt index
    /// and the error that triggered it — the serving tier's hook for emitting
    /// `retry` trace events without the engine knowing about trace rings.
    pub fn run_job_with_retry_observed(
        &self,
        spec: &JobSpec,
        control: &RunControl,
        policy: &crate::retry::RetryPolicy,
        mut on_retry: impl FnMut(u32, &ServiceError),
    ) -> Result<JobResult, ServiceError> {
        let mut attempt = 0;
        loop {
            match self.run_job_isolated(spec, control) {
                Err(e)
                    if e.is_transient()
                        && attempt < policy.max_retries
                        && !control.should_stop() =>
                {
                    self.jobs_retried.inc();
                    on_retry(attempt, &e);
                    std::thread::sleep(policy.delay(&spec.id, attempt));
                    attempt += 1;
                }
                out => return out,
            }
        }
    }

    /// Executes one job to completion (or cancellation), returning its result.
    ///
    /// Deterministic: the result depends only on the spec (notably its seed), never on
    /// cache state, thread count or scheduling.
    pub fn run_job(&self, spec: &JobSpec, control: &RunControl) -> Result<JobResult, ServiceError> {
        let started = Instant::now();
        let out = self.run_job_inner(spec, control, started);
        match &out {
            Ok(_) => self.jobs_executed.inc(),
            Err(_) => self.jobs_failed.inc(),
        };
        out
    }

    fn run_job_inner(
        &self,
        spec: &JobSpec,
        control: &RunControl,
        started: Instant,
    ) -> Result<JobResult, ServiceError> {
        if spec.p == 0 {
            return Err(ServiceError::Spec("p must be at least 1".into()));
        }
        // Sampling parameters are validated up front so a bad α or a zero shot count
        // fails as a structured spec error (4xx over HTTP), never a worker panic.
        if let Some(sampling) = &spec.sampling {
            sampling.validate().map_err(ServiceError::Spec)?;
        }
        let prep_started = Instant::now();
        let problem = spec.problem.build().map_err(ServiceError::Spec)?;
        // The job's deterministic trace id: a pure function of the spec, so the
        // same id lands in the result whether this engine runs under serve,
        // batch or a routed backend.  Child spans parent against the trace's
        // root span (id == trace id), which the serving tier emits.
        let trace = crate::spec::derive_trace_id(problem.instance_id.raw(), spec);
        let spans = self.span_collector();
        let (prepared, cache_hit) = self.prepare(&problem);
        // Hostile or degenerate instances (overflowing explicit weights) can realise
        // non-finite objective values; estimators and quality normalisation are
        // meaningless over them, so the job dies here with a structured error.
        if !prepared.finite {
            return Err(ServiceError::Spec(
                "instance realises non-finite objective values; \
                 check the problem's weights for overflow"
                    .into(),
            ));
        }
        // Chaos hooks for tests and CI smoke: a matching job id panics mid-run,
        // exercising the worker pool's panic isolation end-to-end.  The legacy
        // single-id hook panics unconditionally; a [`crate::fault::FaultPlan`]
        // budgets its panics per attempt, so retry tests can watch a job fail
        // deterministically `times` times and then succeed.
        if test_panic_job_id_matches(&spec.id) {
            // lint:allow(R3, intentional fault-injection hook - the panic is the feature under test)
            panic!("test hook: job {:?} panicked mid-run", spec.id);
        }
        if crate::fault::job_should_panic(&spec.id) {
            // lint:allow(R3, intentional fault-injection hook - the panic is the feature under test)
            panic!("fault injection: job {:?} panicked mid-run", spec.id);
        }
        let slot_key = (problem.instance_id, spec.mixer);
        let slot = self.simulator_slot(&problem, &spec.mixer, &prepared)?;
        // Check the shared simulator and the warmest parked prefix cache out of the
        // slot's pool.  Concurrent jobs on the same slot share the simulator, and up
        // to PARKED_POOL_CACHES of them start from warm checkpoints — results are
        // identical warm or cold.
        let (sim, parked) = {
            let mut slot = slot.lock().expect("sim slot poisoned");
            let warmest = slot
                .pool
                .iter()
                .enumerate()
                .max_by_key(|(_, cache)| cache.warmth())
                .map(|(i, _)| i);
            let parked = warmest.map(|i| slot.pool.swap_remove(i));
            (slot.sim.clone(), parked)
        };
        if parked.is_some() {
            // The checked-out cache's bytes left the pool; re-price the slot.
            self.update_slot_weight(slot_key, &slot, prepared.approx_bytes());
        }
        let home = match parked {
            Some(cache) => PrefixCacheHome::new(cache),
            None => PrefixCacheHome::with_budget(juliqaoa_core::prefix::default_prefix_budget()),
        };
        let prep_ms = prep_started.elapsed().as_secs_f64() * 1e3;
        self.telemetry.prep_ms.observe(prep_ms);
        if let Some(spans) = &spans {
            spans.record_closed(
                trace,
                Some(trace.root_span()),
                "prep",
                prep_ms,
                vec![
                    ("job".into(), spec.id.clone()),
                    ("cache_hit".into(), cache_hit.to_string()),
                ],
            );
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let dim = 2 * spec.p;
        let tau = 2.0 * std::f64::consts::PI;
        // Exact count of every shot the job draws, including the evaluations the
        // drivers hide inside finite-difference gradient probes (which
        // `res.function_evals` does not cover).
        let shot_tally = AtomicU64::new(0);
        let sampling = spec.sampling.as_ref();
        let optimize_started = Instant::now();
        let res: OptimizeResult = match spec.optimizer {
            OptimizerSpec::RandomRestart { restarts } => {
                if restarts == 0 {
                    return Err(ServiceError::Spec("restarts must be at least 1".into()));
                }
                random_restart_with_control(
                    || JobObjective::build(&sim, &home, sampling, &shot_tally),
                    dim,
                    &RandomRestartOptions {
                        restarts,
                        ..Default::default()
                    },
                    &mut rng,
                    control,
                )
            }
            OptimizerSpec::BasinHopping {
                n_hops,
                step_size,
                temperature,
            } => {
                let mut objective = JobObjective::build(&sim, &home, sampling, &shot_tally);
                let x0: Vec<f64> = (0..dim)
                    .map(|_| rand::Rng::gen_range(&mut rng, 0.0..tau))
                    .collect();
                basinhopping_with_control(
                    &mut objective,
                    &x0,
                    &BasinHoppingOptions {
                        n_hops,
                        step_size,
                        temperature,
                        ..Default::default()
                    },
                    &mut rng,
                    control,
                )
            }
            OptimizerSpec::GridSearch { resolution } => {
                if resolution == 0 {
                    return Err(ServiceError::Spec(
                        "grid resolution must be positive".into(),
                    ));
                }
                let points = (resolution as u128).saturating_pow(dim as u32);
                if points > 100_000_000 {
                    return Err(ServiceError::Spec(format!(
                        "grid of {points} points exceeds the 10^8 limit"
                    )));
                }
                // Deepest round fastest: consecutive grid points share a (p−1)-round
                // circuit prefix, which the objective's cache replays incrementally.
                grid_search_ordered(
                    || JobObjective::build(&sim, &home, sampling, &shot_tally),
                    dim,
                    0.0,
                    tau,
                    resolution,
                    &qaoa_axis_order(spec.p),
                    control,
                )
            }
        };

        let optimize_ms = optimize_started.elapsed().as_secs_f64() * 1e3;
        self.telemetry.optimize_ms.observe(optimize_ms);
        if let Some(spans) = &spans {
            spans.record_closed(
                trace,
                Some(trace.root_span()),
                "optimize",
                optimize_ms,
                vec![
                    ("job".into(), spec.id.clone()),
                    ("evals".into(), res.function_evals.to_string()),
                ],
            );
        }

        // Deadline bookkeeping comes first: a job whose deadline expired before the
        // optimizer completed even one evaluation has no partial result to report —
        // and a ±∞ "best value" would not survive JSON serialisation — so it dies
        // here as a structured timeout error.  A deadline that expired after some
        // progress falls through and reports `"timed_out"` with the best-so-far
        // angles below.
        let timed_out = control.is_timed_out();
        if timed_out {
            self.jobs_timed_out.inc();
            if !res.value.is_finite() {
                return Err(ServiceError::TimedOut(format!(
                    "deadline expired before job {:?} completed any evaluation",
                    spec.id
                )));
            }
        }

        // Sample jobs end with a readout at the best angles: the same seeded shot
        // streams the optimizer saw at that point, reported as a histogram plus the
        // best sampled bitstring (the answer a hardware run would hand back).  The
        // readout runs before the cache home is parked so it replays the prefix the
        // optimizer just left at `res.x` and its reuse counters fold into the job's.
        let readout_started = Instant::now();
        let sample_report = match sampling {
            None => None,
            // A timed-out sample job skips its readout — the time budget is spent,
            // and the partial result already carries the estimator's best value.
            Some(_) if timed_out => None,
            Some(s) => {
                let obj_vals = sim.objective_values();
                let shot_estimator = s.estimator.build();
                let mut readout = SampledObjective::new(&sim, s.shots, shot_estimator, s.seed)
                    .with_cache_home(&home)
                    .with_shot_tally(&shot_tally);
                let counts = readout.counts_at(&res.x);
                drop(readout);
                // The finiteness gate above makes this infallible for instances the
                // engine admits; the checked boundary stays as a second line of
                // defence should a non-finite value ever reach the readout.
                let estimate = shot_estimator
                    .try_estimate(&counts, obj_vals)
                    .map_err(ServiceError::Spec)?;
                let exact_expectation = sim.expectation(&Angles::from_flat(&res.x))?;
                let map = match problem.subspace_k {
                    Some(k) => IndexMap::dicke(problem.n, k),
                    None => IndexMap::full(problem.n),
                };
                let (best_idx, best_objective) = estimator::best_sampled(&counts, obj_vals);
                let (alpha, eta) = match s.estimator {
                    EstimatorSpec::Mean => (None, None),
                    EstimatorSpec::CVaR { alpha } => (Some(alpha), None),
                    EstimatorSpec::Gibbs { eta } => (None, Some(eta)),
                };
                // relaxed: the tally's writers finished with the objective drop above;
                // the count is a reporting statistic either way.
                let shots_total = shot_tally.load(Ordering::Relaxed);
                self.sample_jobs.inc();
                self.shots_drawn.add(shots_total);
                Some(SampleReport {
                    shots: s.shots,
                    sample_seed: s.seed,
                    estimator: s.estimator.kind().to_string(),
                    alpha,
                    eta,
                    estimate,
                    exact_expectation,
                    best_bitstring: map.bitstring_label(best_idx),
                    best_objective,
                    optimal_frequency: estimator::optimal_frequency(&counts, obj_vals),
                    distinct_outcomes: counts.distinct_outcomes() as u64,
                    ratio_histogram: estimator::ratio_histogram(
                        &counts,
                        obj_vals,
                        RATIO_HISTOGRAM_BINS,
                    ),
                    shots_total,
                })
            }
        };
        let sampling_readout_ms = if sample_report.is_some() {
            let ms = readout_started.elapsed().as_secs_f64() * 1e3;
            self.telemetry.sampling_readout_ms.observe(ms);
            if let Some(spans) = &spans {
                spans.record_closed(
                    trace,
                    Some(trace.root_span()),
                    "sampling_readout",
                    ms,
                    vec![("job".into(), spec.id.clone())],
                );
            }
            ms
        } else {
            0.0
        };

        // Every objective (and the readout) has been dropped; fold the reuse
        // counters into the engine and park the (possibly warmed) cache for the
        // next job on this slot.
        let pstats = home.stats();
        self.prefix_hits.add(pstats.hits);
        self.prefix_misses.add(pstats.misses);
        self.prefix_rounds_saved.add(pstats.rounds_saved);
        if let Some(cache) = home.into_cache() {
            // Park only caches within the per-cache allowance; an oversized cache
            // (very deep p) is dropped rather than pinning unbounded statevector
            // memory for one slot.
            let allowance = PARKED_PREFIX_STATES * sim.dim() * STATE_ELEM_BYTES;
            if cache.bytes() <= allowance {
                {
                    let mut slot = slot.lock().expect("sim slot poisoned");
                    if slot.pool.len() < PARKED_POOL_CACHES {
                        slot.pool.push(cache);
                    } else if let Some(coldest) = slot
                        .pool
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, pooled)| pooled.warmth())
                        .map(|(i, _)| i)
                    {
                        // Full pool: deepest wins.  `merge_deeper` keeps whichever
                        // of the returning cache and the coldest pooled entry serves
                        // deeper prefixes, so a warmer cache is never discarded for
                        // returning late.
                        let evicted = slot.pool.swap_remove(coldest);
                        slot.pool.push(cache.merge_deeper(evicted));
                    }
                }
                // The parked bytes are now resident; re-price the slot in the LRU.
                self.update_slot_weight(slot_key, &slot, prepared.approx_bytes());
            }
        }

        let expectation = -res.value;
        let quality = if prepared.max > prepared.min {
            (expectation - prepared.min) / (prepared.max - prepared.min)
        } else {
            1.0
        };
        // "cancelled" means *someone asked to stop*, never that the optimizer merely
        // hit an iteration cap — BFGS can report `converged: false` on a hard
        // landscape, and that is still a finished, resumable-as-done job.  A job
        // that was both cancelled and past its deadline reports the deadline: that
        // is the state a client can act on (resubmit with a bigger budget).
        let status = if timed_out {
            "timed_out"
        } else if control.is_cancelled() {
            "cancelled"
        } else {
            "done"
        };
        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        self.telemetry.total_ms.observe(total_ms);
        Ok(JobResult {
            id: spec.id.clone(),
            trace: trace.to_hex(),
            status: status.to_string(),
            instance: problem.instance_id,
            problem: problem.kind.to_string(),
            mixer: spec.mixer.kind().to_string(),
            p: spec.p,
            seed: spec.seed,
            dim: sim.dim(),
            expectation,
            angles: res.x,
            objective_max: prepared.max,
            objective_min: prepared.min,
            quality,
            function_evals: res.function_evals,
            converged: res.converged,
            cache_hit,
            elapsed_ms: total_ms,
            timings: JobTimings {
                // Filled in by the serving tier, which is where jobs queue.
                queue_wait_ms: 0.0,
                prep_ms,
                optimize_ms,
                sampling_readout_ms,
                total_ms,
            },
            sampling: sample_report,
        })
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MixerSpec, ProblemSpec};

    fn quick_job(id: &str, instance: u64, seed: u64) -> JobSpec {
        JobSpec {
            id: id.into(),
            problem: ProblemSpec::MaxCutGnp { n: 7, instance },
            mixer: MixerSpec::TransverseField,
            p: 1,
            optimizer: OptimizerSpec::BasinHopping {
                n_hops: 2,
                step_size: 0.5,
                temperature: 1.0,
            },
            seed,
            sampling: None,
            timeout_ms: None,
        }
    }

    #[test]
    fn same_seed_jobs_are_bit_identical_and_share_the_cache() {
        let engine = Engine::new(8);
        let a = engine
            .run_job(&quick_job("a", 0, 42), &RunControl::new())
            .unwrap();
        let b = engine
            .run_job(&quick_job("b", 0, 42), &RunControl::new())
            .unwrap();
        assert_eq!(a.expectation.to_bits(), b.expectation.to_bits());
        assert_eq!(a.angles, b.angles);
        assert_eq!(a.instance, b.instance);
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.jobs_executed, 2);
    }

    #[test]
    fn cache_is_keyed_by_instance_not_by_job() {
        let engine = Engine::new(8);
        let _ = engine
            .run_job(&quick_job("a", 0, 1), &RunControl::new())
            .unwrap();
        let other = engine
            .run_job(&quick_job("b", 1, 1), &RunControl::new())
            .unwrap();
        assert!(!other.cache_hit);
        assert_eq!(engine.cached_instances(), 2);
    }

    #[test]
    fn repeat_jobs_share_the_simulator_slot_and_record_prefix_reuse() {
        let engine = Engine::new(8);
        let a = engine
            .run_job(&quick_job("a", 0, 1), &RunControl::new())
            .unwrap();
        assert_eq!(engine.cached_simulators(), 1);
        let b = engine
            .run_job(&quick_job("b", 0, 2), &RunControl::new())
            .unwrap();
        // Different seeds explore different angles, but both jobs run on one shared
        // simulator slot, and each job's value→gradient pairs reuse prefixes.
        assert_eq!(engine.cached_simulators(), 1);
        let stats = engine.stats();
        assert!(
            stats.prefix_hits > 0,
            "optimizer evaluation patterns must produce prefix hits"
        );
        assert!(stats.prefix_hits + stats.prefix_misses > 0);
        // A different mixer on the same instance gets its own slot.
        let mut grover = quick_job("c", 0, 1);
        grover.mixer = MixerSpec::Grover;
        engine.run_job(&grover, &RunControl::new()).unwrap();
        assert_eq!(engine.cached_simulators(), 2);
        // Slot reuse never changes answers: same-seed re-runs stay bit-identical.
        let a2 = engine
            .run_job(&quick_job("a2", 0, 1), &RunControl::new())
            .unwrap();
        assert_eq!(a.expectation.to_bits(), a2.expectation.to_bits());
        assert_eq!(a.angles, a2.angles);
        drop(b);
    }

    #[test]
    fn grid_jobs_reuse_prefixes_heavily() {
        // Pin the scan serial (as batch/serve workers do): block-parallel scans give
        // each worker its own cache, which would make the hit count depend on the
        // host's core count instead of on the access pattern under test.
        let _guard = juliqaoa_linalg::enter_outer_parallelism();
        let engine = Engine::new(8);
        let mut job = quick_job("grid", 0, 3);
        job.p = 2;
        job.optimizer = OptimizerSpec::GridSearch { resolution: 5 };
        let res = engine.run_job(&job, &RunControl::new()).unwrap();
        assert_eq!(res.function_evals, 625);
        let stats = engine.stats();
        // With the suffix-major axis order, the overwhelming majority of the 625
        // points resume from a checkpoint.
        assert!(
            stats.prefix_hits > 500,
            "expected heavy grid reuse, got {} hits / {} misses",
            stats.prefix_hits,
            stats.prefix_misses
        );
        assert!(stats.prefix_rounds_saved > 500);
    }

    #[test]
    fn a_follower_job_on_a_warm_slot_checks_out_the_parked_cache_and_records_hits() {
        // Regression test for the parked-cache write-back policy: the warmth a job
        // leaves behind must actually reach the next job on the slot.  The
        // hand-off is observable in the pool count — the follower checks the parked
        // cache *out* (so the pool holds one cache after it returns, not two) — and
        // in the follower recording prefix hits of its own.  Serial scan (guard
        // held) keeps the counters deterministic.
        let _guard = juliqaoa_linalg::enter_outer_parallelism();
        let grid_job = |id: &str| {
            let mut job = quick_job(id, 0, 3);
            job.p = 2;
            job.optimizer = OptimizerSpec::GridSearch { resolution: 4 };
            job
        };
        let engine = Engine::new(8);
        let warm = engine
            .run_job(&grid_job("warmup"), &RunControl::new())
            .unwrap();
        assert_eq!(engine.parked_prefix_caches(), 1, "warm-up parks its cache");
        let before = engine.stats();
        let follow = engine
            .run_job(&grid_job("follower"), &RunControl::new())
            .unwrap();
        let follower_hits = engine.stats().prefix_hits - before.prefix_hits;
        assert!(
            follower_hits > 0,
            "a follower on a warm slot must record prefix hits"
        );
        assert_eq!(
            engine.parked_prefix_caches(),
            1,
            "the follower must check out the parked cache (a second pooled cache \
             would mean the hand-off never happened)"
        );
        // Warmth never changes answers.
        assert_eq!(warm.expectation.to_bits(), follow.expectation.to_bits());
        assert_eq!(warm.angles, follow.angles);
    }

    #[test]
    fn non_finite_instances_are_rejected_with_a_structured_error() {
        // Overflowing explicit weights realise ±∞ objective values; the engine must
        // refuse them with a spec error instead of feeding them to estimators.
        let engine = Engine::new(8);
        let graph = juliqaoa_graphs::Graph::from_weighted_edges(4, &[(0, 1, 1e308), (2, 3, 1e308)]);
        let mut job = quick_job("inf", 0, 1);
        job.problem = ProblemSpec::MaxCut { graph };
        match engine.run_job(&job, &RunControl::new()) {
            Err(ServiceError::Spec(msg)) => {
                assert!(msg.contains("non-finite"), "{msg}")
            }
            other => panic!("expected a spec error, got {other:?}"),
        }
        assert_eq!(engine.stats().jobs_failed, 1);
    }

    #[test]
    fn invalid_specs_fail_cleanly_and_count_as_failures() {
        let engine = Engine::new(8);
        let mut bad = quick_job("bad", 0, 1);
        bad.p = 0;
        assert!(matches!(
            engine.run_job(&bad, &RunControl::new()),
            Err(ServiceError::Spec(_))
        ));
        let mut bad_mixer = quick_job("bad2", 0, 1);
        bad_mixer.mixer = MixerSpec::Clique;
        assert!(engine.run_job(&bad_mixer, &RunControl::new()).is_err());
        assert_eq!(engine.stats().jobs_failed, 2);
    }

    #[test]
    fn grid_size_limit_is_enforced() {
        let engine = Engine::new(8);
        let mut huge = quick_job("huge", 0, 1);
        huge.p = 4;
        huge.optimizer = OptimizerSpec::GridSearch { resolution: 50 };
        let err = engine.run_job(&huge, &RunControl::new()).unwrap_err();
        assert!(err.to_string().contains("10^8"));
    }

    fn sample_job(id: &str, estimator: EstimatorSpec, shots: u64) -> JobSpec {
        let mut job = quick_job(id, 0, 5);
        job.optimizer = OptimizerSpec::GridSearch { resolution: 6 };
        job.sampling = Some(SamplingSpec {
            shots,
            seed: 77,
            estimator,
        });
        job
    }

    #[test]
    fn cvar_sample_job_runs_end_to_end_and_is_reproducible() {
        let engine = Engine::new(8);
        let spec = sample_job("cvar", EstimatorSpec::CVaR { alpha: 0.2 }, 2048);
        let a = engine.run_job(&spec, &RunControl::new()).unwrap();
        assert_eq!(a.status, "done");
        let report = a.sampling.as_ref().expect("sample jobs carry a report");
        // The readout redraws the optimizer's own streams at the best point, so the
        // reported estimate IS the optimized value.
        assert_eq!(report.estimate.to_bits(), a.expectation.to_bits());
        assert_eq!(report.estimator, "cvar");
        assert_eq!(report.alpha, Some(0.2));
        assert_eq!(report.shots, 2048);
        assert_eq!(report.ratio_histogram.iter().sum::<u64>(), 2048);
        assert_eq!(report.shots_total, (a.function_evals as u64 + 1) * 2048);
        assert!(report.distinct_outcomes > 0);
        assert_eq!(report.best_bitstring.len(), 7);
        assert!(report.best_objective <= a.objective_max);
        // CVaR-0.2 sits between the exact expectation and the objective maximum.
        assert!(report.estimate >= report.exact_expectation - 1e-9);
        assert!(report.estimate <= a.objective_max + 1e-9);
        // Bit-identical on a fresh engine (pure function of the spec).
        let engine2 = Engine::new(8);
        let b = engine2.run_job(&spec, &RunControl::new()).unwrap();
        assert_eq!(a.expectation.to_bits(), b.expectation.to_bits());
        assert_eq!(a.angles, b.angles);
        assert_eq!(a.sampling, b.sampling);
        // Counters: one sample job, every evaluation plus the readout drew shots.
        let stats = engine.stats();
        assert_eq!(stats.sample_jobs, 1);
        assert_eq!(stats.shots_drawn, report.shots_total);
    }

    #[test]
    fn sample_jobs_run_through_every_optimizer() {
        let engine = Engine::new(8);
        for (id, optimizer) in [
            ("rr", OptimizerSpec::RandomRestart { restarts: 2 }),
            (
                "bh",
                OptimizerSpec::BasinHopping {
                    n_hops: 2,
                    step_size: 0.5,
                    temperature: 1.0,
                },
            ),
            ("grid", OptimizerSpec::GridSearch { resolution: 4 }),
        ] {
            let mut spec = sample_job(id, EstimatorSpec::Mean, 512);
            spec.optimizer = optimizer;
            let res = engine.run_job(&spec, &RunControl::new()).unwrap();
            let report = res.sampling.expect("report present");
            // The sample mean at the best angles lies inside the objective range.
            assert!(report.estimate <= res.objective_max + 1e-9, "{id}");
            assert!(report.estimate >= res.objective_min - 1e-9, "{id}");
            // Every evaluation plus the readout drew shots; gradient-based
            // optimizers draw *more* than function_evals suggests (FD probes), and
            // the tally must capture those too.
            assert!(
                report.shots_total >= (res.function_evals as u64 + 1) * 512,
                "{id}: shots_total {} < floor",
                report.shots_total
            );
            if id != "grid" {
                assert!(
                    report.shots_total > (res.function_evals as u64 + 1) * 512,
                    "{id}: FD gradient probes must be tallied"
                );
            }
        }
        assert_eq!(engine.stats().sample_jobs, 3);
        // Sampled forward passes ride the same parked prefix caches as exact jobs.
        assert!(engine.stats().prefix_hits > 0);
    }

    #[test]
    fn exact_jobs_carry_no_sample_report_and_do_not_bump_sample_counters() {
        let engine = Engine::new(8);
        let res = engine
            .run_job(&quick_job("exact", 0, 1), &RunControl::new())
            .unwrap();
        assert!(res.sampling.is_none());
        let stats = engine.stats();
        assert_eq!(stats.sample_jobs, 0);
        assert_eq!(stats.shots_drawn, 0);
    }

    #[test]
    fn invalid_sampling_specs_are_structured_errors_not_panics() {
        let engine = Engine::new(8);
        for (id, estimator, shots) in [
            ("zero-shots", EstimatorSpec::Mean, 0),
            ("alpha-zero", EstimatorSpec::CVaR { alpha: 0.0 }, 128),
            ("alpha-big", EstimatorSpec::CVaR { alpha: 1.5 }, 128),
            ("eta-neg", EstimatorSpec::Gibbs { eta: -2.0 }, 128),
        ] {
            let spec = sample_job(id, estimator, shots);
            match engine.run_job(&spec, &RunControl::new()) {
                Err(ServiceError::Spec(msg)) => {
                    assert!(!msg.is_empty(), "{id}: message must name the problem")
                }
                other => panic!("{id}: expected a spec error, got {other:?}"),
            }
        }
        assert_eq!(engine.stats().jobs_failed, 4);
    }

    #[test]
    fn an_expired_deadline_mid_grid_returns_a_partial_timed_out_result() {
        use std::time::Duration;
        // Serial scan so the deadline is polled on the one scanning thread.
        let _guard = juliqaoa_linalg::enter_outer_parallelism();
        let engine = Engine::new(8);
        let mut job = quick_job("deadline", 0, 3);
        job.p = 2;
        // 60⁴ ≈ 13M grid points: far more than 150 ms of scanning, so the deadline
        // expires mid-grid with real partial progress behind it.
        job.optimizer = OptimizerSpec::GridSearch { resolution: 60 };
        let control = RunControl::new().deadline_in(Duration::from_millis(150));
        let res = engine.run_job(&job, &control).unwrap();
        assert_eq!(res.status, "timed_out");
        assert!(!res.converged);
        assert!(
            res.expectation.is_finite(),
            "partial best must be reportable"
        );
        assert!(res.function_evals > 0, "some points were scanned");
        assert!(
            res.function_evals < 60usize.pow(4),
            "the grid was cut short"
        );
        let stats = engine.stats();
        assert_eq!(stats.jobs_timed_out, 1);
        assert_eq!(
            stats.jobs_executed, 1,
            "a partial result still counts as executed"
        );
        assert_eq!(stats.jobs_failed, 0);
    }

    #[test]
    fn a_deadline_expired_before_any_evaluation_is_a_structured_timeout_error() {
        use std::time::Duration;
        let engine = Engine::new(8);
        let mut job = quick_job("instant-deadline", 0, 3);
        job.optimizer = OptimizerSpec::GridSearch { resolution: 8 };
        let control = RunControl::new().deadline_in(Duration::ZERO);
        match engine.run_job(&job, &control) {
            Err(ServiceError::TimedOut(msg)) => assert!(msg.contains("instant-deadline")),
            other => panic!("expected a timeout error, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.jobs_timed_out, 1);
        assert_eq!(
            stats.jobs_failed, 1,
            "zero-progress timeouts count as failures"
        );
    }

    #[test]
    fn transient_panics_are_retried_under_a_policy_and_tallied() {
        let engine = Engine::new(8);
        // The job panics on its first attempt only; the retry must then succeed.
        crate::fault::install(crate::fault::FaultPlan {
            panic_jobs: vec![crate::fault::PanicFault {
                id: "flaky-once".into(),
                times: 1,
            }],
            ..Default::default()
        });
        let policy = crate::retry::RetryPolicy {
            max_retries: 2,
            base_delay_ms: 1,
            max_delay_ms: 2,
            jitter_seed: 0,
        };
        let res =
            engine.run_job_with_retry(&quick_job("flaky-once", 0, 1), &RunControl::new(), &policy);
        crate::fault::clear();
        assert_eq!(res.unwrap().status, "done");
        let stats = engine.stats();
        assert_eq!(stats.jobs_panicked, 1);
        assert_eq!(stats.jobs_retried, 1);
        assert_eq!(stats.jobs_failed, 1, "the panicked first attempt");
        assert_eq!(stats.jobs_executed, 1, "the successful retry");
        // Deterministic errors are returned immediately, never retried.
        let mut bad = quick_job("bad-spec", 0, 1);
        bad.p = 0;
        assert!(matches!(
            engine.run_job_with_retry(&bad, &RunControl::new(), &policy),
            Err(ServiceError::Spec(_))
        ));
        assert_eq!(engine.stats().jobs_retried, 1, "spec errors must not retry");
    }

    #[test]
    fn quality_lies_in_unit_interval() {
        let engine = Engine::default();
        let res = engine
            .run_job(&quick_job("q", 2, 5), &RunControl::new())
            .unwrap();
        assert!((0.0..=1.0).contains(&res.quality));
        assert!(res.expectation <= res.objective_max + 1e-9);
        assert_eq!(res.status, "done");
        assert!(res.converged);
    }
}
