//! Deterministic fault injection: a seeded, replayable chaos plan.
//!
//! The engine's original chaos hook was a single hard-coded environment variable
//! (`JULIQAOA_TEST_PANIC_JOB_ID`) that could do exactly one thing: panic one job,
//! every time it ran.  A [`FaultPlan`] generalises it into a small declarative plan
//! covering the failure surface the service actually has:
//!
//! * **`panic_jobs`** — panic a named job mid-run, for its first `times` attempts
//!   (so `times: 1` + a retry policy exercises *recovery*, not just isolation);
//! * **`fail_writes`** — inject an I/O error on the `k`-th journal write (0-based,
//!   counted process-wide), exercising the batch writer's retry path;
//! * **`torn_write_at`** — on the `k`-th journal write, write only a prefix of the
//!   line (no newline), force it to disk and abort the process — a deterministic
//!   stand-in for `SIGKILL` landing mid-`write(2)`, used by the kill-mid-batch CI
//!   smoke to manufacture a torn trailing line at a seeded point;
//! * **`prep_delay_ms`** — stall every instance preparation, widening race windows
//!   for single-flight and queue-deadline tests;
//! * **`kill_after_jobs`** — abort the whole process once the `k`-th job reaches a
//!   terminal state (counted process-wide), the cluster chaos suite's way of killing
//!   a backend mid-batch at a deterministic point;
//! * **`probe_blackhole`** — drop `/healthz` and `/readyz` connections without
//!   answering, so the router's health prober sees timeouts rather than refusals
//!   (the failure mode of a wedged, not dead, backend);
//! * **`slow_response_ms`** — stall every HTTP response, widening the window the
//!   router's hedged reads are designed to cover;
//! * **`seed`** — labels the plan (folded into nothing at runtime yet, but recorded
//!   so two chaos runs can assert they replayed the same plan).
//!
//! Every trigger is counter-based, never clock- or scheduling-based, so a plan
//! replays bit-identically at one worker; at several workers the *set* of injected
//! faults is fixed even when interleaving varies.
//!
//! Plans load once per process from the `JULIQAOA_FAULT_PLAN` environment variable
//! (inline JSON, or `@path` to a JSON file) — the right hook for spawned-process CI
//! smokes — or are installed in-process by tests via [`install`]/[`clear`], which
//! must be used instead of mutating the environment (`set_var` racing `getenv` is
//! undefined behaviour on glibc).

use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Panic a named job for its first `times` attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicFault {
    /// The job id to hit.
    pub id: String,
    /// How many attempts panic before the job is allowed to succeed
    /// (`u32::MAX` ⇒ every attempt, the legacy env-hook behaviour).
    pub times: u32,
}

/// A declarative, seeded set of faults to inject into this process.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Plan label, echoed in logs so reruns can assert they replayed one plan.
    pub seed: u64,
    /// Jobs to panic mid-run.
    pub panic_jobs: Vec<PanicFault>,
    /// 0-based journal-write indices that fail with an injected I/O error.
    pub fail_writes: Vec<u64>,
    /// Journal write at which to write a torn prefix and abort the process.
    pub torn_write_at: Option<u64>,
    /// Milliseconds to stall every instance preparation.
    pub prep_delay_ms: u64,
    /// Abort the process once this many jobs (counted process-wide) have reached a
    /// terminal state — the deterministic backend-kill for cluster chaos tests.
    pub kill_after_jobs: Option<u64>,
    /// Drop health-probe connections (`/healthz`, `/readyz`) without responding.
    pub probe_blackhole: bool,
    /// Milliseconds to stall every HTTP response before it is written.
    pub slow_response_ms: u64,
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        let panic_jobs: Vec<Value> = self
            .panic_jobs
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("id".into(), f.id.to_value()),
                    ("times".into(), f.times.to_value()),
                ])
            })
            .collect();
        let mut fields = vec![
            ("seed".to_string(), self.seed.to_value()),
            ("panic_jobs".to_string(), Value::Array(panic_jobs)),
            ("fail_writes".to_string(), self.fail_writes.to_value()),
            ("prep_delay_ms".to_string(), self.prep_delay_ms.to_value()),
            (
                "probe_blackhole".to_string(),
                self.probe_blackhole.to_value(),
            ),
            (
                "slow_response_ms".to_string(),
                self.slow_response_ms.to_value(),
            ),
        ];
        if let Some(k) = self.torn_write_at {
            fields.push(("torn_write_at".to_string(), k.to_value()));
        }
        if let Some(k) = self.kill_after_jobs {
            fields.push(("kill_after_jobs".to_string(), k.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, String> {
        if v.as_object().is_none() {
            return Err("fault plan must be a JSON object".into());
        }
        let u64_or = |name: &str, default: u64| -> Result<u64, String> {
            match v.get_field(name) {
                None | Some(Value::Null) => Ok(default),
                Some(f) => f
                    .as_u64()
                    .ok_or_else(|| format!("fault plan: {name} must be an unsigned integer")),
            }
        };
        let panic_jobs = match v.get_field("panic_jobs") {
            None | Some(Value::Null) => Vec::new(),
            Some(list) => list
                .as_array()
                .ok_or("fault plan: panic_jobs must be an array")?
                .iter()
                .map(|f| {
                    let id = f
                        .get_field("id")
                        .and_then(Value::as_str)
                        .ok_or("fault plan: panic_jobs entries need a string id")?
                        .to_string();
                    let times = match f.get_field("times") {
                        None | Some(Value::Null) => 1,
                        Some(t) => t
                            .as_u64()
                            .ok_or("fault plan: panic_jobs times must be an unsigned integer")?
                            .min(u32::MAX as u64) as u32,
                    };
                    Ok(PanicFault { id, times })
                })
                .collect::<Result<_, String>>()?,
        };
        let fail_writes = match v.get_field("fail_writes") {
            None | Some(Value::Null) => Vec::new(),
            Some(list) => Vec::<u64>::from_value(list)?,
        };
        let torn_write_at = match v.get_field("torn_write_at") {
            None | Some(Value::Null) => None,
            Some(k) => Some(
                k.as_u64()
                    .ok_or("fault plan: torn_write_at must be an unsigned integer")?,
            ),
        };
        let kill_after_jobs = match v.get_field("kill_after_jobs") {
            None | Some(Value::Null) => None,
            Some(k) => Some(
                k.as_u64()
                    .ok_or("fault plan: kill_after_jobs must be an unsigned integer")?,
            ),
        };
        let probe_blackhole = match v.get_field("probe_blackhole") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err("fault plan: probe_blackhole must be a boolean".into()),
        };
        Ok(FaultPlan {
            seed: u64_or("seed", 0)?,
            panic_jobs,
            fail_writes,
            torn_write_at,
            prep_delay_ms: u64_or("prep_delay_ms", 0)?,
            kill_after_jobs,
            probe_blackhole,
            slow_response_ms: u64_or("slow_response_ms", 0)?,
        })
    }
}

impl FaultPlan {
    /// Parses a plan from inline JSON or, with a leading `@`, a JSON file path.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let json = match text.strip_prefix('@') {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| format!("reading fault plan {path}: {e}"))?,
            None => text.to_string(),
        };
        serde_json::from_str(&json).map_err(|e| format!("parsing fault plan: {e}"))
    }
}

/// The effect the journal must apply to one write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// Write normally.
    None,
    /// Fail this write with an injected I/O error (the bytes never reach the file).
    IoError,
    /// Write a torn prefix of the line, sync it to disk, then abort the process.
    TornAbort,
}

/// Live injection state: the plan plus its consumption counters.
struct FaultState {
    plan: FaultPlan,
    /// Process-wide journal-write counter (indexes `fail_writes`/`torn_write_at`).
    writes: AtomicU64,
    /// Attempts seen per panic-fault job id.
    attempts: Mutex<HashMap<String, u32>>,
    /// Process-wide terminal-job counter (triggers `kill_after_jobs`).
    jobs_finished: AtomicU64,
}

/// The installed plan, if any.  A `Mutex<Option<Arc<_>>>` (not `OnceLock`) so tests
/// can install and clear plans per-test; the environment is consulted exactly once.
static ACTIVE: Mutex<Option<Arc<FaultState>>> = Mutex::new(None);
static ENV_LOADED: Once = Once::new();

fn active() -> Option<Arc<FaultState>> {
    ENV_LOADED.call_once(|| {
        if let Ok(text) = std::env::var("JULIQAOA_FAULT_PLAN") {
            match FaultPlan::parse(&text) {
                Ok(plan) => {
                    eprintln!(
                        "fault injection: plan seed {} active ({} panic job(s), {} failed write(s){})",
                        plan.seed,
                        plan.panic_jobs.len(),
                        plan.fail_writes.len(),
                        match plan.torn_write_at {
                            Some(k) => format!(", torn abort at write {k}"),
                            None => String::new(),
                        },
                    );
                    install(plan);
                }
                Err(e) => eprintln!("fault injection: ignoring JULIQAOA_FAULT_PLAN: {e}"),
            }
        }
    });
    ACTIVE.lock().expect("fault plan lock poisoned").clone()
}

/// Installs a plan in-process (tests/CI harnesses), replacing any previous one and
/// resetting all consumption counters.
pub fn install(plan: FaultPlan) {
    *ACTIVE.lock().expect("fault plan lock poisoned") = Some(Arc::new(FaultState {
        plan,
        writes: AtomicU64::new(0),
        attempts: Mutex::new(HashMap::new()),
        jobs_finished: AtomicU64::new(0),
    }));
}

/// Removes the installed plan (faults stop firing).
pub fn clear() {
    // Make sure the env var cannot resurrect a plan after an explicit clear.
    ENV_LOADED.call_once(|| {});
    *ACTIVE.lock().expect("fault plan lock poisoned") = None;
}

/// Engine hook: should this attempt of `job_id` panic?  Consumes one `times` charge.
pub fn job_should_panic(job_id: &str) -> bool {
    let Some(state) = active() else { return false };
    let Some(fault) = state.plan.panic_jobs.iter().find(|f| f.id == job_id) else {
        return false;
    };
    let mut attempts = state.attempts.lock().expect("fault attempts lock poisoned");
    let seen = attempts.entry(job_id.to_string()).or_insert(0);
    if *seen < fault.times {
        *seen = seen.saturating_add(1);
        true
    } else {
        false
    }
}

/// Engine hook: stall an instance preparation per the plan (no-op without one).
pub fn delay_prep() {
    if let Some(state) = active() {
        if state.plan.prep_delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(state.plan.prep_delay_ms));
        }
    }
}

/// Serving hook: called once per job that reaches a terminal state.  Aborts the
/// process when the plan's `kill_after_jobs` count is reached — the cluster chaos
/// suite's deterministic stand-in for `SIGKILL` landing on a backend mid-batch.
/// The abort happens *after* the k-th job completed (and its result was journaled
/// or made pollable), so the killed backend's observable state is well-defined.
pub fn maybe_kill_after_job() {
    let Some(state) = active() else { return };
    let Some(kill_at) = state.plan.kill_after_jobs else {
        return;
    };
    let finished = state.jobs_finished.fetch_add(1, Ordering::SeqCst) + 1;
    if finished >= kill_at {
        eprintln!("fault injection: killing process after {finished} finished job(s)");
        std::process::abort();
    }
}

/// Probe hook: should health endpoints (`/healthz`, `/readyz`) drop the connection
/// without answering?  Models a wedged backend whose sockets accept but never reply.
pub fn probe_blackholed() -> bool {
    active().is_some_and(|state| state.plan.probe_blackhole)
}

/// Response hook: stall per the plan's `slow_response_ms` before any HTTP response
/// is written (no-op without a plan).
pub fn delay_response() {
    if let Some(state) = active() {
        if state.plan.slow_response_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                state.plan.slow_response_ms,
            ));
        }
    }
}

/// Journal hook: the fault (if any) to apply to the next write.  Each call consumes
/// one write index, matching the journal's own append numbering.
pub fn next_write_fault() -> WriteFault {
    let Some(state) = active() else {
        return WriteFault::None;
    };
    let index = state.writes.fetch_add(1, Ordering::SeqCst);
    if state.plan.torn_write_at == Some(index) {
        WriteFault::TornAbort
    } else if state.plan.fail_writes.contains(&index) {
        WriteFault::IoError
    } else {
        WriteFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_and_tolerate_missing_fields() {
        let plan = FaultPlan {
            seed: 42,
            panic_jobs: vec![PanicFault {
                id: "boom".into(),
                times: 2,
            }],
            fail_writes: vec![0, 3],
            torn_write_at: Some(5),
            prep_delay_ms: 10,
            kill_after_jobs: Some(4),
            probe_blackhole: true,
            slow_response_ms: 25,
        };
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(FaultPlan::parse(&json).unwrap(), plan);
        // An empty object is the empty plan; `times` defaults to 1.
        assert_eq!(FaultPlan::parse("{}").unwrap(), FaultPlan::default());
        let sparse = FaultPlan::parse(r#"{"panic_jobs": [{"id": "x"}]}"#).unwrap();
        assert_eq!(
            sparse.panic_jobs,
            vec![PanicFault {
                id: "x".into(),
                times: 1
            }]
        );
        assert!(FaultPlan::parse("[1, 2]").is_err());
        assert!(FaultPlan::parse("@/no/such/fault_plan.json").is_err());
    }

    // The consumption counters are process-global, so the behavioural tests
    // (install → faults fire in order → clear) live in the serial integration
    // suite `tests/fault_injection.rs`, not here where tests run concurrently.
}
