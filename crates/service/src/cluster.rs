//! Cluster membership: the consistent-hash ring and per-backend health machinery
//! the router routes over.
//!
//! Two concerns live here, both deterministic by construction:
//!
//! * **Placement** ([`HashRing`]): backends own arcs of a 64-bit ring via FNV-hashed
//!   virtual nodes.  A job's routing key (its canonical `InstanceId` hash) maps to
//!   the first vnode clockwise, and [`HashRing::candidates`] returns *every* backend
//!   in ring order from there — the failover sequence is part of placement, not a
//!   runtime coin flip.  Placement depends only on the backend address list, so any
//!   two routers configured with the same `--backends` agree on every route, and a
//!   job's instance keeps hitting the same backend's caches (PR 5's single-flight
//!   prep and checkpoint pools become per-shard for free).
//! * **Health** ([`Backend`]): an Up/Degraded/Down state machine driven by probe
//!   and proxy outcomes, with a circuit breaker — `trip_after` consecutive failures
//!   open the circuit (Down), and after a *seeded* cooldown derived from the shared
//!   [`RetryPolicy`] the breaker goes half-open: one probe is allowed through, and
//!   its outcome closes the circuit (Up) or re-opens it with the next backoff step.
//!   Because the cooldown schedule is `RetryPolicy::delay(addr, trip)` — a pure
//!   function of the policy seed, the address and the trip count — two routers with
//!   the same configuration replay identical recovery schedules.
//!
//! Nothing here does I/O: the router owns sockets and feeds outcomes in, which is
//! what makes the state machine unit-testable without a cluster.

use crate::retry::RetryPolicy;
use juliqaoa_problems::Fnv64;
use juliqaoa_telemetry::Counter;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Virtual nodes per backend: enough to spread load within a few percent at 2–16
/// backends while keeping ring construction trivially cheap.
const VNODES_PER_BACKEND: usize = 64;

/// Consistent-hash ring over backend indices.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, backend index)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

/// Final avalanche mix (the splitmix64 finalizer).  FNV-1a diffuses new bytes
/// into the low bits far faster than the high ones, and ring lookups compare
/// full `u64`s — without this, sequential vnode replicas produce clustered
/// points and growing the cluster reshuffles much more than `1/n` of the
/// keyspace.  Applied to both ring points and lookup keys, so `InstanceId`
/// hashes (themselves FNV outputs) land uniformly too.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl HashRing {
    /// Builds the ring for `addrs` (order defines backend indices).
    pub fn new(addrs: &[String]) -> HashRing {
        let mut points = Vec::with_capacity(addrs.len() * VNODES_PER_BACKEND);
        for (index, addr) in addrs.iter().enumerate() {
            for replica in 0..VNODES_PER_BACKEND {
                let mut h = Fnv64::new();
                h.write_str(addr);
                h.write_u64(replica as u64);
                points.push((mix(h.finish()), index));
            }
        }
        // Ties (astronomically unlikely with FNV-64 over distinct addresses) break
        // by backend index so the ring is still a pure function of the input.
        points.sort_unstable();
        HashRing {
            points,
            backends: addrs.len(),
        }
    }

    /// Number of backends on the ring.
    pub fn len(&self) -> usize {
        self.backends
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.backends == 0
    }

    /// Every backend index in ring order starting from `key`'s successor vnode:
    /// `candidates(key)[0]` is the primary placement, the rest is the deterministic
    /// failover order.  Always returns all backends exactly once.
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        if self.points.is_empty() {
            return order;
        }
        let key = mix(key);
        let start = self
            .points
            .partition_point(|&(point, _)| point < key)
            .rem_euclid(self.points.len().max(1))
            % self.points.len();
        for offset in 0..self.points.len() {
            let (_, backend) = self.points[(start + offset) % self.points.len()];
            if !order.contains(&backend) {
                order.push(backend);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// The primary backend for `key` (`None` on an empty ring).
    pub fn primary(&self, key: u64) -> Option<usize> {
        self.candidates(key).first().copied()
    }
}

/// Health of one backend as the router sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendState {
    /// Probes and proxied requests are succeeding.
    Up,
    /// Recent failures below the trip threshold: still routable, watched.
    Degraded,
    /// Circuit open: consecutive failures reached `trip_after`.  Not routable
    /// until a half-open probe succeeds.
    Down,
}

impl BackendState {
    /// Stable lowercase name (used in traces and metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendState::Up => "up",
            BackendState::Degraded => "degraded",
            BackendState::Down => "down",
        }
    }
}

/// A state transition worth tracing: `(event name, detail)`.
pub type HealthTransition = (&'static str, String);

/// Mutable health fields, guarded by one mutex per backend.
#[derive(Debug)]
struct Health {
    state: BackendState,
    consecutive_failures: u32,
    /// Times the breaker has tripped since start (indexes the cooldown schedule).
    trips: u32,
    /// When the breaker last opened (cooldown reference point).
    down_since: Option<Instant>,
    /// A half-open probe is in flight; further probes hold off until it lands.
    half_open_inflight: bool,
}

/// One backend: its address, circuit-breaker state and observability counters.
#[derive(Debug)]
pub struct Backend {
    /// The backend's `host:port`.
    pub addr: String,
    health: Mutex<Health>,
    /// Health probes attempted.
    pub probes: Counter,
    /// Health probes that failed (timeout, refusal, non-200).
    pub probe_failures: Counter,
    /// Times the circuit breaker tripped this backend Down.
    pub trips_total: Counter,
}

impl Backend {
    fn new(addr: String) -> Backend {
        Backend {
            addr,
            health: Mutex::new(Health {
                state: BackendState::Up,
                consecutive_failures: 0,
                trips: 0,
                down_since: None,
                half_open_inflight: false,
            }),
            probes: Counter::new(),
            probe_failures: Counter::new(),
            trips_total: Counter::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BackendState {
        self.health.lock().expect("backend health lock").state
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.health
            .lock()
            .expect("backend health lock")
            .consecutive_failures
    }

    /// Routable means the circuit is closed (Up or Degraded).
    pub fn is_live(&self) -> bool {
        self.state() != BackendState::Down
    }
}

/// Knobs for cluster health checking and failover pacing.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Backend addresses (`host:port`); order defines ring indices.
    pub backends: Vec<String>,
    /// Milliseconds between health-probe rounds.
    pub probe_interval_ms: u64,
    /// Per-probe timeout in milliseconds.
    pub probe_timeout_ms: u64,
    /// Consecutive failures that trip a backend's circuit breaker Down.
    pub trip_after: u32,
    /// Seeded pacing shared by failover re-routes and half-open cooldowns, so a
    /// chaos run's failover schedule replays exactly.
    pub retry: RetryPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            backends: Vec::new(),
            probe_interval_ms: 250,
            probe_timeout_ms: 1_000,
            trip_after: 3,
            retry: RetryPolicy {
                max_retries: 3,
                base_delay_ms: 25,
                max_delay_ms: 2_000,
                jitter_seed: 0,
            },
        }
    }
}

/// The ring plus per-backend health, shared by the router's accept loop and its
/// prober thread.
pub struct Cluster {
    ring: HashRing,
    backends: Vec<Backend>,
    config: ClusterConfig,
}

impl Cluster {
    /// Builds the cluster view from its config.
    pub fn new(config: ClusterConfig) -> Cluster {
        Cluster {
            ring: HashRing::new(&config.backends),
            backends: config.backends.iter().cloned().map(Backend::new).collect(),
            config,
        }
    }

    /// The configuration the cluster was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// All backends, ring-index order.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// One backend by ring index.
    pub fn backend(&self, index: usize) -> &Backend {
        &self.backends[index]
    }

    /// Backends currently routable.
    pub fn live_count(&self) -> usize {
        self.backends.iter().filter(|b| b.is_live()).count()
    }

    /// Deterministic candidate order for a routing key (primary first, then the
    /// failover sequence); includes down backends — callers skip them, so a key's
    /// placement does not shift when an unrelated backend flaps.
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        self.ring.candidates(key)
    }

    /// The ring successor of `index` (hedge target), or `None` with fewer than
    /// two backends.
    pub fn successor(&self, index: usize) -> Option<usize> {
        if self.backends.len() < 2 {
            return None;
        }
        Some((index + 1) % self.backends.len())
    }

    /// Records a successful probe or proxied request: failures reset, circuit
    /// closes.  Returns the transition to trace, if one happened.
    pub fn record_success(&self, index: usize) -> Option<HealthTransition> {
        let backend = &self.backends[index];
        let mut h = backend.health.lock().expect("backend health lock");
        h.consecutive_failures = 0;
        h.half_open_inflight = false;
        h.down_since = None;
        if h.state != BackendState::Up {
            let was = h.state;
            h.state = BackendState::Up;
            return Some((
                "backend_up",
                format!("{} recovered from {}", backend.addr, was.as_str()),
            ));
        }
        None
    }

    /// Records a failed probe or proxied request.  Trips the breaker Down once
    /// `trip_after` consecutive failures accumulate; a failure during half-open
    /// re-opens the circuit and advances the cooldown schedule.  Returns the
    /// transition to trace, if one happened.
    pub fn record_failure(&self, index: usize, why: &str) -> Option<HealthTransition> {
        let backend = &self.backends[index];
        let mut h = backend.health.lock().expect("backend health lock");
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        let failures = h.consecutive_failures;
        if h.state == BackendState::Down {
            // A failed half-open probe: stay Down, restart the cooldown clock on
            // the next step of the seeded schedule.
            if h.half_open_inflight {
                h.half_open_inflight = false;
                h.trips = h.trips.saturating_add(1);
                h.down_since = Some(Instant::now());
            }
            return None;
        }
        if failures >= self.config.trip_after.max(1) {
            h.state = BackendState::Down;
            h.trips = h.trips.saturating_add(1);
            h.down_since = Some(Instant::now());
            h.half_open_inflight = false;
            backend.trips_total.inc();
            Some((
                "backend_tripped",
                format!(
                    "{} down after {failures} consecutive failures: {why}",
                    backend.addr
                ),
            ))
        } else {
            let was = h.state;
            h.state = BackendState::Degraded;
            (was == BackendState::Up).then(|| {
                (
                    "backend_degraded",
                    format!(
                        "{} failure {failures}/{}: {why}",
                        backend.addr, self.config.trip_after
                    ),
                )
            })
        }
    }

    /// The seeded cooldown before trip number `trip` allows a half-open probe.
    /// Pure function of `(retry seed, backend addr, trip)` — the recovery schedule
    /// replays exactly across runs and across routers sharing a config.
    pub fn half_open_cooldown(&self, index: usize, trip: u32) -> Duration {
        self.config
            .retry
            .delay(&self.backends[index].addr, trip.min(16))
    }

    /// Whether the prober should probe this backend right now.  Up/Degraded
    /// backends are always probed; a Down backend is probed only when its seeded
    /// cooldown has elapsed (the half-open slot), and only one half-open probe is
    /// outstanding at a time.
    pub fn should_probe(&self, index: usize) -> bool {
        let backend = &self.backends[index];
        let mut h = backend.health.lock().expect("backend health lock");
        if h.state != BackendState::Down {
            return true;
        }
        if h.half_open_inflight {
            return false;
        }
        let trip = h.trips.saturating_sub(1);
        let cooldown = self.config.retry.delay(&backend.addr, trip.min(16));
        let elapsed = h.down_since.map(|t| t.elapsed()).unwrap_or(Duration::MAX);
        if elapsed >= cooldown {
            h.half_open_inflight = true;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn ring_candidates_are_deterministic_complete_and_distinct() {
        let ring = HashRing::new(&addrs(3));
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d] {
            let a = ring.candidates(key);
            let b = ring.candidates(key);
            assert_eq!(a, b, "same key must route identically");
            assert_eq!(a.len(), 3, "all backends appear");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "each backend exactly once");
        }
        // Two rings built from the same address list agree on every route.
        let other = HashRing::new(&addrs(3));
        for key in 0..512u64 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(ring.candidates(key), other.candidates(key));
        }
    }

    #[test]
    fn ring_spreads_keys_across_backends() {
        let ring = HashRing::new(&addrs(3));
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(17);
            counts[ring.primary(key).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 300,
                "backend {i} owns too little of the ring: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_backend_moves_only_part_of_the_keyspace() {
        // The consistency property that makes the ring worth its salt: growing the
        // cluster must not reshuffle every placement (that would cold every cache).
        let small = HashRing::new(&addrs(3));
        let big = HashRing::new(&addrs(4));
        let mut moved = 0usize;
        let total = 4000usize;
        for key in 0..total as u64 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(3);
            if small.primary(key) != big.primary(key) {
                moved += 1;
            }
        }
        // Ideal is 1/4 of keys moving; allow generous slack but far below "all".
        assert!(
            moved < total / 2,
            "adding one backend moved {moved}/{total} keys"
        );
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(&[]);
        assert!(ring.is_empty());
        assert!(ring.candidates(7).is_empty());
        assert_eq!(ring.primary(7), None);
    }

    fn test_cluster(n: usize, trip_after: u32) -> Cluster {
        Cluster::new(ClusterConfig {
            backends: addrs(n),
            trip_after,
            retry: RetryPolicy {
                max_retries: 3,
                base_delay_ms: 0, // zero cooldown: half-open opens immediately in tests
                max_delay_ms: 0,
                jitter_seed: 5,
            },
            ..Default::default()
        })
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_recovers_via_half_open() {
        let cluster = test_cluster(2, 3);
        assert_eq!(cluster.backend(0).state(), BackendState::Up);
        assert!(cluster.record_failure(0, "timeout").is_some()); // Up -> Degraded
        assert_eq!(cluster.backend(0).state(), BackendState::Degraded);
        assert!(cluster.record_failure(0, "timeout").is_none()); // still Degraded
        let (event, _) = cluster.record_failure(0, "timeout").unwrap();
        assert_eq!(event, "backend_tripped");
        assert_eq!(cluster.backend(0).state(), BackendState::Down);
        assert!(!cluster.backend(0).is_live());
        assert_eq!(cluster.live_count(), 1);
        assert_eq!(cluster.backend(0).trips_total.get(), 1);

        // Zero cooldown: the half-open slot opens at once, but only one probe at
        // a time may use it.
        assert!(cluster.should_probe(0));
        assert!(!cluster.should_probe(0), "half-open admits a single probe");
        let (event, _) = cluster.record_success(0).unwrap();
        assert_eq!(event, "backend_up");
        assert_eq!(cluster.backend(0).state(), BackendState::Up);
        assert_eq!(cluster.backend(0).consecutive_failures(), 0);
    }

    #[test]
    fn failed_half_open_probe_reopens_the_circuit() {
        let cluster = test_cluster(1, 2);
        cluster.record_failure(0, "x");
        cluster.record_failure(0, "x");
        assert_eq!(cluster.backend(0).state(), BackendState::Down);
        assert!(cluster.should_probe(0));
        assert!(cluster.record_failure(0, "still dead").is_none());
        assert_eq!(cluster.backend(0).state(), BackendState::Down);
        // The slot reopens (cooldown is zero here) for the next half-open probe.
        assert!(cluster.should_probe(0));
    }

    #[test]
    fn intermittent_success_resets_the_failure_count() {
        let cluster = test_cluster(1, 3);
        cluster.record_failure(0, "x");
        cluster.record_failure(0, "x");
        cluster.record_success(0);
        assert_eq!(cluster.backend(0).consecutive_failures(), 0);
        cluster.record_failure(0, "x");
        assert_eq!(
            cluster.backend(0).state(),
            BackendState::Degraded,
            "count restarted; one failure after a success must not trip"
        );
    }

    #[test]
    fn half_open_cooldowns_replay_the_seeded_schedule() {
        let a = test_cluster(2, 3);
        let b = test_cluster(2, 3);
        for trip in 0..6 {
            assert_eq!(
                a.half_open_cooldown(0, trip),
                b.half_open_cooldown(0, trip),
                "same config must produce the same recovery schedule"
            );
        }
        // Distinct backends de-synchronise their recovery attempts.
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay_ms: 100,
            max_delay_ms: 60_000,
            jitter_seed: 9,
        };
        let c = Cluster::new(ClusterConfig {
            backends: addrs(2),
            retry: policy,
            ..Default::default()
        });
        assert_ne!(c.half_open_cooldown(0, 1), c.half_open_cooldown(1, 1));
    }
}
